"""Pluggable campaign sinks: where finished trials go, one at a time.

:meth:`Campaign.run <repro.api.Campaign.run>` streams every finished
trial to a sink the moment it completes.  A sink is three operations:

* ``completed()`` — the spec-key -> :class:`TrialResult` map already
  present (the resume surface);
* ``write(key, spec, result)`` — persist one finished trial durably
  (a crash after ``write`` returns must not lose the row);
* ``close()`` — release resources and stamp run metadata.

Two implementations ship: :class:`JsonlSink` (the historical
append-only file — one JSON line per trial) and :class:`SqliteSink`
(a :class:`~repro.results.ResultStore` run — queryable, WAL-safe for
concurrent writers).  Both honor last-writer-wins on duplicate keys
and both resume identically: the parity is regression-tested.

``make_sink`` resolves the ``sink="jsonl"|"sqlite"`` strings the
campaign and CLI accept; pass a :class:`Sink` instance instead to
plug in your own backend.
"""

from __future__ import annotations

import abc
import json
import os
import time
from typing import Any, Dict, Mapping, Optional, Union

#: Sink kinds resolvable by name in ``Campaign.run(sink=...)`` / the CLI.
SINK_KINDS = ("jsonl", "sqlite")


class Sink(abc.ABC):
    """One destination for finished campaign trials (see module docs)."""

    #: registry-style name ("jsonl", "sqlite", ...)
    kind: str = "abstract"

    @abc.abstractmethod
    def completed(self) -> Dict[str, Any]:
        """Spec-key -> ``TrialResult`` rows already present (resume)."""

    @abc.abstractmethod
    def write(self, key: str, spec: Any, result: Any) -> None:
        """Durably persist one finished trial."""

    def close(self) -> None:
        """Release resources; called exactly once by the campaign."""

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class JsonlSink(Sink):
    """The append-only JSONL file sink (one ``{key, spec, result}``
    line per trial, flushed per write).

    ``append=False`` truncates at construction — the no-resume
    semantics, where re-run rows must not shadow stale ones.
    """

    kind = "jsonl"

    def __init__(self, path: Union[str, os.PathLike], append: bool = True):
        self.path = os.fspath(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._append = append
        self._fh = None  # opened lazily so completed() reads pre-truncation
        if not append:
            open(self.path, "w", encoding="utf-8").close()

    def completed(self) -> Dict[str, Any]:
        """Stream the existing file into a key -> result map."""
        from ..api.campaign import _read_sink
        from ..experiments.runner import TrialResult

        if not self._append or not os.path.exists(self.path):
            return {}
        return {
            key: TrialResult.from_dict(row)
            for key, row in _read_sink(self.path).items()
        }

    def write(self, key: str, spec: Any, result: Any) -> None:
        """Append one JSON line and flush it."""
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps({
            "key": key,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        """Close the file handle (if any write opened it)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class SqliteSink(Sink):
    """A :class:`~repro.results.ResultStore` run as a campaign sink.

    Every trial is committed individually (WAL journal), so concurrent
    campaign processes can share one store file and readers can query
    mid-campaign.  ``run_id`` defaults to ``"campaign"`` — a stable id,
    so interrupted campaigns resume into the same run; pass an explicit
    id to keep several campaigns side by side in one store.
    """

    kind = "sqlite"

    def __init__(
        self,
        path: Union[str, os.PathLike],
        append: bool = True,
        run_id: str = "campaign",
        label: Optional[str] = None,
    ):
        from .store import ResultStore

        self.path = os.fspath(path)
        self.run_id = run_id
        self._store = ResultStore(self.path)
        self._store.begin_run(run_id=run_id, label=label)
        if not append:
            self._store._conn.execute(
                "DELETE FROM trials WHERE run_id = ?", (run_id,)
            )
            self._store._conn.commit()
        self._t0 = time.perf_counter()

    @property
    def store(self):
        """The underlying :class:`~repro.results.ResultStore`."""
        return self._store

    def completed(self) -> Dict[str, Any]:
        """Key -> result rows already stored under this run."""
        return self._store.completed(self.run_id)

    def write(self, key: str, spec: Any, result: Any) -> None:
        """Insert-or-replace one trial row (committed immediately)."""
        self._store.write(self.run_id, key, spec.to_dict(), result.to_dict())

    def close(self) -> None:
        """Stamp the run's wall time and close the store."""
        self._store.finish_run(self.run_id, time.perf_counter() - self._t0)
        self._store.close()


def make_sink(
    kind: Union[str, Sink],
    path: Union[str, os.PathLike],
    append: bool = True,
    **kwargs: Any,
) -> Sink:
    """Resolve a sink by kind name (``"jsonl"`` / ``"sqlite"``).

    A :class:`Sink` instance passes through untouched (``path`` and
    ``append`` are then the caller's responsibility).
    """
    if isinstance(kind, Sink):
        return kind
    if kind == "jsonl":
        return JsonlSink(path, append=append, **kwargs)
    if kind == "sqlite":
        return SqliteSink(path, append=append, **kwargs)
    raise ValueError(f"unknown sink kind {kind!r}; known: {SINK_KINDS}")
