"""Query-parameter parsing shared by the CLI and the results service.

``repro query --where protocol=coloring --metrics rounds,steps`` and
``GET /query?where=protocol=coloring&metrics=rounds,steps`` are the
same request over different transports, so both parse their parameters
here: scalar coercion (int / float / bool / string), comma lists, and
``column=value`` filter entries.  Keeping one implementation means the
service accepts exactly the vocabulary the CLI documents.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List


def coerce_scalar(text: str) -> Any:
    """Parse one parameter value: int, float, bool, or string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def split_csv(text: str) -> List[str]:
    """Parse a ``--group-by``/``--metrics`` style comma list."""
    return [item.strip() for item in text.split(",") if item.strip()]


def parse_where(entries: Iterable[str]) -> Dict[str, Any]:
    """Parse ``column=value`` filter entries (values coerced).

    Raises ``ValueError`` on a malformed entry so both transports can
    answer with the same message (the CLI exits, the service 400s).
    """
    where: Dict[str, Any] = {}
    for entry in entries:
        key, sep, value = entry.partition("=")
        if not sep or not key.strip():
            raise ValueError(
                f"bad where filter {entry!r}: expected column=value"
            )
        where[key.strip()] = coerce_scalar(value.strip())
    return where
