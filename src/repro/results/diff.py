"""Cross-run comparison and regression detection.

Two comparisons, one row type:

* :func:`diff_runs` — two stored campaign runs, grouped on the same
  axes as :meth:`ResultStore.query`; per group × metric it reports
  both means, their delta and ratio, and whether the change crosses
  the regression threshold *in the metric's bad direction* (more
  rounds is worse, more availability is better).
* :func:`diff_bench` — two ``BENCH_*.json`` payloads (or any two
  entries of a store's bench trajectory): every shared numeric leaf is
  treated as a throughput-like higher-is-better measure, so a drop
  beyond the threshold is a regression.

Both return :class:`DiffRow` lists; :func:`gate` folds a list into a
pass/fail verdict usable as a CI exit code (the ``repro compare``
subcommand does exactly that).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .store import DEFAULT_GROUP_BY, ResultStore

#: Measures where growth is a regression (cost-like).
HIGHER_IS_WORSE = frozenset({
    "steps", "rounds", "k_efficiency", "max_bits_per_step", "total_bits",
    "mean_recovery_rounds", "post_fault_bits", "faults_injected",
})

#: Measures where shrinkage is a regression (quality-like).
HIGHER_IS_BETTER = frozenset({
    "availability", "legitimate", "silent", "steps_per_sec",
})

#: Default measures compared by :func:`diff_runs`.
DEFAULT_DIFF_METRICS = ("rounds", "steps", "total_bits")

#: Bench payload keys that describe the setup, not a measurement.
_BENCH_CONTEXT_KEYS = frozenset({"n", "budget_s", "seed"})


@dataclass(frozen=True)
class DiffRow:
    """One compared cell: a group × metric across two sides."""

    #: human-readable group label ("coloring/ring/synchronous" or a
    #: bench leaf path like "hot_loop.flat_aggregate")
    group: str
    metric: str
    value_a: float
    value_b: float
    #: value_b - value_a
    delta: float
    #: value_b / value_a (inf when a == 0 and b != 0; 1.0 when both 0)
    ratio: float
    #: the change crosses the threshold in the metric's bad direction
    regressed: bool

    def describe(self) -> str:
        """One table-free line for logs and CI output."""
        arrow = "REGRESSED" if self.regressed else "ok"
        return (f"{self.group} {self.metric}: "
                f"{self.value_a:g} -> {self.value_b:g} "
                f"({self.ratio:.3f}x) {arrow}")


def _require_runs(store: ResultStore, *run_ids: str) -> None:
    """Raise on run ids the store does not hold."""
    unknown = [r for r in run_ids if not store.has_run(r)]
    if unknown:
        known = [info.run_id for info in store.runs()]
        raise ValueError(
            f"unknown run id(s) {unknown} in {store.path!r}; "
            f"stored runs: {known}"
        )


def _ratio(a: float, b: float) -> float:
    if a == 0:
        return 1.0 if b == 0 else math.inf
    return b / a


def _is_regression(metric: str, a: float, b: float,
                   threshold: float) -> bool:
    """Did ``b`` move past ``threshold`` in ``metric``'s bad direction?

    Unknown metrics are treated as cost-like (higher is worse) — the
    conservative default for new measures.
    """
    if metric in HIGHER_IS_BETTER:
        return b < a * (1.0 - threshold)
    return b > a * (1.0 + threshold)


def _group_label(gkey: Tuple) -> str:
    return "/".join("-" if part is None else str(part)
                    for part in gkey) or "(all)"


def diff_runs_detailed(
    store: ResultStore,
    run_a: str,
    run_b: str,
    metrics: Sequence[str] = DEFAULT_DIFF_METRICS,
    group_by: Sequence[str] = DEFAULT_GROUP_BY,
    where: Optional[Mapping[str, Any]] = None,
    threshold: float = 0.10,
) -> Tuple[List[DiffRow], List[str], List[str]]:
    """Compare two stored runs group-by-group, metric-by-metric.

    Returns ``(rows, only_in_a, only_in_b)`` from one grouped query
    per run: rows compare the groups present on *both* sides (a group
    existing on one side only means the campaigns measured different
    spaces — reported in the ``only_*`` lists, not silently gated).
    Unknown run ids raise — a typo'd id must fail the gate loudly, not
    produce an empty comparison that reads as "0 regressed".
    """
    _require_runs(store, run_a, run_b)

    def grouped(run_id: str) -> Dict[Tuple, Dict[str, float]]:
        return {
            tuple(g.group[c] for c in group_by):
                {m: g.aggregates[m].mean for m in metrics}
            for g in store.query(metrics=metrics, where=where,
                                 group_by=group_by, run_id=run_id)
        }

    side_a = grouped(run_a)
    side_b = grouped(run_b)
    rows: List[DiffRow] = []
    for gkey in sorted(side_a, key=repr):
        if gkey not in side_b:
            continue
        label = _group_label(gkey)
        for metric in metrics:
            a, b = side_a[gkey][metric], side_b[gkey][metric]
            rows.append(DiffRow(
                group=label, metric=metric,
                value_a=a, value_b=b, delta=b - a, ratio=_ratio(a, b),
                regressed=_is_regression(metric, a, b, threshold),
            ))
    only_a = sorted(_group_label(k) for k in side_a.keys() - side_b.keys())
    only_b = sorted(_group_label(k) for k in side_b.keys() - side_a.keys())
    return rows, only_a, only_b


def diff_runs(
    store: ResultStore,
    run_a: str,
    run_b: str,
    metrics: Sequence[str] = DEFAULT_DIFF_METRICS,
    group_by: Sequence[str] = DEFAULT_GROUP_BY,
    where: Optional[Mapping[str, Any]] = None,
    threshold: float = 0.10,
) -> List[DiffRow]:
    """The comparison rows of :func:`diff_runs_detailed`."""
    rows, _only_a, _only_b = diff_runs_detailed(
        store, run_a, run_b, metrics=metrics, group_by=group_by,
        where=where, threshold=threshold,
    )
    return rows


def missing_groups(
    store: ResultStore,
    run_a: str,
    run_b: str,
    group_by: Sequence[str] = DEFAULT_GROUP_BY,
) -> Tuple[List[str], List[str]]:
    """Group labels present in exactly one of the two runs."""
    _rows, only_a, only_b = diff_runs_detailed(
        store, run_a, run_b, metrics=("rounds",), group_by=group_by,
    )
    return only_a, only_b


# ----------------------------------------------------------------------
# BENCH_*.json trajectories
# ----------------------------------------------------------------------
def flatten_bench(payload: Mapping[str, Any]) -> Dict[str, float]:
    """Flatten one bench payload into ``leaf path -> numeric value``.

    Dicts nest with ``.``; lists of dicts (the engine grid) key their
    entries by the identifying string cells, so the same cell lines up
    across emissions regardless of row order.  Context keys
    (``n``, ``budget_s``) are dropped — they parameterize the run, they
    are not measurements.
    """
    out: Dict[str, float] = {}

    def walk(node: Any, path: str) -> None:
        if isinstance(node, Mapping):
            for key, value in node.items():
                if key in _BENCH_CONTEXT_KEYS:
                    continue
                walk(value, f"{path}.{key}" if path else str(key))
        elif isinstance(node, list):
            for i, item in enumerate(node):
                if isinstance(item, Mapping):
                    ident = "/".join(
                        str(v) for v in item.values()
                        if isinstance(v, str)
                    ) or str(i)
                    walk(item, f"{path}[{ident}]")
                else:
                    walk(item, f"{path}[{i}]")
        elif isinstance(node, (int, float)) and not isinstance(node, bool):
            out[path] = float(node)

    walk(payload, "")
    return out


def diff_bench(
    payload_a: Mapping[str, Any],
    payload_b: Mapping[str, Any],
    mode: Optional[str] = None,
    threshold: float = 0.25,
) -> List[DiffRow]:
    """Compare two bench payloads (e.g. two ``BENCH_3.json`` snapshots).

    ``mode`` selects one section ("full" / "tiny") when the payloads
    are mode-keyed, as the repo's BENCH files are.  Every shared
    numeric leaf is compared as higher-is-better (these files hold
    steps/sec rates and speedup ratios); a drop past ``threshold`` is a
    regression.  Leaves present on one side only are ignored — bench
    coverage grows over time.
    """
    if mode is not None:
        payload_a = payload_a.get(mode, {})
        payload_b = payload_b.get(mode, {})
    flat_a = flatten_bench(payload_a)
    flat_b = flatten_bench(payload_b)
    rows: List[DiffRow] = []
    for path in sorted(set(flat_a) & set(flat_b)):
        a, b = flat_a[path], flat_b[path]
        rows.append(DiffRow(
            group=path, metric="value",
            value_a=a, value_b=b, delta=b - a, ratio=_ratio(a, b),
            regressed=b < a * (1.0 - threshold),
        ))
    return rows


def gate(rows: Sequence[DiffRow]) -> bool:
    """True when no row regressed — the CI pass/fail verdict."""
    return not any(row.regressed for row in rows)
