"""Paper-style tables over campaign results and warehouse queries.

Two renderers:

* :func:`campaign_summary_table` — the protocols × topologies ×
  schedulers roll-up the ``repro campaign`` command has always
  printed.  It is the *single* implementation of that table: the CLI
  renders live outcomes through it and ``repro report`` renders stored
  runs through it, so a stored campaign reproduces byte-identical
  text (regression-tested).
* :func:`query_table` — grouped statistics
  (:class:`~repro.results.store.GroupStats`) as an aligned or markdown
  table: one row per group, mean ± CI95 / median / min / max per
  measure.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from ..experiments.tables import format_table
from .store import GroupStats


def campaign_summary_rows(
    pairs: Iterable[Tuple[Any, Any]],
) -> List[List[Any]]:
    """Fold ``(spec, result)`` pairs into the campaign summary rows.

    One row per (protocol, topology, scheduler) point, sorted: trial
    count, mean and max rounds, max observed k-efficiency, and whether
    every trial stabilized.
    """
    by_point: Dict[Tuple[str, str, str], List[Any]] = {}
    for spec, result in pairs:
        by_point.setdefault(
            (spec.protocol, spec.topology, spec.scheduler), []
        ).append(result)
    rows: List[List[Any]] = []
    for (proto, topo, sched), results in sorted(by_point.items()):
        rows.append([
            proto, topo, sched, len(results),
            f"{sum(r.rounds for r in results) / len(results):.1f}",
            max(r.rounds for r in results),
            max(r.k_efficiency for r in results),
            all(r.legitimate and r.silent for r in results),
        ])
    return rows


#: Header row of the campaign summary table.
CAMPAIGN_SUMMARY_HEADERS = [
    "protocol", "topology", "scheduler", "trials", "mean rounds",
    "max rounds", "k-eff", "all stabilized",
]


def campaign_summary_table(
    pairs: Iterable[Tuple[Any, Any]],
    title: str = "campaign summary",
    markdown: bool = False,
) -> str:
    """The ``repro campaign`` roll-up table for any (spec, result) source
    — a live :class:`~repro.api.CampaignOutcome`, a streamed JSONL sink,
    or a stored :class:`~repro.results.ResultStore` run."""
    return format_table(
        CAMPAIGN_SUMMARY_HEADERS,
        campaign_summary_rows(pairs),
        title=title,
        markdown=markdown,
    )


def query_table(
    groups: Sequence[GroupStats],
    group_by: Sequence[str],
    metrics: Sequence[str],
    title: str = "",
    markdown: bool = False,
    precision: int = 2,
) -> str:
    """Render grouped statistics as a paper-style table.

    Each metric contributes ``mean``, ``±95%`` (CI half-width) and
    ``median`` columns; the group axes lead, the trial count follows.
    """
    headers = list(group_by) + ["trials"]
    for metric in metrics:
        headers += [f"{metric} mean", f"{metric} ±95%", f"{metric} median"]
    rows: List[List[Any]] = []
    for g in groups:
        # A None axis value (e.g. scenario on scenario-free rows)
        # renders as "-", not "None".
        row: List[Any] = [
            "-" if g.group.get(col) is None else g.group[col]
            for col in group_by
        ]
        row.append(g.count)
        for metric in metrics:
            agg = g.aggregates[metric]
            row += [agg.mean, agg.ci95, agg.median]
        rows.append(row)
    return format_table(headers, rows, title=title, markdown=markdown,
                        precision=precision)
