"""Paper-style tables over campaign results and warehouse queries.

Three renderers:

* :func:`campaign_summary_table` — the protocols × topologies ×
  schedulers roll-up the ``repro campaign`` command has always
  printed.  It is the *single* implementation of that table: the CLI
  renders live outcomes through it and ``repro report`` renders stored
  runs through it, so a stored campaign reproduces byte-identical
  text (regression-tested).
* :func:`query_table` — grouped statistics
  (:class:`~repro.results.store.GroupStats`) as an aligned or markdown
  table: one row per group, mean ± CI95 / median / min / max per
  measure.
* :func:`recipe_table` — canned paper tables: a named
  :class:`ReportRecipe` (grouping + measures + rendering) resolved
  from :data:`REPORT_RECIPES`, so ``repro report --recipe
  paper-overhead`` and ``GET /report?recipe=paper-overhead`` render
  the paper's §5-style claims straight from a store with one name.

Plus the machine-readable sibling: :func:`query_csv` renders the same
grouped statistics as RFC-4180 CSV at full float precision — the
single implementation behind ``repro query --csv`` and the service's
``?format=csv`` (tables round for eyes; CSV must not round for
spreadsheets).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..experiments.tables import _fmt, format_table
from .store import GroupStats


def campaign_summary_rows(
    pairs: Iterable[Tuple[Any, Any]],
) -> List[List[Any]]:
    """Fold ``(spec, result)`` pairs into the campaign summary rows.

    One row per (protocol, topology, scheduler) point, sorted: trial
    count, mean and max rounds, max observed k-efficiency, and whether
    every trial stabilized.
    """
    by_point: Dict[Tuple[str, str, str], List[Any]] = {}
    for spec, result in pairs:
        by_point.setdefault(
            (spec.protocol, spec.topology, spec.scheduler), []
        ).append(result)
    rows: List[List[Any]] = []
    for (proto, topo, sched), results in sorted(by_point.items()):
        rows.append([
            proto, topo, sched, len(results),
            f"{sum(r.rounds for r in results) / len(results):.1f}",
            max(r.rounds for r in results),
            max(r.k_efficiency for r in results),
            all(r.legitimate and r.silent for r in results),
        ])
    return rows


#: Header row of the campaign summary table.
CAMPAIGN_SUMMARY_HEADERS = [
    "protocol", "topology", "scheduler", "trials", "mean rounds",
    "max rounds", "k-eff", "all stabilized",
]


def campaign_summary_table(
    pairs: Iterable[Tuple[Any, Any]],
    title: str = "campaign summary",
    markdown: bool = False,
) -> str:
    """The ``repro campaign`` roll-up table for any (spec, result) source
    — a live :class:`~repro.api.CampaignOutcome`, a streamed JSONL sink,
    or a stored :class:`~repro.results.ResultStore` run."""
    return format_table(
        CAMPAIGN_SUMMARY_HEADERS,
        campaign_summary_rows(pairs),
        title=title,
        markdown=markdown,
    )


def query_table(
    groups: Sequence[GroupStats],
    group_by: Sequence[str],
    metrics: Sequence[str],
    title: str = "",
    markdown: bool = False,
    precision: int = 2,
) -> str:
    """Render grouped statistics as a paper-style table.

    Each metric contributes ``mean``, ``±95%`` (CI half-width) and
    ``median`` columns; the group axes lead, the trial count follows.
    """
    headers = list(group_by) + ["trials"]
    for metric in metrics:
        headers += [f"{metric} mean", f"{metric} ±95%", f"{metric} median"]
    rows: List[List[Any]] = []
    for g in groups:
        # A None axis value (e.g. scenario on scenario-free rows)
        # renders as "-", not "None".
        row: List[Any] = [
            "-" if g.group.get(col) is None else g.group[col]
            for col in group_by
        ]
        row.append(g.count)
        for metric in metrics:
            agg = g.aggregates[metric]
            row += [agg.mean, agg.ci95, agg.median]
        rows.append(row)
    return format_table(headers, rows, title=title, markdown=markdown,
                        precision=precision)


def csv_text(headers: Sequence[Any], rows: Iterable[Sequence[Any]]) -> str:
    """Headers + rows as CSV text (proper quoting via :mod:`csv`).

    Values render at full precision — this is the machine-readable
    surface, so nothing is rounded; ``None`` cells become empty.
    """
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(["" if cell is None else cell for cell in row])
    return buf.getvalue()


def query_csv(
    groups: Sequence[GroupStats],
    group_by: Sequence[str],
    metrics: Sequence[str],
) -> str:
    """Grouped statistics as CSV — the column layout of
    :func:`query_table` (axes, trial count, mean/ci95/median per
    metric) with underscore headers and unrounded values."""
    headers = list(group_by) + ["trials"]
    for metric in metrics:
        headers += [f"{metric}_mean", f"{metric}_ci95", f"{metric}_median"]
    rows: List[List[Any]] = []
    for g in groups:
        row: List[Any] = [g.group.get(col) for col in group_by]
        row.append(g.count)
        for metric in metrics:
            agg = g.aggregates[metric]
            row += [agg.mean, agg.ci95, agg.median]
        rows.append(row)
    return csv_text(headers, rows)


# ----------------------------------------------------------------------
# Canned paper tables (named recipes)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReportRecipe:
    """One canned paper table: grouping, measures, and presentation.

    A recipe is pure description — :func:`recipe_table` runs it against
    any store/run via :meth:`~repro.results.ResultStore.query` and
    renders each measure as one ``mean ± CI95`` column, the paper's
    cell format.
    """

    name: str
    title: str
    group_by: Tuple[str, ...]
    metrics: Tuple[str, ...]
    #: optional equality filters applied to every query
    where: Dict[str, Any] = field(default_factory=dict)
    precision: int = 3

    def describe(self) -> str:
        """One line for ``repro report --list-recipes``."""
        return (f"{self.name}: {self.title} "
                f"[{' x '.join(self.group_by)}; "
                f"{', '.join(self.metrics)}]")


#: The named-recipe registry behind ``repro report --recipe`` and the
#: service's ``/report?recipe=``.  Extend with :func:`register_recipe`.
REPORT_RECIPES: Dict[str, ReportRecipe] = {}


def register_recipe(recipe: ReportRecipe) -> ReportRecipe:
    """Add a recipe to :data:`REPORT_RECIPES` (name collisions raise)."""
    if recipe.name in REPORT_RECIPES:
        raise ValueError(f"report recipe {recipe.name!r} already registered")
    REPORT_RECIPES[recipe.name] = recipe
    return recipe


register_recipe(ReportRecipe(
    name="paper-overhead",
    title="read-bit overhead per protocol x topology (paper SS5)",
    group_by=("protocol", "topology"),
    metrics=("max_bits_per_step", "total_bits", "k_efficiency"),
))
register_recipe(ReportRecipe(
    name="paper-stabilization",
    title="stabilization cost per protocol x topology x daemon",
    group_by=("protocol", "topology", "scheduler"),
    metrics=("rounds", "steps"),
    precision=2,
))
register_recipe(ReportRecipe(
    name="paper-recovery",
    title="fault recovery per protocol x scenario",
    group_by=("protocol", "scenario"),
    metrics=("availability", "mean_recovery_rounds", "post_fault_bits"),
))


def recipe_rows(
    groups: Sequence[GroupStats],
    recipe: ReportRecipe,
) -> List[List[Any]]:
    """Fold query groups into recipe rows: axis cells, trial count,
    then one ``mean ± CI95`` cell per measure."""
    rows: List[List[Any]] = []
    for g in groups:
        row: List[Any] = [
            "-" if g.group.get(col) is None else g.group[col]
            for col in recipe.group_by
        ]
        row.append(g.count)
        for metric in recipe.metrics:
            agg = g.aggregates[metric]
            row.append(f"{_fmt(agg.mean, recipe.precision)} "
                       f"± {_fmt(agg.ci95, recipe.precision)}")
        rows.append(row)
    return rows


def recipe_table(
    store: Any,
    name: str,
    run_id: Optional[str] = None,
    markdown: bool = False,
) -> str:
    """Render one named recipe against a store run.

    Unknown names raise with the known ones listed — a typo'd recipe
    must not render as an empty table.
    """
    if name not in REPORT_RECIPES:
        raise ValueError(
            f"unknown report recipe {name!r}; known: "
            f"{sorted(REPORT_RECIPES)}"
        )
    recipe = REPORT_RECIPES[name]
    groups = store.query(
        metrics=recipe.metrics,
        where=recipe.where or None,
        group_by=recipe.group_by,
        run_id=run_id,
    )
    headers = list(recipe.group_by) + ["trials"] + [
        f"{m} (mean ± 95%)" for m in recipe.metrics
    ]
    return format_table(headers, recipe_rows(groups, recipe),
                        title=recipe.title, markdown=markdown)
