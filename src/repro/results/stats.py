"""Statistics over trial measures: mean / median / CI95, stdlib only.

The paper's comparative claims (read-bit overhead, stabilization
rounds, recovery cost) are statements about *distributions* of trials,
not single runs.  This module is the one place those distributions are
summarized: :func:`summarize` folds a sequence of values into an
:class:`Aggregate` (count, mean, median, stdev, min/max, and a normal
95% confidence interval on the mean), and the query layer
(:meth:`repro.results.ResultStore.query`) attaches one ``Aggregate``
per requested measure to every group.

Everything here is ``statistics``-module arithmetic — no numpy/scipy —
so the warehouse runs wherever the simulator does.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence

#: z quantile for a two-sided 95% interval
#: (``statistics.NormalDist().inv_cdf(0.975)``); the normal
#: approximation is documented behavior — campaigns aggregate dozens of
#: seeds per group, where z and Student-t agree to two decimals.
Z95 = statistics.NormalDist().inv_cdf(0.975)


@dataclass(frozen=True)
class Aggregate:
    """Summary statistics of one measure over one group of trials."""

    count: int
    mean: float
    median: float
    stdev: float
    minimum: float
    maximum: float
    #: half-width of the 95% CI on the mean (0.0 for count < 2)
    ci95: float

    @property
    def ci95_low(self) -> float:
        """Lower edge of the 95% confidence interval on the mean."""
        return self.mean - self.ci95

    @property
    def ci95_high(self) -> float:
        """Upper edge of the 95% confidence interval on the mean."""
        return self.mean + self.ci95

    def to_dict(self) -> Dict[str, float]:
        """Flat dict for JSON output (``repro query --json``)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
            "ci95": self.ci95,
        }


def summarize(values: Iterable[float]) -> Aggregate:
    """Fold a sequence of numeric values into an :class:`Aggregate`.

    Raises ``ValueError`` on an empty sequence — an empty group is a
    query-layer bug, not a statistics question.
    """
    vals: Sequence[float] = [float(v) for v in values]
    if not vals:
        raise ValueError("cannot summarize an empty sequence")
    n = len(vals)
    mean = statistics.fmean(vals)
    stdev = statistics.stdev(vals) if n > 1 else 0.0
    ci95 = Z95 * stdev / math.sqrt(n) if n > 1 else 0.0
    return Aggregate(
        count=n,
        mean=mean,
        median=statistics.median(vals),
        stdev=stdev,
        minimum=min(vals),
        maximum=max(vals),
        ci95=ci95,
    )


def summarize_columns(
    columns: Mapping[str, Sequence[float]],
) -> Dict[str, Aggregate]:
    """Summarize several measure columns at once (one group's worth)."""
    return {name: summarize(vals) for name, vals in columns.items()}
