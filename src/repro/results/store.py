"""The results warehouse: a queryable SQLite store of campaign trials.

Campaign sinks so far were append-only JSONL — durable and resumable,
but aggregation meant slurping the whole file into memory.  The
:class:`ResultStore` keeps the same unit of truth (one spec + one
result row per trial, keyed by ``ExperimentSpec.key()``) in SQLite
(stdlib ``sqlite3``, WAL mode for concurrent writers), organized into
*runs* with provenance metadata (git revision, host, python, wall
time), and adds what flat files cannot do:

* **streaming bulk ingest** from existing campaign JSONL sinks
  (:meth:`ResultStore.ingest_jsonl`) and direct per-trial writes
  (:meth:`ResultStore.write`, used by the campaign's sqlite sink) —
  neither ever holds more than one batch of rows in Python memory;
* **resume parity** with the JSONL sink: :meth:`completed` answers
  "which spec keys already have results" exactly like re-reading a
  JSONL sink does;
* **grouped statistics** (:meth:`query`): filter with ``where=``,
  group by experiment axes, and get mean / median / stdev / CI95 per
  requested measure — computed one group at a time off an ordered
  cursor, never materializing the full row set;
* **run bookkeeping** for cross-run comparison
  (:mod:`repro.results.diff`) and benchmark trajectories
  (:meth:`record_bench` / :meth:`bench_trajectory`).

The trial table stores both the flattened grouping/measure columns
(for SQL) and the exact spec/result JSON blobs (for faithful
round-trips back into :class:`~repro.api.ExperimentSpec` /
:class:`~repro.experiments.TrialResult` pairs).
"""

from __future__ import annotations

import calendar
import json
import os
import sqlite3
import subprocess
import time
import uuid
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .stats import Aggregate, summarize

#: Experiment-axis columns usable in ``where=`` and ``group_by=``.
AXIS_COLUMNS = (
    "run_id", "key", "protocol", "topology", "scheduler", "scenario", "seed",
)

#: Numeric measure columns usable in ``metrics=`` (and ``where=``).
MEASURE_COLUMNS = (
    "n", "m", "delta", "steps", "rounds", "k_efficiency",
    "max_bits_per_step", "total_bits", "legitimate", "silent",
    "faults_injected", "availability", "mean_recovery_rounds",
    "post_fault_bits",
)

#: Default grouping of :meth:`ResultStore.query` — the paper's table axes.
DEFAULT_GROUP_BY = ("protocol", "topology", "scheduler")

#: Default measures of :meth:`ResultStore.query` — the headline claims.
DEFAULT_METRICS = ("rounds", "steps", "k_efficiency", "total_bits")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id      TEXT PRIMARY KEY,
    label       TEXT,
    created_at  TEXT NOT NULL,
    git_rev     TEXT,
    host        TEXT,
    python      TEXT,
    wall_time_s REAL,
    meta        TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS trials (
    run_id   TEXT NOT NULL,
    key      TEXT NOT NULL,
    protocol TEXT NOT NULL,
    topology TEXT NOT NULL,
    scheduler TEXT NOT NULL,
    scenario TEXT,
    seed     INTEGER NOT NULL,
    n        INTEGER, m INTEGER, delta INTEGER,
    steps    INTEGER, rounds INTEGER,
    k_efficiency INTEGER,
    max_bits_per_step REAL,
    total_bits REAL,
    legitimate INTEGER,
    silent     INTEGER,
    faults_injected INTEGER,
    availability REAL,
    mean_recovery_rounds REAL,
    post_fault_bits REAL,
    spec     TEXT NOT NULL,
    result   TEXT NOT NULL,
    PRIMARY KEY (run_id, key)
);
CREATE INDEX IF NOT EXISTS trials_by_group
    ON trials (run_id, protocol, topology, scheduler);
CREATE TABLE IF NOT EXISTS bench (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    bench       TEXT NOT NULL,
    mode        TEXT NOT NULL,
    recorded_at TEXT NOT NULL,
    git_rev     TEXT,
    payload     TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS telemetry (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id      TEXT NOT NULL,
    source      TEXT NOT NULL,
    recorded_at TEXT NOT NULL,
    payload     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS telemetry_by_run ON telemetry (run_id, id);
"""


def _git_rev() -> Optional[str]:
    """Current short git revision, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def _now_iso() -> str:
    """Wall-clock timestamp in ISO-8601 UTC."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def iso_to_epoch(stamp: str) -> float:
    """Parse a ``runs.created_at`` ISO-8601 UTC stamp to epoch seconds."""
    return float(calendar.timegm(time.strptime(stamp, "%Y-%m-%dT%H:%M:%SZ")))


@dataclass(frozen=True)
class RunInfo:
    """One row of the ``runs`` table: provenance of a stored campaign."""

    run_id: str
    label: Optional[str]
    created_at: str
    git_rev: Optional[str]
    host: Optional[str]
    python: Optional[str]
    wall_time_s: Optional[float]
    trials: int

    def age_s(self, now: Optional[float] = None) -> float:
        """Seconds since this run was created (``repro prune`` ages)."""
        now = time.time() if now is None else now
        return now - iso_to_epoch(self.created_at)


@dataclass(frozen=True)
class GroupStats:
    """One group of :meth:`ResultStore.query`: axis values + aggregates."""

    #: grouping-column name -> value (e.g. ``{"protocol": "coloring"}``)
    group: Dict[str, Any]
    #: measure name -> :class:`~repro.results.stats.Aggregate`
    aggregates: Dict[str, Aggregate]

    @property
    def count(self) -> int:
        """Number of trials in the group."""
        return next(iter(self.aggregates.values())).count


class ResultStore:
    """SQLite-backed warehouse of campaign trials (see module docs)."""

    def __init__(self, path: Union[str, os.PathLike], timeout: float = 30.0,
                 create: bool = True):
        self.path = os.fspath(path)
        if not create and not os.path.exists(self.path):
            # Read-only consumers (query/report/compare) must not
            # litter empty stores at mistyped paths.
            raise ValueError(f"results store {self.path!r} does not exist")
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(self.path, timeout=timeout)
        try:
            # WAL lets one writer and many readers coexist (campaign
            # workers stream while `repro query` reads); NORMAL sync
            # matches the JSONL sink's durability (an OS crash may lose
            # the tail, a process crash loses nothing).
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()
        except sqlite3.DatabaseError as exc:
            # Pointing --store at a JSONL sink is the expected mix-up;
            # answer with the same clean error family as a missing path.
            self._conn.close()
            self._conn = None
            raise ValueError(
                f"{self.path!r} is not a results store: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    def begin_run(
        self,
        run_id: Optional[str] = None,
        label: Optional[str] = None,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> str:
        """Create (or revisit) a run row; returns its id.

        The row records provenance — git revision, bench host, python —
        at creation time.  Calling ``begin_run`` again with the same id
        (a resumed campaign) keeps the original row untouched.
        """
        import platform

        if run_id is None:
            stamp = time.strftime("%Y%m%d-%H%M%S")
            run_id = f"{label or 'run'}-{stamp}-{uuid.uuid4().hex[:6]}"
        self._conn.execute(
            "INSERT OR IGNORE INTO runs "
            "(run_id, label, created_at, git_rev, host, python, meta) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (run_id, label, _now_iso(), _git_rev(), platform.node(),
             platform.python_version(), json.dumps(dict(meta or {}))),
        )
        self._conn.commit()
        return run_id

    def finish_run(self, run_id: str, wall_time_s: float) -> None:
        """Record the run's wall-clock duration."""
        self._conn.execute(
            "UPDATE runs SET wall_time_s = ? WHERE run_id = ?",
            (wall_time_s, run_id),
        )
        self._conn.commit()

    def runs(self) -> List[RunInfo]:
        """All stored runs, oldest first, with their trial counts."""
        rows = self._conn.execute(
            "SELECT r.run_id, r.label, r.created_at, r.git_rev, r.host, "
            "       r.python, r.wall_time_s, "
            "       (SELECT COUNT(*) FROM trials t WHERE t.run_id = r.run_id) "
            "FROM runs r ORDER BY r.rowid"
        ).fetchall()
        return [RunInfo(*row) for row in rows]

    def latest_run_id(self) -> Optional[str]:
        """The most recently created run id (None on an empty store).

        Ordered by insertion (rowid), not ``created_at`` — the ISO
        stamp has one-second resolution, so back-to-back ingests would
        otherwise tie and resolve by accident of id string order.
        """
        row = self._conn.execute(
            "SELECT run_id FROM runs ORDER BY rowid DESC LIMIT 1"
        ).fetchone()
        return row[0] if row else None

    def has_run(self, run_id: str) -> bool:
        """Whether ``run_id`` exists in the runs table."""
        return self._conn.execute(
            "SELECT 1 FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone() is not None

    def _resolve_run(self, run_id: Optional[str]) -> str:
        if run_id is not None:
            # An explicit id must exist: a typo'd run must fail loudly,
            # not read back as an empty campaign.
            if not self.has_run(run_id):
                known = [info.run_id for info in self.runs()]
                raise ValueError(
                    f"unknown run id {run_id!r} in {self.path!r}; "
                    f"stored runs: {known}"
                )
            return run_id
        latest = self.latest_run_id()
        if latest is None:
            raise ValueError(f"store {self.path!r} holds no runs")
        return latest

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    @staticmethod
    def _trial_row(run_id: str, key: str, spec: Mapping[str, Any],
                   result: Mapping[str, Any]) -> Tuple:
        """Flatten one (spec, result) record into a trials-table row."""
        return (
            run_id, key,
            spec["protocol"], spec["topology"],
            spec.get("scheduler", "synchronous"),
            spec.get("scenario"), int(spec.get("seed", 0)),
            result.get("n"), result.get("m"), result.get("delta"),
            result.get("steps"), result.get("rounds"),
            result.get("k_efficiency"),
            result.get("max_bits_per_step"), result.get("total_bits"),
            int(bool(result.get("legitimate"))),
            int(bool(result.get("silent"))),
            result.get("faults_injected", 0),
            result.get("availability", 1.0),
            result.get("mean_recovery_rounds", 0.0),
            result.get("post_fault_bits", 0.0),
            json.dumps(spec, sort_keys=True),
            json.dumps(result, sort_keys=True),
        )

    _INSERT = (
        "INSERT OR REPLACE INTO trials VALUES "
        "(" + ", ".join("?" * 23) + ")"
    )

    def write(self, run_id: str, key: str, spec: Mapping[str, Any],
              result: Mapping[str, Any]) -> None:
        """Persist one finished trial (insert-or-replace by key).

        Committed immediately: like the JSONL sink's flush-per-line, an
        interrupted campaign loses at most in-flight trials.
        """
        self._conn.execute(self._INSERT,
                           self._trial_row(run_id, key, spec, result))
        self._conn.commit()

    def write_many(
        self,
        run_id: str,
        records: Iterable[Tuple[str, Mapping[str, Any], Mapping[str, Any]]],
        batch: int = 1000,
    ) -> int:
        """Bulk-insert ``(key, spec_dict, result_dict)`` records.

        Streams: only ``batch`` flattened rows exist in memory at a
        time, so arbitrarily large JSONL sinks ingest in bounded space.
        Returns the number of rows written.  Duplicate keys follow
        last-writer-wins, matching how a JSONL sink is read back.
        """
        count = 0
        rows: List[Tuple] = []
        for key, spec, result in records:
            rows.append(self._trial_row(run_id, key, spec, result))
            if len(rows) >= batch:
                self._conn.executemany(self._INSERT, rows)
                self._conn.commit()
                count += len(rows)
                rows.clear()
        if rows:
            self._conn.executemany(self._INSERT, rows)
            self._conn.commit()
            count += len(rows)
        return count

    def ingest_jsonl(
        self,
        path: Union[str, os.PathLike],
        run_id: Optional[str] = None,
        label: Optional[str] = None,
    ) -> Tuple[str, int]:
        """Bulk-ingest an existing campaign JSONL sink into a run.

        Streams the file line by line (tolerating the truncated
        trailing line a hard-killed campaign leaves behind) and writes
        in batches; returns ``(run_id, rows_ingested)``.
        """
        from ..api.campaign import _iter_sink_records

        run_id = self.begin_run(
            run_id=run_id,
            label=label or os.path.basename(os.fspath(path)),
        )
        t0 = time.perf_counter()
        count = self.write_many(
            run_id,
            ((rec["key"], rec["spec"], rec["result"])
             for rec in _iter_sink_records(path)),
        )
        self.finish_run(run_id, time.perf_counter() - t0)
        return run_id, count

    def ingest_store(
        self,
        path: Union[str, os.PathLike],
        src_run_id: Optional[str] = None,
        run_id: Optional[str] = None,
        label: Optional[str] = None,
    ) -> Tuple[str, int]:
        """Merge one run of another store into a run of this store.

        The sqlite twin of :meth:`ingest_jsonl` — and the merge path of
        the campaign fabric, which streams per-shard stores back into
        the canonical one.  ``src_run_id`` defaults to the source's
        latest run; ``run_id`` defaults to a fresh run here.  Rows
        stream batch by batch (bounded memory) and duplicate keys are
        last-writer-wins, exactly like every other ingest.
        """
        with ResultStore(path, create=False) as src:
            src_run = src._resolve_run(src_run_id)
            run_id = self.begin_run(
                run_id=run_id,
                label=label or os.path.basename(os.fspath(path)),
            )
            t0 = time.perf_counter()
            count = self.write_many(run_id, src.raw_trials(src_run))
        self.finish_run(run_id, time.perf_counter() - t0)
        return run_id, count

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def completed(self, run_id: str) -> Dict[str, Any]:
        """Spec-key -> :class:`TrialResult` map of a run (resume surface).

        Exactly what re-reading a JSONL sink yields, so campaigns
        resume identically off either sink.
        """
        from ..experiments.runner import TrialResult

        return {
            key: TrialResult.from_dict(json.loads(blob))
            for key, blob in self._conn.execute(
                "SELECT key, result FROM trials WHERE run_id = ?", (run_id,)
            )
        }

    def completed_keys(self, run_id: str) -> Set[str]:
        """The spec keys that already hold a result in ``run_id``."""
        return {
            row[0] for row in self._conn.execute(
                "SELECT key FROM trials WHERE run_id = ?", (run_id,)
            )
        }

    def pending_keys(self, run_id: str, keys: Iterable[str]) -> List[str]:
        """Order-preserving subset of ``keys`` not yet stored in ``run_id``.

        The fabric's claim surface: a worker (or the coordinator
        requeueing a dead worker's shard) claims exactly the keys the
        store has not committed — completed work is never re-run.
        """
        done = self.completed_keys(run_id)
        return [key for key in keys if key not in done]

    def raw_trials(
        self, run_id: Optional[str] = None,
    ) -> Iterator[Tuple[str, Dict[str, Any], Dict[str, Any]]]:
        """Stream a run's ``(key, spec dict, result dict)`` rows.

        Insertion order, one row at a time — the exact record shape
        :meth:`write_many` consumes, so store-to-store merges
        (:meth:`ingest_store`) round-trip without re-deriving anything.
        """
        run_id = self._resolve_run(run_id)
        cursor = self._conn.execute(
            "SELECT key, spec, result FROM trials WHERE run_id = ? "
            "ORDER BY rowid", (run_id,),
        )
        for key, spec_blob, result_blob in cursor:
            yield key, json.loads(spec_blob), json.loads(result_blob)

    def iter_results(self, run_id: Optional[str] = None) -> Iterator[Tuple]:
        """Stream a run back as ``(ExperimentSpec, TrialResult)`` pairs.

        Rows come back in insertion order (the campaign's completion
        order), one at a time — the sqlite twin of
        :func:`repro.api.iter_campaign_results`.
        """
        from ..api.spec import ExperimentSpec
        from ..experiments.runner import TrialResult

        run_id = self._resolve_run(run_id)
        cursor = self._conn.execute(
            "SELECT spec, result FROM trials WHERE run_id = ? ORDER BY rowid",
            (run_id,),
        )
        for spec_blob, result_blob in cursor:
            yield (ExperimentSpec.from_dict(json.loads(spec_blob)),
                   TrialResult.from_dict(json.loads(result_blob)))

    def trial_count(self, run_id: Optional[str] = None) -> int:
        """Number of trials stored for a run."""
        run_id = self._resolve_run(run_id)
        return self._conn.execute(
            "SELECT COUNT(*) FROM trials WHERE run_id = ?", (run_id,)
        ).fetchone()[0]

    # ------------------------------------------------------------------
    # Query / statistics
    # ------------------------------------------------------------------
    def query(
        self,
        metrics: Sequence[str] = DEFAULT_METRICS,
        where: Optional[Mapping[str, Any]] = None,
        group_by: Sequence[str] = DEFAULT_GROUP_BY,
        run_id: Optional[str] = None,
    ) -> List[GroupStats]:
        """Grouped statistics over stored trials.

        Parameters
        ----------
        metrics:
            Measure columns to aggregate (:data:`MEASURE_COLUMNS`);
            each group carries one :class:`Aggregate` per metric.
        where:
            Equality filters, column -> value or column -> list of
            values (``IN``).  Columns may be axes or measures.
        group_by:
            Axis columns to group on (:data:`AXIS_COLUMNS` minus
            ``run_id``/``key``, plus ``n``).  Empty sequence = one
            global group.
        run_id:
            Restrict to one run (default: the latest).  Pass the
            sentinel ``"*"`` to aggregate across every stored run.

        Rows stream off an ``ORDER BY group_by`` cursor and are folded
        one group at a time, so memory is bounded by the largest single
        group, not the table.
        """
        if not metrics:
            raise ValueError("query needs at least one metric")
        groupable = set(AXIS_COLUMNS[2:]) | {"n"}
        for col in group_by:
            if col not in groupable:
                raise ValueError(
                    f"cannot group by {col!r}; choose from "
                    f"{sorted(groupable)}"
                )
        known = set(AXIS_COLUMNS) | set(MEASURE_COLUMNS)
        for col in metrics:
            if col not in MEASURE_COLUMNS:
                raise ValueError(
                    f"unknown metric {col!r}; choose from "
                    f"{sorted(MEASURE_COLUMNS)}"
                )

        clauses: List[str] = []
        params: List[Any] = []
        if run_id != "*":
            clauses.append("run_id = ?")
            params.append(self._resolve_run(run_id))
        for col, value in (where or {}).items():
            if col not in known:
                raise ValueError(f"unknown where column {col!r}")
            if isinstance(value, (list, tuple, set)):
                values = list(value)
                clauses.append(
                    f"{col} IN ({', '.join('?' * len(values))})"
                )
                params.extend(values)
            else:
                clauses.append(f"{col} = ?")
                params.append(value)

        select_cols = list(group_by) + list(metrics)
        sql = f"SELECT {', '.join(select_cols) or '1'} FROM trials"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        if group_by:
            sql += f" ORDER BY {', '.join(group_by)}"

        n_group = len(group_by)
        out: List[GroupStats] = []
        current_key: Optional[Tuple] = None
        columns: Dict[str, List[float]] = {}

        def flush() -> None:
            if current_key is None:
                return
            out.append(GroupStats(
                group=dict(zip(group_by, current_key)),
                aggregates={m: summarize(columns[m]) for m in metrics},
            ))

        for row in self._conn.execute(sql, params):
            gkey = tuple(row[:n_group])
            if gkey != current_key:
                flush()
                current_key = gkey
                columns = {m: [] for m in metrics}
            for metric, value in zip(metrics, row[n_group:]):
                columns[metric].append(0.0 if value is None else float(value))
        flush()
        return out

    # ------------------------------------------------------------------
    # Retention (repro prune)
    # ------------------------------------------------------------------
    def latest_run_ids_by_label(self) -> Dict[Optional[str], str]:
        """The newest run id (by insertion) of every distinct label.

        A label is the store's grid identity — campaigns and fabric
        runs stamp one per grid — so "the latest run of each label" is
        the set of rows every comparison baseline still needs.
        """
        latest: Dict[Optional[str], str] = {}
        for info in self.runs():  # oldest first; later rows overwrite
            latest[info.label] = info.run_id
        return latest

    def delete_run(self, run_id: str) -> int:
        """Drop one run and its trials; returns the trial count dropped.

        Low-level: no protection checks — use :meth:`prune` for the
        guarded path.  Unknown ids raise.
        """
        run_id = self._resolve_run(run_id)
        count = self.trial_count(run_id)
        self._conn.execute("DELETE FROM trials WHERE run_id = ?", (run_id,))
        self._conn.execute("DELETE FROM telemetry WHERE run_id = ?",
                           (run_id,))
        self._conn.execute("DELETE FROM runs WHERE run_id = ?", (run_id,))
        self._conn.commit()
        return count

    def vacuum(self) -> None:
        """Reclaim the space deleted runs leave behind (``VACUUM``)."""
        self._conn.commit()
        self._conn.execute("VACUUM")

    def prune(
        self,
        run_ids: Sequence[str],
        force: bool = False,
        vacuum: bool = True,
    ) -> Dict[str, int]:
        """Drop superseded runs, guarding the latest of every label.

        Refuses (``ValueError``) when the selection includes the newest
        run of any label unless ``force`` — pruning a grid's only
        up-to-date baseline is almost always a mistake.  Returns
        ``run_id -> trials dropped`` and, by default, vacuums once at
        the end.
        """
        run_ids = list(dict.fromkeys(run_ids))  # dedup, keep order
        _ = [self._resolve_run(run_id) for run_id in run_ids]  # loud typos
        protected = set(self.latest_run_ids_by_label().values())
        blocked = [r for r in run_ids if r in protected]
        if blocked and not force:
            raise ValueError(
                f"refusing to prune the latest run of a label: {blocked} "
                f"(pass force=True / --force to override)"
            )
        dropped = {run_id: self.delete_run(run_id) for run_id in run_ids}
        if dropped and vacuum:
            self.vacuum()
        return dropped

    # ------------------------------------------------------------------
    # Telemetry snapshots
    # ------------------------------------------------------------------
    def record_telemetry(self, run_id: str, payload: Mapping[str, Any],
                         source: str = "campaign") -> None:
        """Append one campaign-level telemetry snapshot to a run.

        Snapshots land *next to* the trials they describe — throughput,
        requeue/stall counts, wall time — so a store is enough to
        reconstruct how a campaign ran, not just what it measured.
        ``source`` names the layer that took the snapshot ("campaign",
        "fabric", ...).
        """
        self._conn.execute(
            "INSERT INTO telemetry (run_id, source, recorded_at, payload) "
            "VALUES (?, ?, ?, ?)",
            (run_id, source, _now_iso(),
             json.dumps(dict(payload), sort_keys=True)),
        )
        self._conn.commit()

    def telemetry_snapshots(
        self, run_id: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """A run's telemetry snapshots, oldest first.

        Each row: ``{source, recorded_at, payload}`` with the payload
        already decoded.
        """
        run_id = self._resolve_run(run_id)
        return [
            {"source": source, "recorded_at": stamp,
             "payload": json.loads(blob)}
            for source, stamp, blob in self._conn.execute(
                "SELECT source, recorded_at, payload FROM telemetry "
                "WHERE run_id = ? ORDER BY id", (run_id,),
            )
        ]

    # ------------------------------------------------------------------
    # Benchmark trajectories
    # ------------------------------------------------------------------
    def record_bench(self, bench: str, mode: str,
                     payload: Mapping[str, Any]) -> None:
        """Append one benchmark emission (e.g. a ``BENCH_3.json``
        section) to the trajectory of ``(bench, mode)``."""
        self._conn.execute(
            "INSERT INTO bench (bench, mode, recorded_at, git_rev, payload) "
            "VALUES (?, ?, ?, ?, ?)",
            (bench, mode, _now_iso(), _git_rev(),
             json.dumps(payload, sort_keys=True)),
        )
        self._conn.commit()

    def bench_trajectory(self, bench: str, mode: str) -> List[Dict[str, Any]]:
        """All recorded payloads of ``(bench, mode)``, oldest first."""
        return [
            json.loads(blob) for (blob,) in self._conn.execute(
                "SELECT payload FROM bench WHERE bench = ? AND mode = ? "
                "ORDER BY id", (bench, mode),
            )
        ]
