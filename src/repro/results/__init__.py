"""Results warehouse: queryable trial store, statistics, reporting.

The analytics layer over campaign output.  Campaigns stream finished
trials into a :class:`Sink` — the historical append-only JSONL file or
a :class:`ResultStore` run (SQLite, WAL, concurrent-writer safe) — and
the store answers the questions flat files cannot: grouped statistics
with confidence intervals (:meth:`ResultStore.query`), paper-style
tables (:func:`campaign_summary_table`, :func:`query_table`), and
cross-run regression gates (:func:`diff_runs`, :func:`diff_bench`).

Surface in the CLI: ``repro ingest / query / report / compare`` plus
``repro campaign --sink sqlite``.  See ``docs/results.md``.
"""

from .diff import (
    DiffRow,
    diff_bench,
    diff_runs,
    diff_runs_detailed,
    flatten_bench,
    gate,
    missing_groups,
)
from .params import coerce_scalar, parse_where, split_csv
from .report import (
    CAMPAIGN_SUMMARY_HEADERS,
    REPORT_RECIPES,
    ReportRecipe,
    campaign_summary_rows,
    campaign_summary_table,
    csv_text,
    query_csv,
    query_table,
    recipe_rows,
    recipe_table,
    register_recipe,
)
from .sinks import SINK_KINDS, JsonlSink, Sink, SqliteSink, make_sink
from .stats import Aggregate, summarize, summarize_columns
from .store import (
    AXIS_COLUMNS,
    DEFAULT_GROUP_BY,
    DEFAULT_METRICS,
    GroupStats,
    MEASURE_COLUMNS,
    ResultStore,
    RunInfo,
)

__all__ = [
    "AXIS_COLUMNS",
    "Aggregate",
    "CAMPAIGN_SUMMARY_HEADERS",
    "DEFAULT_GROUP_BY",
    "DEFAULT_METRICS",
    "DiffRow",
    "GroupStats",
    "JsonlSink",
    "MEASURE_COLUMNS",
    "REPORT_RECIPES",
    "ReportRecipe",
    "ResultStore",
    "RunInfo",
    "SINK_KINDS",
    "Sink",
    "SqliteSink",
    "campaign_summary_rows",
    "campaign_summary_table",
    "coerce_scalar",
    "csv_text",
    "diff_bench",
    "diff_runs",
    "diff_runs_detailed",
    "flatten_bench",
    "gate",
    "make_sink",
    "missing_groups",
    "parse_where",
    "query_csv",
    "query_table",
    "recipe_rows",
    "recipe_table",
    "register_recipe",
    "split_csv",
    "summarize",
    "summarize_columns",
]
