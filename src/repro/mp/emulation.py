"""Message-passing emulation of the locally shared memory model.

The paper's concluding remarks motivate the measures by "how much gain
can be expected when implementing those protocols in a realistic
model".  This module derives the message traffic a register-based
implementation would generate, from the simulator's tracked reads:

* **Pull emulation** — neighbor registers are remote: each tracked read
  of neighbor q's state becomes a REQUEST/REPLY exchange on the link
  (2 messages; the reply carries the register payload in bits).  A
  1-efficient protocol thus costs 2 messages per activated process per
  step, forever; a Δ-efficient one costs 2Δ.
* **Push accounting** — the dual implementation: every communication
  write is broadcast to all δ.p neighbors.  After stabilization a
  silent protocol writes nothing, so the push load is zero — but a
  *self-stabilizing* push system cannot stay quiet: without periodic
  refresh a corrupted register is never re-examined, so implementations
  refresh every T steps.  :class:`PushAccountant` charges both writes
  and the refresh heartbeat, making the pull-vs-push trade measurable.

Both are bookkeeping layers over the same paper-faithful simulator —
they never change the execution, only price it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..core.metrics import StepRecord
from ..core.protocol import Protocol
from ..core.scheduler import Scheduler
from ..core.simulator import Simulator

ProcessId = Hashable
Link = Tuple[str, str]  # (repr(src), repr(dst))


@dataclass(frozen=True)
class Message:
    """One emulated message."""

    step: int
    kind: str  # "REQ" | "REP" | "PUSH" | "REFRESH"
    src: ProcessId
    dst: ProcessId
    bits: float


@dataclass
class TrafficStats:
    """Aggregated wire statistics."""

    messages: int = 0
    bits: float = 0.0
    per_link: Dict[Link, int] = field(default_factory=dict)

    def charge(self, msg: Message) -> None:
        self.messages += 1
        self.bits += msg.bits
        key = (repr(msg.src), repr(msg.dst))
        self.per_link[key] = self.per_link.get(key, 0) + 1

    @property
    def busiest_link_load(self) -> int:
        return max(self.per_link.values(), default=0)


class PullEmulator:
    """Runs a protocol and prices each neighbor read as REQ/REP."""

    REQUEST_BITS = 1.0  # a register identifier; constant-size control

    def __init__(
        self,
        protocol: Protocol,
        network,
        scheduler: Optional[Scheduler] = None,
        seed: Optional[int] = None,
        keep_log: bool = False,
        log_limit: int = 10_000,
    ):
        self.sim = Simulator(protocol, network, scheduler=scheduler, seed=seed)
        self.stats = TrafficStats()
        self.keep_log = keep_log
        self.log_limit = log_limit
        self.log: List[Message] = []

    def _charge(self, msg: Message) -> None:
        self.stats.charge(msg)
        if self.keep_log and len(self.log) < self.log_limit:
            self.log.append(msg)

    def step(self) -> StepRecord:
        record = self.sim.step()
        for p, ports in record.ports_read.items():
            for port in ports:
                q = self.sim.network.neighbor_at(p, port)
                reply_bits = record.bits_read[p] / max(len(ports), 1)
                self._charge(Message(record.index, "REQ", p, q, self.REQUEST_BITS))
                self._charge(Message(record.index, "REP", q, p, reply_bits))
        return record

    def run_rounds(self, count: int) -> None:
        target = self.sim.round_tracker.completed_rounds + count
        while self.sim.round_tracker.completed_rounds < target:
            self.step()

    def run_until_silent(self, max_rounds: int = 50_000):
        """Step to silence, pricing the whole convergence."""
        while not self.sim.is_silent():
            record = self.step()
            if (
                record.closed_round
                and self.sim.round_tracker.completed_rounds > max_rounds
            ):
                from ..core.exceptions import ConvergenceError

                raise ConvergenceError("pull emulation exceeded budget")
        return self.sim._report(silent=True)

    def messages_per_round(self, rounds: int = 10) -> float:
        """Steady-state message load: run extra rounds, report the rate."""
        before = self.stats.messages
        self.run_rounds(rounds)
        return (self.stats.messages - before) / rounds


class PushAccountant:
    """Prices a run under the push implementation (write-broadcast).

    Every communication write broadcasts the process's comm state to all
    neighbors; every ``refresh_period`` steps each process re-broadcasts
    even without writes (the self-stabilization heartbeat — without it a
    transiently corrupted register would never be re-read).
    """

    def __init__(
        self,
        protocol: Protocol,
        network,
        scheduler: Optional[Scheduler] = None,
        seed: Optional[int] = None,
        refresh_period: int = 10,
    ):
        if refresh_period < 1:
            raise ValueError("refresh_period must be ≥ 1")
        self.sim = Simulator(protocol, network, scheduler=scheduler, seed=seed)
        self.refresh_period = refresh_period
        self.stats = TrafficStats()
        self._specs_of = protocol.specs_of(network)
        self._comm_bits = {
            p: sum(
                s.domain.bits for s in self._specs_of[p] if s.readable_by_neighbors
            )
            for p in network.processes
        }

    def _broadcast(self, p, step: int, kind: str) -> None:
        for q in self.sim.network.neighbors(p):
            self.stats.charge(Message(step, kind, p, q, self._comm_bits[p]))

    def step(self) -> StepRecord:
        before = self.sim.config.comm_projection(self._specs_of)
        record = self.sim.step()
        after = self.sim.config.comm_projection(self._specs_of)
        for p in record.activated:
            if before[p] != after[p]:
                self._broadcast(p, record.index, "PUSH")
        if record.index and record.index % self.refresh_period == 0:
            for p in self.sim.network.processes:
                self._broadcast(p, record.index, "REFRESH")
        return record

    def run_rounds(self, count: int) -> None:
        target = self.sim.round_tracker.completed_rounds + count
        while self.sim.round_tracker.completed_rounds < target:
            self.step()

    def messages_per_round(self, rounds: int = 10) -> float:
        before = self.stats.messages
        self.run_rounds(rounds)
        return (self.stats.messages - before) / rounds
