"""Message-passing cost emulation (pull registers / push broadcasts)."""

from .emulation import Message, PullEmulator, PushAccountant, TrafficStats

__all__ = ["Message", "PullEmulator", "PushAccountant", "TrafficStats"]
