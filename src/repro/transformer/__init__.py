"""Prototype local-checking → 1-efficient transformer (paper §6)."""

from .round_robin import (
    LocalCheckingSpec,
    OneEfficientProtocol,
    coloring_spec,
    independence_spec,
    make_one_efficient,
)

__all__ = [
    "LocalCheckingSpec",
    "OneEfficientProtocol",
    "coloring_spec",
    "independence_spec",
    "make_one_efficient",
]
