"""Prototype local-checking → 1-efficient transformer (paper §6).

The paper closes asking whether a general transformer can turn any
protocol in the *local checking* paradigm into a communication-efficient
one for the stabilized phase.  This module prototypes the natural
candidate the paper's own protocols instantiate by hand: when a
protocol's detection is per-neighbor (a violation is witnessed by a
single incident edge) and its correction is local, replace the
every-step full-neighborhood scan by a round-robin pointer that checks
one neighbor per step.

A protocol eligible for the transform is described by a
:class:`LocalCheckingSpec`; :func:`make_one_efficient` emits the
1-efficient :class:`Protocol`.  Instantiating the spec for vertex
coloring reproduces protocol COLORING action-for-action — evidence that
the transform is the right shape — and the package tests check the
transformed protocols remain silent self-stabilizing while becoming
1-efficient.  What the prototype does *not* establish (and the paper
leaves open) is the stabilizing-phase cost of the transform in general.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Tuple

from ..core.actions import GuardedAction
from ..core.context import StepContext
from ..core.exceptions import TopologyError
from ..core.protocol import Protocol
from ..core.state import Configuration
from ..core.variables import BOOL, Domain, IntRange, VariableSpec, comm, internal
from ..graphs.topology import Network
from ..predicates.coloring import coloring_predicate

ProcessId = Hashable


@dataclass(frozen=True)
class LocalCheckingSpec:
    """A silent protocol in per-neighbor local-checking form.

    Attributes
    ----------
    name:
        Name for the emitted protocol.
    comm_var:
        The single communication variable the protocol maintains.
    domain:
        Its domain (shared by all processes).
    conflict:
        ``conflict(ctx, port) -> bool`` — does the neighbor behind
        ``port`` witness a violation?  Must read only that neighbor.
    repair:
        ``repair(ctx, port) -> None`` — local correction once ``port``
        witnesses a violation.  Must write only own variables.
    legitimate:
        The predicate the protocol stabilizes to.
    randomized:
        Whether ``repair`` consults the rng.
    """

    name: str
    comm_var: str
    domain: Domain
    conflict: Callable[[StepContext, int], bool]
    repair: Callable[[StepContext, int], None]
    legitimate: Callable[[Network, Configuration], bool]
    randomized: bool = False


class OneEfficientProtocol(Protocol):
    """The transformed protocol: one neighbor checked per step."""

    def __init__(self, spec: LocalCheckingSpec):
        self.spec = spec
        self.name = f"{spec.name}-1eff"
        self.randomized = spec.randomized

    def variables(self, network: Network, p: ProcessId) -> Tuple[VariableSpec, ...]:
        degree = network.degree(p)
        if degree < 1:
            raise TopologyError(
                "the transform requires every process to have a neighbor"
            )
        return (
            comm(self.spec.comm_var, self.spec.domain),
            internal("cur", IntRange(1, degree)),
        )

    def actions(self) -> Tuple[GuardedAction, ...]:
        spec = self.spec

        def detect(ctx) -> bool:
            return spec.conflict(ctx, ctx.get("cur"))

        def correct(ctx) -> None:
            spec.repair(ctx, ctx.get("cur"))
            ctx.advance("cur")

        def clear(ctx) -> bool:
            return not spec.conflict(ctx, ctx.get("cur"))

        def advance(ctx) -> None:
            ctx.advance("cur")

        return (
            GuardedAction("correct", detect, correct),
            GuardedAction("scan", clear, advance),
        )

    def is_legitimate(self, network: Network, config: Configuration) -> bool:
        return self.spec.legitimate(network, config)


def make_one_efficient(spec: LocalCheckingSpec) -> OneEfficientProtocol:
    """Apply the round-robin transform to a local-checking spec."""
    return OneEfficientProtocol(spec)


# ----------------------------------------------------------------------
# Example instantiations
# ----------------------------------------------------------------------
def coloring_spec(palette_size: int) -> LocalCheckingSpec:
    """Vertex coloring as a local-checking spec.

    Transforming this spec reproduces protocol COLORING exactly: the
    conflict is a per-edge color clash, the repair a uniform redraw.
    """
    palette = IntRange(1, palette_size)

    def conflict(ctx: StepContext, port: int) -> bool:
        return ctx.get("C") == ctx.read(port, "C")

    def repair(ctx: StepContext, port: int) -> None:
        ctx.set("C", ctx.random_choice(palette))

    return LocalCheckingSpec(
        name="COLORING-transform",
        comm_var="C",
        domain=palette,
        conflict=conflict,
        repair=repair,
        legitimate=lambda net, cfg: coloring_predicate(net, cfg, var="C"),
        randomized=True,
    )


def independence_spec() -> LocalCheckingSpec:
    """Independent-set maintenance as a local-checking spec.

    The predicate is independence of the marked set (no two adjacent
    marks) — weaker than MIS, but exactly the locally checkable part of
    it, which is what the transformer paradigm covers.  Repair: the
    detecting endpoint unmarks itself.
    """

    def conflict(ctx: StepContext, port: int) -> bool:
        # Read first: local checking examines the edge even when the
        # process itself is unmarked (and the metrics then reflect the
        # one-read-per-step pattern).
        neighbor_marked = bool(ctx.read(port, "IN"))
        return neighbor_marked and bool(ctx.get("IN"))

    def repair(ctx: StepContext, port: int) -> None:
        ctx.set("IN", False)

    def independent(net: Network, cfg: Configuration) -> bool:
        return all(
            not (cfg.get(p, "IN") and cfg.get(q, "IN")) for p, q in net.edges()
        )

    return LocalCheckingSpec(
        name="INDEPENDENCE-transform",
        comm_var="IN",
        domain=BOOL,
        conflict=conflict,
        repair=repair,
        legitimate=independent,
        randomized=False,
    )
