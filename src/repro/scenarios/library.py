"""Canned scenarios and the scenario registry.

Scenarios join protocols/topologies/schedulers/engines as a named,
parameterised experiment axis: ``scenario_registry`` maps a name plus
JSON-clean parameters to a :class:`~repro.scenarios.Scenario`, which is
exactly what :class:`~repro.api.ExperimentSpec` stores in its
``scenario``/``scenario_params`` fields.  Downstream code extends the
axis with the decorator::

    from repro.scenarios import register_scenario, Scenario

    @register_scenario("my-chaos")
    def _build(period_rounds=5):
        return Scenario("my-chaos", events=(...))

The built-ins cover the paper-adjacent experiment shapes: a single
post-stabilization fault (recovery measurement), periodic faults
(availability measurement), the worst-case symmetric reset, node/edge
churn over a dynamic topology, a mid-run daemon swap, and the fully
generic ``script`` scenario whose ``events`` parameter is the raw
JSON event DSL.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..api.registry import Registry
from .events import (
    CHURN_OPERATIONS,
    AdversarialReset,
    AtRound,
    AtStep,
    Churn,
    CorruptFraction,
    EveryRounds,
    AfterSilence,
    SwapScheduler,
)
from .scenario import Scenario, ScenarioEvent

#: name -> builder table for scenarios (the fifth experiment axis)
scenario_registry = Registry("scenario")
register_scenario = scenario_registry.register


@register_scenario("noop")
def _noop() -> Scenario:
    """No events at all — the byte-identity regression baseline."""
    return Scenario("noop", events=(), track_recovery=False)


@register_scenario("single-fault")
def _single_fault(
    fraction: float = 0.3,
    kinds: Sequence[str] = ("comm", "internal"),
    at_round: Optional[int] = None,
) -> Scenario:
    """One transient fault: after stabilization (default) or at a fixed
    round.  The recovery measures (rounds, steps-to-resilence,
    post-fault read bits) land in the metrics collector."""
    trigger = AfterSilence() if at_round is None else AtRound(at_round)
    return Scenario(
        "single-fault",
        events=(ScenarioEvent(trigger, CorruptFraction(fraction, tuple(kinds))),),
    )


@register_scenario("periodic-faults")
def _periodic_faults(
    period_rounds: int = 20,
    fraction: float = 0.2,
    kinds: Sequence[str] = ("comm", "internal"),
    total_rounds: int = 200,
) -> Scenario:
    """A fault every ``period_rounds`` for ``total_rounds`` rounds, with
    per-step availability tracking — the availability experiment.
    Silence-based recovery cycles are timed too (they feed the
    ``mean_recovery_rounds`` / ``post_fault_bits`` trial measures)."""
    return Scenario(
        "periodic-faults",
        events=(ScenarioEvent(
            EveryRounds(period_rounds),
            CorruptFraction(fraction, tuple(kinds)),
        ),),
        horizon_rounds=total_rounds,
        track_availability=True,
        track_recovery=True,
    )


@register_scenario("adversarial-reset")
def _adversarial_reset(
    state: Mapping[str, Any],
    after_silence: bool = True,
    at_step: int = 0,
) -> Scenario:
    """Force one fixed state everywhere — after stabilization (default)
    or at a fixed step boundary."""
    trigger = AfterSilence() if after_silence else AtStep(at_step)
    return Scenario(
        "adversarial-reset",
        events=(ScenarioEvent(trigger, AdversarialReset(dict(state))),),
    )


@register_scenario("churn")
def _churn(
    period_rounds: int = 10,
    operations: Sequence[str] = CHURN_OPERATIONS,
    fraction: float = 0.0,
    degree: int = 2,
    min_n: int = 3,
    total_rounds: Optional[int] = None,
) -> Scenario:
    """Dynamic-topology churn: every ``period_rounds`` one safe mutation
    fires, cycling through ``operations`` round-robin (staggered starts
    so at most one mutation hits a boundary); ``fraction > 0`` adds a
    corruption event every ``period_rounds`` as well.  Recovery cycles
    are timed; pass ``total_rounds`` for a fixed horizon (otherwise the
    run ends at the first silence once all pending events fired)."""
    operations = list(operations)
    if not operations:
        raise ValueError("churn needs at least one operation")
    cycle = period_rounds * len(operations)
    events: List[ScenarioEvent] = [
        ScenarioEvent(
            EveryRounds(cycle, start=period_rounds * (i + 1)),
            Churn(op, degree=degree, min_n=min_n),
        )
        for i, op in enumerate(operations)
    ]
    if fraction > 0:
        events.append(ScenarioEvent(
            EveryRounds(period_rounds), CorruptFraction(fraction)
        ))
    return Scenario(
        "churn",
        events=tuple(events),
        horizon_rounds=total_rounds,
    )


@register_scenario("scheduler-swap")
def _scheduler_swap(
    scheduler: str,
    params: Optional[Mapping[str, Any]] = None,
    at_round: int = 10,
) -> Scenario:
    """Swap the daemon mid-run once ``at_round`` rounds completed."""
    return Scenario(
        "scheduler-swap",
        events=(ScenarioEvent(
            AtRound(at_round), SwapScheduler(scheduler, dict(params or {})),
        ),),
        track_recovery=False,
    )


@register_scenario("script")
def _script(
    events: Sequence[Mapping[str, Any]],
    horizon_rounds: Optional[int] = None,
    track_availability: bool = False,
    track_recovery: bool = True,
    scenario_name: str = "script",
) -> Scenario:
    """The generic scenario: ``events`` is the raw JSON event DSL
    (kind-tagged trigger/effect dicts, see
    :mod:`repro.scenarios.events`), so a whole scenario can live inside
    an :class:`~repro.api.ExperimentSpec`'s ``scenario_params``.
    (``scenario_name`` rather than ``name``: the registry's ``build``
    reserves that word for the registry key.)"""
    return Scenario(
        scenario_name,
        events=tuple(ScenarioEvent.from_dict(e) for e in events),
        horizon_rounds=horizon_rounds,
        track_availability=track_availability,
        track_recovery=track_recovery,
    )


def build_scenario(name: str, params: Optional[Dict[str, Any]] = None) -> Scenario:
    """Construct a registered scenario (the spec layer's entry point)."""
    return scenario_registry.build(name, **(params or {}))
