"""Declarative fault/churn/adversary scenarios.

The scenario subsystem makes "what goes wrong during the run" a
first-class, serializable experiment axis:

* :mod:`repro.scenarios.events` — the event DSL: triggers
  (``at_step``/``at_round``/``every_rounds``/``after_silence``/
  ``with_probability``) × effects (corruption, adversarial resets,
  connectivity-safe node/edge churn, mid-run scheduler swaps);
* :mod:`repro.scenarios.scenario` — :class:`Scenario` (pure data,
  JSON-round-trippable) and :class:`ScenarioRuntime` (the live hooks
  the simulator's step loop calls);
* :mod:`repro.scenarios.library` — canned scenarios behind
  :data:`scenario_registry`, which `ExperimentSpec`, campaigns, and
  the CLI resolve by name.

Every random choice a scenario makes is drawn from the run's dedicated
``scenario`` RNG stream, so attaching one never perturbs the
scheduler's or the protocol's draw sequences — a no-op scenario
reproduces a scenario-free run byte for byte.
"""

from .events import (
    CHURN_OPERATIONS,
    AdversarialReset,
    AfterSilence,
    AtRound,
    AtStep,
    Callback,
    Churn,
    CorruptFraction,
    CorruptProcesses,
    Effect,
    EveryRounds,
    SwapScheduler,
    Trigger,
    TriggerContext,
    WithProbability,
    after_silence,
    at_round,
    at_step,
    effect_from_dict,
    every_rounds,
    trigger_from_dict,
    with_probability,
)
from .library import build_scenario, register_scenario, scenario_registry
from .scenario import AppliedEvent, Scenario, ScenarioEvent, ScenarioRuntime

__all__ = [
    "AdversarialReset",
    "AfterSilence",
    "AppliedEvent",
    "AtRound",
    "AtStep",
    "CHURN_OPERATIONS",
    "Callback",
    "Churn",
    "CorruptFraction",
    "CorruptProcesses",
    "Effect",
    "EveryRounds",
    "Scenario",
    "ScenarioEvent",
    "ScenarioRuntime",
    "SwapScheduler",
    "Trigger",
    "TriggerContext",
    "WithProbability",
    "after_silence",
    "at_round",
    "at_step",
    "build_scenario",
    "effect_from_dict",
    "every_rounds",
    "register_scenario",
    "scenario_registry",
    "trigger_from_dict",
    "with_probability",
]
