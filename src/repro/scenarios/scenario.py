"""Scenarios: serializable, seed-reproducible scripts of timed events.

A :class:`Scenario` pairs a tuple of :class:`ScenarioEvent`\\ s (trigger
× effect, see :mod:`repro.scenarios.events`) with run policy — an
optional round horizon and which recovery/availability measures to
track.  It is pure data: JSON-round-trippable, reusable across
simulators, and constructible by name through the
:data:`~repro.scenarios.scenario_registry`, which is what threads it
through :class:`~repro.api.ExperimentSpec`, campaigns and the CLI.

Binding a scenario to a :class:`~repro.core.simulator.Simulator`
produces a :class:`ScenarioRuntime` — the live object the step loop's
hook points call.  The runtime draws every random choice from the
run's dedicated ``scenario`` RNG stream (so attaching a scenario never
perturbs the scheduler's or protocol's draws), fires due events at
step boundaries, and streams the scenario measures — faults injected,
recovery rounds, steps-to-resilence, post-fault read-bit overhead,
availability — into the run's tiered
:class:`~repro.core.metrics.MetricsCollector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .events import Effect, Trigger, TriggerContext, effect_from_dict, trigger_from_dict


@dataclass(frozen=True)
class ScenarioEvent:
    """One scripted event: fire ``effect`` whenever ``trigger`` is due."""

    trigger: Trigger
    effect: Effect
    #: optional display label (defaults to "trigger->effect")
    label: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-clean form (kind-tagged trigger and effect dicts)."""
        return {
            "trigger": self.trigger.to_dict(),
            "effect": self.effect.to_dict(),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            trigger=trigger_from_dict(data["trigger"]),
            effect=effect_from_dict(data["effect"]),
            label=data.get("label", ""),
        )

    def describe(self) -> str:
        """The label, or a generated "trigger->effect" tag."""
        return self.label or f"{self.trigger.kind}->{self.effect.kind}"


@dataclass(frozen=True)
class Scenario:
    """A declarative fault/churn/adversary script plus run policy."""

    name: str
    events: Tuple[ScenarioEvent, ...] = ()
    #: run for exactly this many rounds instead of to silence (required
    #: policy for scenarios whose periodic triggers never exhaust)
    horizon_rounds: Optional[int] = None
    #: sample per-step legitimacy into the availability measures
    #: (costs one predicate evaluation per step)
    track_availability: bool = False
    #: time fault → re-silence cycles (one silence check per round
    #: boundary while recovering)
    track_recovery: bool = True

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))

    # ------------------------------------------------------------------
    def bind(self, sim) -> "ScenarioRuntime":
        """The hook the simulator calls: build this run's live runtime."""
        return ScenarioRuntime(self, sim)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-clean form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "events": [e.to_dict() for e in self.events],
            "horizon_rounds": self.horizon_rounds,
            "track_availability": self.track_availability,
            "track_recovery": self.track_recovery,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            events=tuple(
                ScenarioEvent.from_dict(e) for e in data.get("events", ())
            ),
            horizon_rounds=data.get("horizon_rounds"),
            track_availability=data.get("track_availability", False),
            track_recovery=data.get("track_recovery", True),
        )

    def to_json(self) -> str:
        """Canonical JSON text."""
        import json

        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse :meth:`to_json` output back."""
        import json

        return cls.from_dict(json.loads(text))

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class AppliedEvent:
    """Audit record of one fired scenario event."""

    step: int
    round: int
    label: str
    description: str


class ScenarioRuntime:
    """The live side of one (scenario, simulator) binding.

    The simulator calls :meth:`before_step` at every step boundary
    (events fire here, through the indexed state views, with engine
    invalidation / topology rebinding handled by the effects) and
    :meth:`after_step` after the step's accounting (recovery and
    availability sampling live here).  All scenario measures stream
    into the simulator's :class:`~repro.core.metrics.MetricsCollector`
    under the ``full``/``aggregate`` tiers and are skipped under
    ``off``.
    """

    def __init__(self, scenario: Scenario, sim):
        self.scenario = scenario
        self.rng = sim.rngs.scenario
        self._events = list(scenario.events)
        self._states = [e.trigger.initial_state() for e in self._events]
        #: audit log of fired events
        self.applied: List[AppliedEvent] = []
        #: per-boundary silence verdict shared through
        #: ``Simulator.is_silent``: ((step_index, fault_count), verdict)
        self.silence_cache = None
        self._last_closed = True  # the pre-run boundary counts as one
        # silence-based recovery tracking: (rounds, steps, bits) at fault
        self._recovering: Optional[Tuple[int, int, float]] = None
        #: per-cycle silence recoveries as (rounds, steps, bits)
        self.silence_recoveries: List[Tuple[int, int, float]] = []
        # availability tracking (legitimacy-based, as the historical
        # availability_experiment measured it)
        self.observed_steps = 0
        self.legitimate_steps = 0
        self.legit_recoveries: List[int] = []
        self._legit_recovering_since: Optional[int] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def horizon_rounds(self) -> Optional[int]:
        """The scenario's round horizon (None = run to silence)."""
        return self.scenario.horizon_rounds

    @property
    def exhausted(self) -> bool:
        """Whether no event can ever fire again."""
        return all(
            e.trigger.exhausted(s)
            for e, s in zip(self._events, self._states)
        )

    @property
    def pending_oneshots(self) -> bool:
        """Whether some fire-once trigger has not fired yet (the
        run-to-silence drain loop waits on exactly these)."""
        return any(
            e.trigger.one_shot and not e.trigger.exhausted(s)
            for e, s in zip(self._events, self._states)
        )

    @property
    def availability(self) -> float:
        """Fraction of sampled steps spent legitimate (1.0 untracked)."""
        if self.observed_steps == 0:
            return 1.0
        return self.legitimate_steps / self.observed_steps

    # ------------------------------------------------------------------
    # Hook points (called by Simulator.step)
    # ------------------------------------------------------------------
    def before_step(self, sim) -> None:
        """Fire every due event at this step boundary."""
        if not self._events:
            return
        ctx = TriggerContext(sim, self.rng, self._last_closed)
        for event, state in zip(self._events, self._states):
            if not event.trigger.due(state, ctx):
                continue
            description = event.effect.apply(sim, self.rng)
            if description is None:
                continue  # no-op (e.g. no safe churn candidate)
            # Injection/churn effects shift the fault-count key on their
            # own; a Callback may have mutated anything, so drop the
            # shared verdict unconditionally.
            self.silence_cache = None
            ctx.invalidate_silence()
            self.applied.append(AppliedEvent(
                step=sim.step_index,
                round=sim.round_tracker.completed_rounds,
                label=event.describe(),
                description=description,
            ))
            self._note_disturbance(sim)

    def after_step(self, sim, closed_round: bool) -> None:
        """Sample availability and close recovery cycles."""
        self._last_closed = closed_round
        if self.scenario.track_availability:
            legitimate = sim.is_legitimate()
            self.observed_steps += 1
            if legitimate:
                self.legitimate_steps += 1
                if self._legit_recovering_since is not None:
                    self.legit_recoveries.append(
                        sim.round_tracker.completed_rounds
                        - self._legit_recovering_since
                    )
                    self._legit_recovering_since = None
            if sim.metrics_tier != "off":
                sim.metrics.record_availability_step(legitimate)
        if self._recovering is not None and closed_round:
            if sim.is_silent():
                r0, s0, b0 = self._recovering
                cycle = (
                    sim.round_tracker.completed_rounds - r0,
                    sim.step_index - s0,
                    sim.metrics.total_bits - b0,
                )
                self.silence_recoveries.append(cycle)
                if sim.metrics_tier != "off":
                    sim.metrics.record_recovery(*cycle)
                self._recovering = None

    # ------------------------------------------------------------------
    def _note_disturbance(self, sim) -> None:
        """Arm the recovery/availability trackers after an applied event."""
        if self.scenario.track_recovery and self._recovering is None:
            if not sim.is_silent():
                self._recovering = (
                    sim.round_tracker.completed_rounds,
                    sim.step_index,
                    sim.metrics.total_bits,
                )
        if (
            self.scenario.track_availability
            and self._legit_recovering_since is None
            and not sim.is_legitimate()
        ):
            self._legit_recovering_since = (
                sim.round_tracker.completed_rounds
            )

    def __repr__(self) -> str:
        return (f"ScenarioRuntime({self.scenario.name!r}, "
                f"applied={len(self.applied)})")
