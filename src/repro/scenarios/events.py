"""The scenario event DSL: triggers × effects.

A scenario is a script of timed events over a live run.  Each event
pairs a **trigger** (when to fire) with an **effect** (what to do):

* triggers — :func:`at_step`, :func:`at_round`, :func:`every_rounds`,
  :func:`after_silence`, :func:`with_probability`;
* effects — state corruption (:class:`CorruptFraction`,
  :class:`CorruptProcesses`), adversarial resets
  (:class:`AdversarialReset`), node/edge churn (:class:`Churn`),
  mid-run daemon swaps (:class:`SwapScheduler`), and the
  runtime-only :class:`Callback` escape hatch.

Both sides are frozen, JSON-round-trippable descriptors: triggers keep
their mutable firing state in runtime-owned dicts
(:meth:`Trigger.initial_state`), so one :class:`~repro.scenarios.Scenario`
object can be bound to many simulators; effects draw every random
choice from the run's dedicated ``scenario`` RNG stream, so two runs of
the same seed apply byte-identical events regardless of engine, state
backend, or executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..faults.injection import (
    FaultReport,
    adversarial_reset,
    corrupt_fraction,
    corrupt_processes,
)
from ..graphs.topology import missing_edges, non_bridge_edges, removable_nodes

ProcessId = Hashable

#: churn operations understood by :class:`Churn`
CHURN_OPERATIONS = ("add-edge", "remove-edge", "add-node", "remove-node")


# ----------------------------------------------------------------------
# Trigger side
# ----------------------------------------------------------------------
class TriggerContext:
    """What a trigger may inspect at one step boundary.

    Carries the simulator, the scenario RNG, whether the previous step
    closed a round (step boundary 0 counts as a round boundary), and a
    lazily evaluated, per-boundary-cached silence check — silence is an
    exact, full-network property and must not be recomputed per trigger.
    """

    __slots__ = ("sim", "rng", "closed_round", "_silent")

    def __init__(self, sim, rng, closed_round: bool):
        self.sim = sim
        self.rng = rng
        self.closed_round = closed_round
        self._silent: Optional[bool] = None

    def silent(self) -> bool:
        """Whether the configuration is silent (cached per boundary;
        ``Simulator.is_silent`` additionally shares one verdict per
        boundary across the run loop and the recovery tracker)."""
        if self._silent is None:
            self._silent = self.sim.is_silent()
        return self._silent

    def invalidate_silence(self) -> None:
        """Drop the cached silence answer (an effect just mutated γ)."""
        self._silent = None


class Trigger:
    """When an event fires.  Frozen descriptor; state lives with the
    runtime (:meth:`initial_state`), so scenarios are reusable."""

    #: serialization tag
    kind: str = "trigger"
    #: True for fire-once triggers (the drain loop waits on these)
    one_shot: bool = False

    def initial_state(self) -> Dict[str, Any]:
        """A fresh mutable firing-state dict for one bound runtime."""
        return {}

    def due(self, state: Dict[str, Any], ctx: TriggerContext) -> bool:
        """Whether to fire at this boundary (may advance ``state``)."""
        raise NotImplementedError

    def exhausted(self, state: Dict[str, Any]) -> bool:
        """Whether this trigger can never fire again."""
        return False

    def to_dict(self) -> Dict[str, Any]:
        """Kind-tagged JSON-clean form (inverse of :func:`trigger_from_dict`)."""
        out = {"kind": self.kind}
        out.update(self._params())
        return out

    def _params(self) -> Dict[str, Any]:
        return {}


_TRIGGERS: Dict[str, type] = {}


def _trigger(cls):
    _TRIGGERS[cls.kind] = cls
    return cls


@_trigger
@dataclass(frozen=True)
class AtStep(Trigger):
    """Fire once, at the boundary before step ``step`` executes."""

    step: int
    kind = "at-step"
    one_shot = True

    def initial_state(self):
        """State: has this one-shot fired yet."""
        return {"fired": False}

    def due(self, state, ctx):
        """Fire at the first boundary with ``step_index >= step``."""
        if state["fired"] or ctx.sim.step_index < self.step:
            return False
        state["fired"] = True
        return True

    def exhausted(self, state):
        """One-shot: exhausted once fired."""
        return state["fired"]

    def _params(self):
        return {"step": self.step}


@_trigger
@dataclass(frozen=True)
class AtRound(Trigger):
    """Fire once, at the first boundary with ``round`` rounds complete."""

    round: int
    kind = "at-round"
    one_shot = True

    def initial_state(self):
        """State: has this one-shot fired yet."""
        return {"fired": False}

    def due(self, state, ctx):
        """Fire at the first boundary past the target round count."""
        if state["fired"]:
            return False
        if ctx.sim.round_tracker.completed_rounds < self.round:
            return False
        state["fired"] = True
        return True

    def exhausted(self, state):
        """One-shot: exhausted once fired."""
        return state["fired"]

    def _params(self):
        return {"round": self.round}


@_trigger
@dataclass(frozen=True)
class EveryRounds(Trigger):
    """Fire every ``period`` completed rounds (first at ``start``,
    defaulting to ``period``)."""

    period: int
    start: Optional[int] = None
    kind = "every-rounds"

    def __post_init__(self):
        if self.period < 1:
            raise ValueError("period must be >= 1")

    def initial_state(self):
        """State: the next round count to fire at."""
        return {"next": self.start if self.start is not None else self.period}

    def due(self, state, ctx):
        """Fire once per crossed period boundary (skipped periods fold
        into one firing)."""
        completed = ctx.sim.round_tracker.completed_rounds
        if completed < state["next"]:
            return False
        nxt = state["next"] + self.period
        while nxt <= completed:
            nxt += self.period
        state["next"] = nxt
        return True

    def _params(self):
        return {"period": self.period, "start": self.start}


@_trigger
@dataclass(frozen=True)
class AfterSilence(Trigger):
    """Fire once, at the first round boundary where γ is silent.

    The check runs only at round boundaries (like
    ``run_until_silent``); the boundary before the first step counts.
    """

    kind = "after-silence"
    one_shot = True

    def initial_state(self):
        """State: has this one-shot fired yet."""
        return {"fired": False}

    def due(self, state, ctx):
        """Fire at the first silent round boundary."""
        if state["fired"]:
            return False
        if not (ctx.closed_round or ctx.sim.step_index == 0):
            return False
        if not ctx.silent():
            return False
        state["fired"] = True
        return True

    def exhausted(self, state):
        """One-shot: exhausted once fired."""
        return state["fired"]


@_trigger
@dataclass(frozen=True)
class WithProbability(Trigger):
    """Fire with probability ``p`` at every boundary of the given kind
    (``per="round"`` draws at round boundaries, ``per="step"`` at every
    step).  Draws come from the scenario stream, so the coin flips are
    reproducible and never touch the scheduler's sequence."""

    p: float
    per: str = "round"
    kind = "with-probability"

    def __post_init__(self):
        if not 0.0 <= self.p <= 1.0:
            raise ValueError("p must be within [0, 1]")
        if self.per not in ("round", "step"):
            raise ValueError('per must be "round" or "step"')

    def due(self, state, ctx):
        """Draw the coin at each matching boundary."""
        if self.per == "round" and not (
            ctx.closed_round or ctx.sim.step_index == 0
        ):
            return False
        return ctx.rng.random() < self.p

    def _params(self):
        return {"p": self.p, "per": self.per}


def trigger_from_dict(data: Mapping[str, Any]) -> Trigger:
    """Rebuild a trigger from its kind-tagged dict."""
    params = {k: v for k, v in data.items() if k != "kind"}
    try:
        cls = _TRIGGERS[data["kind"]]
    except KeyError:
        raise ValueError(
            f"unknown trigger kind {data.get('kind')!r}; "
            f"known: {sorted(_TRIGGERS)}"
        ) from None
    return cls(**params)


# -- DSL shorthands ----------------------------------------------------
def at_step(step: int) -> AtStep:
    """Fire once at the boundary before step ``step``."""
    return AtStep(step)


def at_round(round: int) -> AtRound:
    """Fire once when ``round`` rounds have completed."""
    return AtRound(round)


def every_rounds(period: int, start: Optional[int] = None) -> EveryRounds:
    """Fire every ``period`` rounds (first at ``start``)."""
    return EveryRounds(period, start)


def after_silence() -> AfterSilence:
    """Fire once, at the first silent round boundary."""
    return AfterSilence()


def with_probability(p: float, per: str = "round") -> WithProbability:
    """Fire with probability ``p`` per round (or per step)."""
    return WithProbability(p, per)


# ----------------------------------------------------------------------
# Effect side
# ----------------------------------------------------------------------
class Effect:
    """What an event does to the run when its trigger fires.

    ``apply`` returns a short human-readable description of what
    actually happened, or ``None`` when the effect was a no-op (no
    legal churn candidate, empty victim set) — skipped applications are
    not logged.  All randomness comes from the passed scenario stream.
    """

    kind: str = "effect"

    def apply(self, sim, rng) -> Optional[str]:
        """Apply the effect; ``None`` means nothing happened."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """Kind-tagged JSON-clean form (inverse of :func:`effect_from_dict`)."""
        out = {"kind": self.kind}
        out.update(self._params())
        return out

    def _params(self) -> Dict[str, Any]:
        return {}


_EFFECTS: Dict[str, type] = {}


def _effect(cls):
    _EFFECTS[cls.kind] = cls
    return cls


@_effect
@dataclass(frozen=True)
class CorruptFraction(Effect):
    """Corrupt a uniform random ``fraction`` of the network (kinds as
    in :func:`repro.faults.corrupt_fraction`)."""

    fraction: float
    kinds: Tuple[str, ...] = ("comm", "internal")
    kind = "corrupt-fraction"

    def apply(self, sim, rng):
        """Inject via :func:`repro.faults.corrupt_fraction`."""
        report = corrupt_fraction(sim, self.fraction, rng, tuple(self.kinds))
        if not report:
            return None
        return (f"corrupted {len(report)} processes "
                f"(kinds: {', '.join(report.kinds)})")

    def _params(self):
        return {"fraction": self.fraction, "kinds": list(self.kinds)}


@_effect
@dataclass(frozen=True)
class CorruptProcesses(Effect):
    """Corrupt an explicit victim list (pids must be JSON-encodable;
    list-valued pids are matched back to tuple pids after a round trip)."""

    victims: Tuple[Any, ...]
    kinds: Tuple[str, ...] = ("comm", "internal")
    kind = "corrupt-processes"

    def apply(self, sim, rng):
        """Inject via :func:`repro.faults.corrupt_processes`."""
        known = set(sim.network.processes)
        victims = []
        for v in self.victims:
            if v not in known and isinstance(v, list) and tuple(v) in known:
                v = tuple(v)  # JSON round-trip turned a tuple pid into a list
            if v in known:
                victims.append(v)
        report = corrupt_processes(sim, victims, rng, tuple(self.kinds))
        if not report:
            return None
        return f"corrupted {len(report)} targeted processes"

    def _params(self):
        return {"victims": list(self.victims), "kinds": list(self.kinds)}


@_effect
@dataclass(frozen=True)
class AdversarialReset(Effect):
    """Force one fixed state onto every process (or an explicit victim
    list) — the worst symmetric transient fault."""

    state: Mapping[str, Any]
    victims: Optional[Tuple[Any, ...]] = None
    kind = "adversarial-reset"

    def apply(self, sim, rng):
        """Inject via :func:`repro.faults.adversarial_reset`."""
        victims = list(self.victims) if self.victims is not None else None
        report = adversarial_reset(sim, dict(self.state), victims)
        if not report:
            return None
        return f"reset {len(report)} processes to {dict(self.state)!r}"

    def _params(self):
        return {
            "state": dict(self.state),
            "victims": list(self.victims) if self.victims is not None else None,
        }


@_effect
@dataclass(frozen=True)
class Churn(Effect):
    """One random, connectivity-safe topology mutation.

    ``operation`` picks the mutation; targets are sampled from the
    scenario stream among *safe* candidates (non-bridge edges,
    non-cut-vertex nodes, non-adjacent pairs).  When no safe candidate
    exists the event is a skipped no-op.  The mutation goes through
    :meth:`Simulator.rebind_network
    <repro.core.simulator.Simulator.rebind_network>`, which rebuilds
    the protocol, migrates states, and rebinds engines/pools/rounds;
    the affected processes are logged as a ``churn`` fault report.
    """

    operation: str
    #: degree of a joining node (add-node)
    degree: int = 2
    #: never shrink below this many processes (remove-node)
    min_n: int = 3
    kind = "churn"

    def __post_init__(self):
        if self.operation not in CHURN_OPERATIONS:
            raise ValueError(
                f"unknown churn operation {self.operation!r}; "
                f"known: {CHURN_OPERATIONS}"
            )

    def apply(self, sim, rng):
        """Sample a safe mutation, rebind the simulator, log the fault."""
        network = sim.network
        op = self.operation
        if op == "remove-edge":
            candidates = non_bridge_edges(network)
            if not candidates:
                return None
            p, q = candidates[rng.randrange(len(candidates))]
            new_net = network.with_edge_removed(p, q)
            affected, desc = (p, q), f"removed edge {p!r}—{q!r}"
        elif op == "add-edge":
            procs = list(network.processes)
            pair = None
            if len(procs) >= 2:
                for _ in range(64):  # sampling beats O(n²) enumeration
                    a, b = rng.sample(procs, 2)
                    if not network.are_neighbors(a, b):
                        pair = (a, b)
                        break
                if pair is None:
                    # Near-complete graph: rejection sampling keeps
                    # hitting existing edges — fall back to a bounded
                    # enumeration of the actual candidate pool.
                    candidates = missing_edges(network, limit=256)
                    if candidates:
                        pair = candidates[rng.randrange(len(candidates))]
            if pair is None:
                return None
            p, q = pair
            new_net = network.with_edge_added(p, q)
            affected, desc = (p, q), f"added edge {p!r}—{q!r}"
        elif op == "add-node":
            procs = list(network.processes)
            pid = f"join{sim.step_index}"
            while pid in network:
                pid += "x"
            neighbors = rng.sample(procs, min(max(1, self.degree), len(procs)))
            new_net = network.with_node_added(pid, neighbors)
            affected = (pid, *neighbors)
            desc = f"node {pid!r} joined with degree {len(neighbors)}"
        else:  # remove-node
            candidates = removable_nodes(network, min_n=self.min_n)
            if not candidates:
                return None
            p = candidates[rng.randrange(len(candidates))]
            affected = (p, *network.neighbors(p))
            new_net = network.with_node_removed(p)
            desc = f"node {p!r} departed"
        sim.rebind_network(new_net, rng)
        sim.note_fault(FaultReport(
            kind="churn",
            victims=tuple(affected),
            kinds=("topology",),
            vars_written={},
            step=sim.step_index,
        ))
        return desc

    def _params(self):
        return {
            "operation": self.operation,
            "degree": self.degree,
            "min_n": self.min_n,
        }


@_effect
@dataclass(frozen=True)
class SwapScheduler(Effect):
    """Replace the daemon mid-run with a registry-built one."""

    scheduler: str
    params: Mapping[str, Any] = field(default_factory=dict)
    kind = "swap-scheduler"

    def apply(self, sim, rng):
        """Build the named daemon for the current network and install it."""
        from ..api.registry import scheduler_registry  # late: avoids cycles

        sim.swap_scheduler(
            scheduler_registry.build(self.scheduler, sim.network,
                                     **dict(self.params))
        )
        return f"swapped scheduler to {self.scheduler!r}"

    def _params(self):
        return {"scheduler": self.scheduler, "params": dict(self.params)}


@dataclass(frozen=True)
class Callback(Effect):
    """Runtime-only escape hatch: apply an arbitrary ``fn(sim, rng)``.

    Powers the back-compat :func:`repro.faults.measure_recovery`
    wrapper (its fault argument is a callable).  Not serializable —
    scenarios containing one cannot go through a spec.
    """

    fn: Callable
    kind = "callback"

    def apply(self, sim, rng):
        """Invoke the wrapped callable."""
        self.fn(sim, rng)
        return "callback applied"

    def to_dict(self):
        """Callbacks are runtime-only; serialization raises."""
        raise TypeError("Callback effects are not serializable")


def effect_from_dict(data: Mapping[str, Any]) -> Effect:
    """Rebuild an effect from its kind-tagged dict."""
    params = {k: v for k, v in data.items() if k != "kind"}
    try:
        cls = _EFFECTS[data["kind"]]
    except KeyError:
        raise ValueError(
            f"unknown effect kind {data.get('kind')!r}; "
            f"known: {sorted(_EFFECTS)}"
        ) from None
    # JSON round trips lists; normalize sequence params back to tuples.
    for name in ("kinds", "victims"):
        if isinstance(params.get(name), list):
            params[name] = tuple(params[name])
    return cls(**params)
