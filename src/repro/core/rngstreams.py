"""Named random streams derived from one run seed.

A simulator historically drove everything — the arbitrary initial
configuration, the scheduler's draws, and any randomized actions — from
one ``random.Random(seed)``.  That makes runs replayable, but it also
means *any* new consumer of randomness (a fault script, a churn event)
would shift every subsequent draw and change the whole execution.

:class:`RngStreams` splits the run's randomness into *named streams*:

* ``scheduler`` and ``protocol`` — the two historical consumers.  They
  deliberately **share the root generator**, seeded exactly like the
  old single run RNG (``random.Random(seed)``): scheduler draws and
  randomized-action draws have always interleaved on one stream, and
  keeping that wiring preserves byte-identical traces for every
  pre-scenario run (the no-op-scenario regression tests pin this).
* ``scenario`` (and any other name) — an independent generator whose
  seed is derived from ``(seed, name)`` by SHA-256.  Drawing from a
  derived stream never perturbs the root sequence, which is the whole
  point: attaching a scenario to a run must not change what the
  scheduler or the protocol would have drawn.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Optional


def derive_seed(seed: Optional[int], name: str) -> int:
    """A stable substream seed for ``(seed, name)`` (SHA-256 based).

    ``None`` seeds are hashed as the literal string ``"None"`` — such
    runs are not replayable anyway, but the substreams stay distinct
    from each other and from the root.
    """
    digest = hashlib.sha256(f"{seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """The named random streams of one run.

    ``scheduler`` and ``protocol`` alias the root generator (see the
    module docstring for why); every other name lazily materializes an
    independent :class:`random.Random` seeded by :func:`derive_seed`.
    """

    __slots__ = ("seed", "root", "_streams")

    #: names served by the shared root generator (historical wiring)
    ROOT_STREAMS = ("scheduler", "protocol")

    def __init__(self, seed: Optional[int]):
        self.seed = seed
        self.root = random.Random(seed)
        self._streams: Dict[str, random.Random] = {
            name: self.root for name in self.ROOT_STREAMS
        }

    def stream(self, name: str) -> random.Random:
        """The generator behind ``name`` (created on first use)."""
        rng = self._streams.get(name)
        if rng is None:
            rng = self._streams[name] = random.Random(
                derive_seed(self.seed, name)
            )
        return rng

    @property
    def scheduler(self) -> random.Random:
        """The scheduler's stream (the shared root generator)."""
        return self._streams["scheduler"]

    @property
    def protocol(self) -> random.Random:
        """The randomized-action stream (the shared root generator)."""
        return self._streams["protocol"]

    @property
    def scenario(self) -> random.Random:
        """The scenario/fault-script stream (independent of the root)."""
        return self.stream("scenario")

    def __repr__(self) -> str:
        return f"RngStreams(seed={self.seed!r}, named={sorted(self._streams)})"
