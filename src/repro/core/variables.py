"""Typed variable domains for the locally shared memory model.

The paper's model (Section 2) distinguishes *communication* variables
(readable by neighbors) from *internal* variables (private), and every
variable "ranges over a fixed domain of values".  Domains are first-class
objects here because the paper's communication-complexity measure
(Definition 5) is counted in *bits*: reading a variable whose domain has
``d`` values costs ``ceil(log2(d))`` bits.  Keeping the domain next to the
variable lets the metrics layer account bits exactly as the paper does
(e.g. a color in ``{1..Δ+1}`` costs ``log(Δ+1)`` bits).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence, Tuple


class Domain:
    """Abstract finite domain of values a variable may take."""

    def __contains__(self, value: Any) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def __iter__(self) -> Iterator[Any]:  # pragma: no cover - abstract
        raise NotImplementedError

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def bits(self) -> float:
        """Information content of one value, in bits (``log2 |domain|``).

        A singleton domain carries zero bits, matching the convention
        that a constant known to both endpoints costs nothing *extra*
        beyond its declared size; callers that want the raw size use
        ``len``.
        """
        size = len(self)
        if size <= 1:
            return 0.0
        return math.log2(size)

    def sample(self, rng) -> Any:
        """Draw a uniform random element (used for adversarial init)."""
        values = list(self)
        return values[rng.randrange(len(values))]


@dataclass(frozen=True)
class IntRange(Domain):
    """Integer interval ``[lo, hi]`` inclusive, as in ``C.p ∈ {1..Δ+1}``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"empty IntRange [{self.lo}, {self.hi}]")

    def __contains__(self, value: Any) -> bool:
        return isinstance(value, int) and self.lo <= value <= self.hi

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.lo, self.hi + 1))

    def __len__(self) -> int:
        return self.hi - self.lo + 1

    def sample(self, rng) -> int:
        return rng.randint(self.lo, self.hi)


@dataclass(frozen=True)
class FiniteSet(Domain):
    """Explicit finite domain, e.g. ``S.p ∈ {Dominator, dominated}``."""

    values: Tuple[Any, ...]

    def __init__(self, values: Sequence[Any]):
        object.__setattr__(self, "values", tuple(values))
        if not self.values:
            raise ValueError("empty FiniteSet domain")

    def __contains__(self, value: Any) -> bool:
        return value in self.values

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)


BOOL = FiniteSet((False, True))


@dataclass(frozen=True)
class VariableSpec:
    """Declaration of one variable of a process.

    Attributes
    ----------
    name:
        Variable name, unique within its process (paper notation
        ``v.p`` becomes ``state[p][name]``).
    domain:
        The finite :class:`Domain` of values.
    kind:
        ``"comm"`` for communication variables (neighbor-readable),
        ``"internal"`` for private variables, ``"const"`` for
        communication constants (neighbor-readable, never written —
        like the color ``C.p`` of protocols MIS and MATCHING).
    """

    name: str
    domain: Domain
    kind: str = "comm"

    KINDS = ("comm", "internal", "const")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown variable kind {self.kind!r}")

    @property
    def readable_by_neighbors(self) -> bool:
        return self.kind in ("comm", "const")

    @property
    def writable(self) -> bool:
        return self.kind != "const"


def comm(name: str, domain: Domain) -> VariableSpec:
    """Shorthand for a communication variable declaration."""
    return VariableSpec(name, domain, "comm")


def internal(name: str, domain: Domain) -> VariableSpec:
    """Shorthand for an internal variable declaration."""
    return VariableSpec(name, domain, "internal")


def const(name: str, domain: Domain) -> VariableSpec:
    """Shorthand for a communication constant declaration."""
    return VariableSpec(name, domain, "const")
