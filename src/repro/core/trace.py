"""Execution tracing: record, export, and replay computations.

A trace captures, per step, the activated set, the rule each process
fired, the neighbor registers it read, and the communication-variable
writes that landed.  Traces serve three purposes:

* *debugging* — inspecting exactly how a computation unfolded;
* *auditing* — the efficiency theorems quantify over steps, and a trace
  is the evidence a run was 1-efficient;
* *replay verification* — the simulator is seed-deterministic, so
  re-running a traced configuration must reproduce the trace exactly
  (:func:`verify_replay`), which tests use to pin the step semantics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from .simulator import Simulator

ProcessId = Hashable


@dataclass(frozen=True)
class TraceEvent:
    """One step of a traced computation."""

    step: int
    activated: Tuple[str, ...]
    #: process -> rule name fired ("" when the process was disabled)
    rules: Dict[str, str]
    #: process -> sorted ports read
    reads: Dict[str, Tuple[int, ...]]
    #: process -> {comm var: new value} for values that changed
    comm_writes: Dict[str, Dict[str, Any]]

    def to_json(self) -> str:
        """One canonical JSON line for this event (sorted keys)."""
        return json.dumps(
            {
                "step": self.step,
                "activated": list(self.activated),
                "rules": self.rules,
                "reads": {p: list(r) for p, r in self.reads.items()},
                "comm_writes": self.comm_writes,
            },
            sort_keys=True,
        )

    @staticmethod
    def from_json(line: str) -> "TraceEvent":
        raw = json.loads(line)
        return TraceEvent(
            step=raw["step"],
            activated=tuple(raw["activated"]),
            rules=dict(raw["rules"]),
            reads={p: tuple(r) for p, r in raw["reads"].items()},
            comm_writes={p: dict(w) for p, w in raw["comm_writes"].items()},
        )


@dataclass
class Trace:
    """A recorded computation prefix."""

    protocol: str
    seed: Optional[int]
    events: List[TraceEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    def k_efficiency(self) -> int:
        """Largest per-step neighbor-read count in the trace (Def. 4)."""
        worst = 0
        for event in self.events:
            for ports in event.reads.values():
                worst = max(worst, len(ports))
        return worst

    def read_set_of(self, pid) -> set:
        """Accumulated ports a process read over the trace (Def. 7)."""
        acc: set = set()
        key = repr(pid)
        for event in self.events:
            acc.update(event.reads.get(key, ()))
        return acc

    def comm_quiet_suffix(self) -> int:
        """Number of trailing steps with no communication write."""
        quiet = 0
        for event in reversed(self.events):
            if any(event.comm_writes.values()):
                break
            quiet += 1
        return quiet

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialize as JSONL: one header line, then one line per event."""
        header = json.dumps(
            {"protocol": self.protocol, "seed": self.seed}, sort_keys=True
        )
        return "\n".join([header] + [e.to_json() for e in self.events])

    @staticmethod
    def from_jsonl(text: str) -> "Trace":
        lines = [line for line in text.splitlines() if line.strip()]
        header = json.loads(lines[0])
        events = [TraceEvent.from_json(line) for line in lines[1:]]
        return Trace(header["protocol"], header["seed"], events)


class TraceRecorder:
    """Drives a :class:`Simulator` while recording a :class:`Trace`."""

    def __init__(self, sim: Simulator, seed: Optional[int] = None):
        if getattr(sim, "metrics_tier", "full") != "full":
            raise ValueError(
                "TraceRecorder needs per-step records; construct the "
                "Simulator with metrics='full' (the default), not "
                f"metrics={sim.metrics_tier!r}"
            )
        self.sim = sim
        self.trace = Trace(protocol=sim.protocol.name, seed=seed)
        self._specs_of = sim.protocol.specs_of(sim.network)

    def step(self) -> TraceEvent:
        """Execute one simulator step and append its event to the trace."""
        before = self.sim.config.comm_projection(self._specs_of)
        record = self.sim.step()
        after = self.sim.config.comm_projection(self._specs_of)

        comm_writes: Dict[str, Dict[str, Any]] = {}
        for p in record.activated:
            if before[p] != after[p]:
                old = dict(before[p])
                comm_writes[repr(p)] = {
                    name: value
                    for name, value in after[p]
                    if old.get(name) != value
                }
        event = TraceEvent(
            step=record.index,
            activated=tuple(sorted(repr(p) for p in record.activated)),
            rules={
                repr(p): (name or "") for p, name in record.executed.items()
            },
            reads={
                repr(p): tuple(sorted(ports))
                for p, ports in record.ports_read.items()
            },
            comm_writes=comm_writes,
        )
        self.trace.events.append(event)
        return event

    def run_steps(self, count: int) -> Trace:
        """Record exactly ``count`` steps; returns the growing trace."""
        for _ in range(count):
            self.step()
        return self.trace


def record_run(protocol, network, seed: int, steps: int, scheduler=None) -> Trace:
    """Record ``steps`` steps of a fresh seeded run."""
    sim = Simulator(protocol, network, scheduler=scheduler, seed=seed)
    recorder = TraceRecorder(sim, seed=seed)
    return recorder.run_steps(steps)


def verify_replay(protocol_factory, network, trace: Trace, scheduler_factory=None) -> bool:
    """Re-run from the trace's seed and check event-for-event equality.

    ``protocol_factory`` / ``scheduler_factory`` must construct objects
    equivalent to the original run's (fresh instances, same parameters).
    """
    scheduler = scheduler_factory() if scheduler_factory else None
    replay = record_run(
        protocol_factory(), network, seed=trace.seed, steps=len(trace),
        scheduler=scheduler,
    )
    return replay.events == trace.events
