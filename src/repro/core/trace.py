"""Execution tracing: record, export, and replay computations.

A trace captures, per step, the activated set, the rule each process
fired, the neighbor registers it read, and the communication-variable
writes that landed.  Traces serve three purposes:

* *debugging* — inspecting exactly how a computation unfolded;
* *auditing* — the efficiency theorems quantify over steps, and a trace
  is the evidence a run was 1-efficient;
* *replay verification* — the simulator is seed-deterministic, so
  re-running a traced configuration must reproduce the trace exactly
  (:func:`verify_replay`), which tests use to pin the step semantics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from .simulator import Simulator

ProcessId = Hashable


@dataclass(frozen=True)
class TraceEvent:
    """One step of a traced computation."""

    step: int
    activated: Tuple[str, ...]
    #: process -> rule name fired ("" when the process was disabled)
    rules: Dict[str, str]
    #: process -> sorted ports read
    reads: Dict[str, Tuple[int, ...]]
    #: process -> {comm var: new value} for values that changed
    comm_writes: Dict[str, Dict[str, Any]]

    def to_json(self) -> str:
        """One canonical JSON line for this event (sorted keys)."""
        return json.dumps(
            {
                "step": self.step,
                "activated": list(self.activated),
                "rules": self.rules,
                "reads": {p: list(r) for p, r in self.reads.items()},
                "comm_writes": self.comm_writes,
            },
            sort_keys=True,
        )

    @staticmethod
    def from_json(line: str) -> "TraceEvent":
        raw = json.loads(line)
        return TraceEvent(
            step=raw["step"],
            activated=tuple(raw["activated"]),
            rules=dict(raw["rules"]),
            reads={p: tuple(r) for p, r in raw["reads"].items()},
            comm_writes={p: dict(w) for p, w in raw["comm_writes"].items()},
        )


@dataclass(frozen=True)
class FaultEvent:
    """One out-of-band fault applied at a step boundary.

    Makes faulted runs auditable: the injectors report exactly which
    processes were hit, which variable *kinds* were corrupted, and
    which variables were actually written (see
    :class:`repro.faults.FaultReport`); the recorder interleaves these
    lines into the JSONL trace (marked with ``"fault"``) just before
    the step they preceded.  Fault-free traces are byte-identical to
    pre-fault-event traces.
    """

    #: index of the step the fault preceded
    step: int
    #: injector kind ("corrupt", "reset", ...)
    kind: str
    #: processes actually written, as stable reprs
    victims: Tuple[str, ...]
    #: variable kinds actually written ("comm"/"internal")
    kinds: Tuple[str, ...]
    #: victim -> variable names written
    vars_written: Dict[str, Tuple[str, ...]]

    def to_json(self) -> str:
        """One canonical JSON line for this fault (sorted keys)."""
        return json.dumps(
            {
                "fault": self.kind,
                "step": self.step,
                "victims": list(self.victims),
                "kinds": list(self.kinds),
                "vars": {p: list(v) for p, v in self.vars_written.items()},
            },
            sort_keys=True,
        )

    @staticmethod
    def from_json(line: str) -> "FaultEvent":
        """Parse one ``"fault"``-marked JSONL line back."""
        raw = json.loads(line)
        return FaultEvent(
            step=raw["step"],
            kind=raw["fault"],
            victims=tuple(raw["victims"]),
            kinds=tuple(raw["kinds"]),
            vars_written={p: tuple(v) for p, v in raw["vars"].items()},
        )


@dataclass
class Trace:
    """A recorded computation prefix."""

    protocol: str
    seed: Optional[int]
    events: List[TraceEvent] = field(default_factory=list)
    #: out-of-band faults applied during the recording (audit records;
    #: empty for fault-free runs, keeping their JSONL byte-identical)
    faults: List[FaultEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    def k_efficiency(self) -> int:
        """Largest per-step neighbor-read count in the trace (Def. 4)."""
        worst = 0
        for event in self.events:
            for ports in event.reads.values():
                worst = max(worst, len(ports))
        return worst

    def read_set_of(self, pid) -> set:
        """Accumulated ports a process read over the trace (Def. 7)."""
        acc: set = set()
        key = repr(pid)
        for event in self.events:
            acc.update(event.reads.get(key, ()))
        return acc

    def comm_quiet_suffix(self) -> int:
        """Number of trailing steps with no communication write."""
        quiet = 0
        for event in reversed(self.events):
            if any(event.comm_writes.values()):
                break
            quiet += 1
        return quiet

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialize as JSONL: one header line, then one line per event.

        Fault audit lines (marked ``"fault"``) are interleaved just
        before the step event they preceded; a fault-free trace emits
        exactly the historical format.
        """
        header = json.dumps(
            {"protocol": self.protocol, "seed": self.seed}, sort_keys=True
        )
        lines = [header]
        pending = sorted(self.faults, key=lambda f: f.step)
        i = 0
        for event in self.events:
            while i < len(pending) and pending[i].step <= event.step:
                lines.append(pending[i].to_json())
                i += 1
            lines.append(event.to_json())
        lines.extend(f.to_json() for f in pending[i:])
        return "\n".join(lines)

    @staticmethod
    def from_jsonl(text: str) -> "Trace":
        """Parse a JSONL trace (fault audit lines included)."""
        lines = [line for line in text.splitlines() if line.strip()]
        header = json.loads(lines[0])
        events, faults = [], []
        for line in lines[1:]:
            if '"fault"' in line and "fault" in json.loads(line):
                faults.append(FaultEvent.from_json(line))
            else:
                events.append(TraceEvent.from_json(line))
        return Trace(header["protocol"], header["seed"], events, faults)


class TraceRecorder:
    """Drives a :class:`Simulator` while recording a :class:`Trace`."""

    def __init__(self, sim: Simulator, seed: Optional[int] = None):
        if getattr(sim, "metrics_tier", "full") != "full":
            raise ValueError(
                "TraceRecorder needs per-step records; construct the "
                "Simulator with metrics='full' (the default), not "
                f"metrics={sim.metrics_tier!r}"
            )
        self.sim = sim
        self.trace = Trace(protocol=sim.protocol.name, seed=seed)
        self._fault_cursor = len(sim.fault_log)

    def _drain_faults(self) -> None:
        """Append fault audit events for injections since the last step."""
        log = self.sim.fault_log
        for report in log[self._fault_cursor:]:
            self.trace.faults.append(FaultEvent(
                step=getattr(report, "step", self.sim.step_index),
                kind=getattr(report, "kind", "fault"),
                victims=tuple(sorted(
                    repr(p) for p in getattr(report, "victims", ())
                )),
                kinds=tuple(getattr(report, "kinds", ())),
                vars_written={
                    repr(p): tuple(names)
                    for p, names in sorted(
                        getattr(report, "vars_written", {}).items(),
                        key=lambda item: repr(item[0]),
                    )
                },
            ))
        self._fault_cursor = len(log)

    def step(self) -> TraceEvent:
        """Execute one simulator step and append its event to the trace.

        Reads the variable specs live from the simulator (topology
        churn may have replaced them) and drains any fault injections
        that happened since the previous recorded step into the
        trace's audit records.
        """
        specs_of = self.sim.specs_of
        before = self.sim.config.comm_projection(specs_of)
        record = self.sim.step()
        # Scenario events fire at the step boundary inside sim.step();
        # specs may have been replaced by churn, so re-read for "after".
        after = self.sim.config.comm_projection(self.sim.specs_of)
        self._drain_faults()

        comm_writes: Dict[str, Dict[str, Any]] = {}
        for p in record.activated:
            # A process absent from "before" joined via churn this step.
            if before.get(p, ()) != after[p]:
                old = dict(before.get(p, ()))
                comm_writes[repr(p)] = {
                    name: value
                    for name, value in after[p]
                    if old.get(name) != value
                }
        event = TraceEvent(
            step=record.index,
            activated=tuple(sorted(repr(p) for p in record.activated)),
            rules={
                repr(p): (name or "") for p, name in record.executed.items()
            },
            reads={
                repr(p): tuple(sorted(ports))
                for p, ports in record.ports_read.items()
            },
            comm_writes=comm_writes,
        )
        self.trace.events.append(event)
        return event

    def run_steps(self, count: int) -> Trace:
        """Record exactly ``count`` steps; returns the growing trace."""
        for _ in range(count):
            self.step()
        return self.trace


def record_run(protocol, network, seed: int, steps: int, scheduler=None) -> Trace:
    """Record ``steps`` steps of a fresh seeded run."""
    sim = Simulator(protocol, network, scheduler=scheduler, seed=seed)
    recorder = TraceRecorder(sim, seed=seed)
    return recorder.run_steps(steps)


def verify_replay(protocol_factory, network, trace: Trace, scheduler_factory=None) -> bool:
    """Re-run from the trace's seed and check event-for-event equality.

    ``protocol_factory`` / ``scheduler_factory`` must construct objects
    equivalent to the original run's (fresh instances, same parameters).
    """
    scheduler = scheduler_factory() if scheduler_factory else None
    replay = record_run(
        protocol_factory(), network, seed=trace.seed, steps=len(trace),
        scheduler=scheduler,
    )
    return replay.events == trace.events
