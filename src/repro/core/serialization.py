"""Configuration checkpointing (JSON).

Saving and restoring configurations makes experiments resumable and
lets failures be archived as artefacts: a bench that finds a
bound-violating run can dump the exact configuration for later
inspection.  Process ids may be ints, strings or (nested) tuples —
everything the topology generators produce — so ids are encoded with an
explicit type tag rather than `repr`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Hashable, List

from .exceptions import ModelError
from .state import Configuration

ProcessId = Hashable


def encode_pid(pid: ProcessId) -> Any:
    """Encode a process id into JSON-safe, round-trippable form."""
    if isinstance(pid, bool):  # bool is an int subclass; tag it first
        return {"t": "bool", "v": pid}
    if isinstance(pid, (int, str, float)) or pid is None:
        return {"t": "scalar", "v": pid}
    if isinstance(pid, tuple):
        return {"t": "tuple", "v": [encode_pid(x) for x in pid]}
    raise ModelError(f"cannot serialize process id of type {type(pid).__name__}")


def decode_pid(raw: Any) -> ProcessId:
    """Invert :func:`encode_pid`."""
    tag = raw.get("t")
    if tag in ("scalar", "bool"):
        return raw["v"]
    if tag == "tuple":
        return tuple(decode_pid(x) for x in raw["v"])
    raise ModelError(f"unknown process-id tag {tag!r}")


def configuration_to_json(config: Configuration) -> str:
    """Serialize a configuration (values must be JSON-representable —
    true for every protocol in this package: ints, strings, booleans)."""
    payload: List[Dict[str, Any]] = []
    for p in config.processes:
        payload.append({"pid": encode_pid(p), "state": dict(config.state_of(p))})
    return json.dumps(payload, sort_keys=True)


def configuration_from_json(text: str) -> Configuration:
    """Inverse of :func:`configuration_to_json`."""
    payload = json.loads(text)
    states = {decode_pid(entry["pid"]): dict(entry["state"]) for entry in payload}
    return Configuration(states)


def save_checkpoint(config: Configuration, path: str) -> None:
    """Write a configuration checkpoint file."""
    with open(path, "w") as fh:
        fh.write(configuration_to_json(config))


def load_checkpoint(path: str) -> Configuration:
    """Read a configuration checkpoint file."""
    with open(path) as fh:
        return configuration_from_json(fh.read())
