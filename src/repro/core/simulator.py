"""The step simulator.

Implements the computation model of paper §2 faithfully:

* a *step* ``(γi, si, γi+1)`` activates a scheduler-chosen non-empty
  subset ``si`` of processes;
* every activated process evaluates its guards in priority order
  **against γi** and executes its highest-priority enabled action (a
  disabled process does nothing — the footnote case);
* all writes land simultaneously in ``γi+1``;
* rounds are counted with :class:`~repro.core.rounds.RoundTracker`;
* every neighbor read (guards included) is tracked for the
  communication-efficiency metrics;
* the set of enabled processes is maintained across steps by an
  :class:`~repro.core.engine.EnabledSetEngine` (incremental dirty-set
  updates by default, with a full-scan fallback and a self-auditing
  debug mode), which powers :meth:`Simulator.enabled_processes` and the
  enabled-drawing daemons.

Hot-path design (flat-state step loop): the default ``state="flat"``
backend addresses process state as ``row[slot]`` through the indexed
:class:`~repro.core.state.Configuration`, reuses one pooled
:class:`~repro.core.context.StepContext` per process per run instead of
allocating one per activation, and — under ``metrics="aggregate"`` —
folds the paper's measures straight off the contexts without
materializing per-step :class:`~repro.core.metrics.StepRecord` objects.
``state="legacy"`` + ``metrics="full"`` reproduces the historical
dict-of-dicts loop step for step; the flat-vs-legacy equivalence tests
require byte-identical traces between the two.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Union

from .actions import first_enabled
from .context import StepContext, StepContextPool
from .engine import EnabledSetEngine, make_engine
from .exceptions import ConvergenceError
from .metrics import METRICS_TIERS, LeanStepRecord, MetricsCollector, StepRecord
from .protocol import Protocol
from .rounds import RoundTracker
from .scheduler import Scheduler, SynchronousScheduler
from .silence import is_silent, silence_witness
from .state import Configuration, LegacyConfiguration

ProcessId = Hashable

#: Configuration backends accepted by ``Simulator(state=...)``.
STATE_BACKENDS = ("flat", "legacy")


@dataclass
class StabilizationReport:
    """Outcome of a :meth:`Simulator.run_until_silent` run."""

    silent: bool
    legitimate: bool
    steps: int
    rounds: int
    #: step index at which the silence check first succeeded (None if never)
    silent_at_step: Optional[int]
    #: rounds completed when silence was detected (None if never)
    silent_at_round: Optional[int]

    @property
    def stabilized(self) -> bool:
        return self.silent and self.legitimate


class Simulator:
    """Executes one protocol on one network under one scheduler.

    Parameters
    ----------
    protocol, network:
        What to run and where.
    scheduler:
        Defaults to the synchronous scheduler (one step per round).
    seed:
        Seeds the single :class:`random.Random` driving both the
        scheduler and any randomized actions, so runs replay exactly.
    config:
        Starting configuration; defaults to a fresh *arbitrary*
        (uniformly corrupted) configuration, the standard
        self-stabilization starting point.  A private copy is taken in
        the requested ``state`` backend either way.
    engine:
        Enabled-set maintenance strategy: ``"incremental"`` (default),
        ``"scan"``, ``"debug"``, or a ready
        :class:`~repro.core.engine.EnabledSetEngine` instance.  Every
        engine yields step-for-step identical executions; they differ
        only in how much work keeping the enabled set current costs.
    full_scan:
        Convenience fallback: ``full_scan=True`` forces the ``"scan"``
        engine regardless of ``engine``.
    metrics:
        Metrics tier (:data:`~repro.core.metrics.METRICS_TIERS`):
        ``"full"`` (default) returns one
        :class:`~repro.core.metrics.StepRecord` per step exactly as
        before; ``"aggregate"`` streams the paper's measures into the
        collector without building records (identical final measures,
        much cheaper — :meth:`step` then returns a
        :class:`~repro.core.metrics.LeanStepRecord`); ``"off"`` skips
        the collector entirely.  Traces require ``"full"``.
    state:
        Configuration backend (:data:`STATE_BACKENDS`): ``"flat"``
        (default) runs the indexed row/slot hot path with pooled step
        contexts; ``"legacy"`` runs the historical dict-of-dicts path
        with per-activation context allocation — the reference both for
        the equivalence tests and the performance benchmarks' baseline.
    keep_records:
        Bounded :class:`~repro.core.metrics.StepRecord` retention under
        the ``full`` tier (most recent N on ``metrics.records``);
        ``0`` (default) retains nothing.
    """

    def __init__(
        self,
        protocol: Protocol,
        network,
        scheduler: Optional[Scheduler] = None,
        seed: Optional[int] = None,
        config: Optional[Configuration] = None,
        engine: Union[str, EnabledSetEngine] = "incremental",
        full_scan: bool = False,
        metrics: str = "full",
        state: str = "flat",
        keep_records: int = 0,
    ):
        if metrics not in METRICS_TIERS:
            raise ValueError(
                f"unknown metrics tier {metrics!r}; known: {METRICS_TIERS}"
            )
        if state not in STATE_BACKENDS:
            raise ValueError(
                f"unknown state backend {state!r}; known: {STATE_BACKENDS}"
            )
        self.protocol = protocol
        self.network = network
        self.scheduler = scheduler or SynchronousScheduler()
        # A reused stateful scheduler (round-robin pointer, bounded-fair
        # starvation counters, scripted prefix) must not carry pacing
        # state from a previous simulator into this run.
        self.scheduler.reset()
        self.rng = random.Random(seed)
        self.specs_of = protocol.specs_of(network)
        self._actions = protocol.actions()
        self.metrics_tier = metrics
        self.state_backend = state
        backend = Configuration if state == "flat" else LegacyConfiguration
        if config is None:
            config = protocol.arbitrary_configuration(network, self.rng)
            if not isinstance(config, backend):
                config = backend(config.as_dict())
        else:
            # Private copy, normalized into the requested backend.
            config = backend(config.as_dict())
        protocol.validate_configuration(network, config)
        self._config = config
        # The canonical process list, cached once: Network.processes
        # builds a fresh list per call, far too expensive per step.
        self._processes = tuple(network.processes)
        self.round_tracker = RoundTracker(self._processes)
        self.metrics = MetricsCollector(
            self._processes, keep_records=keep_records
        )
        self.step_index = 0
        self.engine = make_engine("scan" if full_scan else engine)
        self.engine.bind(protocol, network, self.config, self.specs_of)
        self._enabled_pool = self.scheduler.draws_from == "enabled"
        # Pooled contexts power the flat hot path; the legacy backend
        # keeps the historical one-context-per-activation allocation so
        # it stays a faithful baseline.
        self._ctx_pool = (
            StepContextPool(network, self.config, self.specs_of)
            if state == "flat"
            else None
        )

    # ------------------------------------------------------------------
    # Configuration access
    # ------------------------------------------------------------------
    @property
    def config(self) -> Union[Configuration, LegacyConfiguration]:
        """The live configuration γ.

        Assigning a replacement configuration swaps the run's state
        wholesale: the new object is normalized into the simulator's
        backend, every pooled context is rebuilt (their cached rows
        address the old storage), and the enabled-set engine is
        rebound and fully invalidated.  In-place mutation via
        :meth:`invalidate_enabled` remains the cheaper path for faults.
        """
        return self._config

    @config.setter
    def config(self, new_config) -> None:
        backend = (
            Configuration if self.state_backend == "flat" else LegacyConfiguration
        )
        if not isinstance(new_config, backend):
            new_config = backend(new_config.as_dict())
        self._config = new_config
        if self._ctx_pool is not None:
            self._ctx_pool = StepContextPool(
                self.network, new_config, self.specs_of
            )
        self.engine.rebind_config(new_config)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> Union[StepRecord, LeanStepRecord]:
        """Execute one step and return its record.

        The scheduler draws from all processes, or — for daemons with
        ``draws_from == "enabled"`` — from the engine-maintained enabled
        set (falling back to all processes when nothing is enabled, so
        a terminal configuration still closes rounds via no-op steps and
        silence is detected at the next round boundary).

        Returns a full :class:`~repro.core.metrics.StepRecord` under
        ``metrics="full"`` and a lean
        :class:`~repro.core.metrics.LeanStepRecord` otherwise.
        """
        if self._enabled_pool:
            pool = self.engine.enabled_list() or self._processes
        else:
            pool = self._processes
        selected = self.scheduler.select(pool, self.rng)
        if not selected:
            raise ConvergenceError("scheduler selected an empty set")

        executions = []
        append = executions.append
        actions = self._actions
        action_rng = self.rng if self.protocol.randomized else None
        ctx_pool = self._ctx_pool
        if ctx_pool is not None:
            # Inlined StepContextPool.acquire / StepContext.reset: two
            # function calls per activation are measurable at 10k
            # activations per synchronous step.
            ctxs = ctx_pool._ctxs
            acquire = ctx_pool.acquire
            for p in selected:
                ctx = ctxs.get(p)
                if ctx is None:
                    ctx = acquire(p, action_rng)
                else:
                    ctx._rng = action_rng
                    ctx._stamp += 1
                    ctx.ports_read.clear()
                    ctx.bits_read = 0.0
                    ctx.writes.clear()
                    ctx.used_randomness = False
                action = first_enabled(actions, ctx)
                if action is not None:
                    action.effect(ctx)
                append((p, ctx, action))
        else:
            network, config, specs_of = self.network, self.config, self.specs_of
            for p in selected:
                ctx = StepContext(p, network, config, specs_of, rng=action_rng)
                action = first_enabled(actions, ctx)
                if action is not None:
                    action.effect(ctx)
                append((p, ctx, action))

        # Simultaneous writes: γi+1 is built only after every activated
        # process has computed its action against γi.  Processes whose
        # communication variables take a *new* value are collected for
        # the engine — only they can flip a neighbor's enabled-status.
        comm_changed = []
        for p, ctx, _action in executions:
            if ctx.flush_writes():
                comm_changed.append(p)
        self.engine.note_step(selected, comm_changed)

        if self._enabled_pool:
            closed = self.round_tracker.record_step(
                selected, still_enabled=self.engine.enabled_view()
            )
        else:
            closed = self.round_tracker.record_step(selected)

        index = self.step_index
        self.step_index = index + 1
        tier = self.metrics_tier
        if tier == "full":
            record = StepRecord(
                index=index,
                activated=frozenset(selected),
                executed={
                    p: (action.name if action else None)
                    for p, _ctx, action in executions
                },
                ports_read={
                    p: frozenset(ctx.ports_read) for p, ctx, _ in executions
                },
                bits_read={p: ctx.bits_read for p, ctx, _ in executions},
                closed_round=closed,
            )
            self.metrics.record(record)
            return record
        if tier == "aggregate":
            self.metrics.record_lean(executions, closed)
        return LeanStepRecord(index, len(selected), closed)

    def run_steps(self, count: int) -> None:
        """Execute exactly ``count`` steps."""
        for _ in range(count):
            self.step()

    def run_rounds(self, count: int) -> int:
        """Execute until ``count`` more rounds complete; returns steps used."""
        target = self.round_tracker.completed_rounds + count
        steps = 0
        while self.round_tracker.completed_rounds < target:
            self.step()
            steps += 1
        return steps

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_legitimate(self) -> bool:
        """Whether the current γ satisfies the protocol's predicate."""
        return self.protocol.is_legitimate(self.network, self.config)

    def is_silent(self) -> bool:
        """Exact check that γ's communication part is fixed forever.

        Sound for any daemon: silence (Def. 3) quantifies over every
        fair scheduling of the future, not the one this simulator uses.
        """
        return is_silent(self.protocol, self.network, self.config)

    def silence_witness(self):
        """A reachable communication write proving γ is not silent
        (None when silent)."""
        return silence_witness(self.protocol, self.network, self.config)

    def enabled_processes(self) -> List[ProcessId]:
        """Processes with at least one enabled action in the current γ.

        Served by the enabled-set engine in canonical network order:
        O(dirty guards) per call under the incremental engine instead
        of one guard evaluation per process.  Code that mutates
        :attr:`config` directly (fault injection does) must call
        :meth:`invalidate_enabled` first or the view may be stale.
        """
        return list(self.engine.enabled_list())

    def invalidate_enabled(
        self, processes: Optional[List[ProcessId]] = None
    ) -> None:
        """Tell the engine some states changed behind the simulator's back.

        ``processes`` limits the invalidation to the touched processes
        (and, via the protocol's read-set declaration, everyone whose
        guards may observe them); ``None`` distrusts the whole network.
        The fault-injection helpers in :mod:`repro.faults` call this for
        you.
        """
        self.engine.invalidate(processes)

    # ------------------------------------------------------------------
    # High-level runs
    # ------------------------------------------------------------------
    def run_until_silent(
        self,
        max_rounds: int = 10_000,
        check_legitimacy: bool = True,
    ) -> StabilizationReport:
        """Run until the configuration is provably silent.

        The (exact) silence check runs at every round boundary.  Raises
        :class:`ConvergenceError` if ``max_rounds`` elapse first — for
        the paper's protocols that indicates a bug, because all three
        are silent within known round bounds.
        """
        if self.is_silent():
            return self._report(silent=True)
        start_round = self.round_tracker.completed_rounds
        while self.round_tracker.completed_rounds - start_round < max_rounds:
            record = self.step()
            if record.closed_round and self.is_silent():
                return self._report(silent=True)
        raise ConvergenceError(
            f"{self.protocol.name} not silent after {max_rounds} rounds "
            f"on {self.network!r} (witness: {self.silence_witness()})"
        )

    def run_until_legitimate(self, max_rounds: int = 10_000) -> StabilizationReport:
        """Run until the legitimacy predicate holds (weaker than silence)."""
        if self.is_legitimate():
            return self._report(silent=None)
        start_round = self.round_tracker.completed_rounds
        while self.round_tracker.completed_rounds - start_round < max_rounds:
            self.step()
            if self.is_legitimate():
                return self._report(silent=None)
        raise ConvergenceError(
            f"{self.protocol.name} not legitimate after {max_rounds} rounds"
        )

    def measure_suffix_stability(self, extra_rounds: int = 10) -> Dict[ProcessId, set]:
        """Arm suffix tracking and run ``extra_rounds`` more rounds.

        Returns each process's accumulated neighbor-read set over the
        suffix — the raw material of the ♦-(x, k)-stability measurement.
        Call after reaching silence.  Works under the ``full`` and
        ``aggregate`` tiers (both fold suffix read-sets); under
        ``metrics="off"`` nothing accumulates.
        """
        self.metrics.start_suffix()
        self.run_rounds(extra_rounds)
        assert self.metrics.suffix_read_sets is not None
        return {p: set(s) for p, s in self.metrics.suffix_read_sets.items()}

    # ------------------------------------------------------------------
    def _report(self, silent: Optional[bool]) -> StabilizationReport:
        actually_silent = self.is_silent() if silent is None else silent
        return StabilizationReport(
            silent=actually_silent,
            legitimate=self.is_legitimate(),
            steps=self.step_index,
            rounds=self.round_tracker.completed_rounds,
            silent_at_step=self.step_index if actually_silent else None,
            silent_at_round=(
                self.round_tracker.completed_rounds if actually_silent else None
            ),
        )
