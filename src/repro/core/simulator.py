"""The step simulator.

Implements the computation model of paper §2 faithfully:

* a *step* ``(γi, si, γi+1)`` activates a scheduler-chosen non-empty
  subset ``si`` of processes;
* every activated process evaluates its guards in priority order
  **against γi** and executes its highest-priority enabled action (a
  disabled process does nothing — the footnote case);
* all writes land simultaneously in ``γi+1``;
* rounds are counted with :class:`~repro.core.rounds.RoundTracker`;
* every neighbor read (guards included) is tracked for the
  communication-efficiency metrics;
* the set of enabled processes is maintained across steps by an
  :class:`~repro.core.engine.EnabledSetEngine` (incremental dirty-set
  updates by default, with a full-scan fallback and a self-auditing
  debug mode), which powers :meth:`Simulator.enabled_processes` and the
  enabled-drawing daemons.

Hot-path design (flat-state step loop): the default ``state="flat"``
backend addresses process state as ``row[slot]`` through the indexed
:class:`~repro.core.state.Configuration`, reuses one pooled
:class:`~repro.core.context.StepContext` per process per run instead of
allocating one per activation, and — under ``metrics="aggregate"`` —
folds the paper's measures straight off the contexts without
materializing per-step :class:`~repro.core.metrics.StepRecord` objects.
``state="legacy"`` + ``metrics="full"`` reproduces the historical
dict-of-dicts loop step for step; the flat-vs-legacy equivalence tests
require byte-identical traces between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Union

from .actions import first_enabled
from .context import StepContext, StepContextPool
from .engine import EnabledSetEngine, make_engine
from .exceptions import ConvergenceError
from ..obs.registry import TELEMETRY
from .metrics import METRICS_TIERS, LeanStepRecord, MetricsCollector, StepRecord
from .protocol import Protocol
from .rngstreams import RngStreams
from .rounds import RoundTracker
from .scheduler import Scheduler, SynchronousScheduler
from .silence import is_silent, silence_witness
from .state import Configuration, LegacyConfiguration

ProcessId = Hashable

#: Configuration backends accepted by ``Simulator(state=...)``.
STATE_BACKENDS = ("flat", "legacy")


@dataclass
class StabilizationReport:
    """Outcome of a :meth:`Simulator.run_until_silent` run."""

    silent: bool
    legitimate: bool
    steps: int
    rounds: int
    #: step index at which the silence check first succeeded (None if never)
    silent_at_step: Optional[int]
    #: rounds completed when silence was detected (None if never)
    silent_at_round: Optional[int]

    @property
    def stabilized(self) -> bool:
        return self.silent and self.legitimate


class Simulator:
    """Executes one protocol on one network under one scheduler.

    Parameters
    ----------
    protocol, network:
        What to run and where.
    scheduler:
        Defaults to the synchronous scheduler (one step per round).
    seed:
        Seeds the run's named RNG streams
        (:class:`~repro.core.rngstreams.RngStreams`): the root stream
        drives the scheduler and any randomized actions exactly as the
        historical single run RNG did, while scenarios draw from an
        independent derived stream — runs replay exactly, and adding a
        scenario never changes the scheduler's draw sequence.
    config:
        Starting configuration; defaults to a fresh *arbitrary*
        (uniformly corrupted) configuration, the standard
        self-stabilization starting point.  A private copy is taken in
        the requested ``state`` backend either way.
    engine:
        Enabled-set maintenance strategy: ``"incremental"`` (default),
        ``"scan"``, ``"debug"``, or a ready
        :class:`~repro.core.engine.EnabledSetEngine` instance.  Every
        engine yields step-for-step identical executions; they differ
        only in how much work keeping the enabled set current costs.
    full_scan:
        Convenience fallback: ``full_scan=True`` forces the ``"scan"``
        engine regardless of ``engine``.
    metrics:
        Metrics tier (:data:`~repro.core.metrics.METRICS_TIERS`):
        ``"full"`` (default) returns one
        :class:`~repro.core.metrics.StepRecord` per step exactly as
        before; ``"aggregate"`` streams the paper's measures into the
        collector without building records (identical final measures,
        much cheaper — :meth:`step` then returns a
        :class:`~repro.core.metrics.LeanStepRecord`); ``"off"`` skips
        the collector entirely.  Traces require ``"full"``.
    state:
        Configuration backend (:data:`STATE_BACKENDS`): ``"flat"``
        (default) runs the indexed row/slot hot path with pooled step
        contexts; ``"legacy"`` runs the historical dict-of-dicts path
        with per-activation context allocation — the reference both for
        the equivalence tests and the performance benchmarks' baseline.
    keep_records:
        Bounded :class:`~repro.core.metrics.StepRecord` retention under
        the ``full`` tier (most recent N on ``metrics.records``);
        ``0`` (default) retains nothing.
    scenario:
        Optional scenario script (any object exposing ``bind(sim)``
        returning a runtime with ``before_step``/``after_step`` hooks —
        :class:`repro.scenarios.Scenario` in practice).  Events draw
        from the dedicated ``scenario`` RNG stream, so attaching one
        never perturbs the scheduler's or the protocol's draws; a run
        without a scenario pays one attribute check per step.
    protocol_factory:
        ``network -> Protocol`` rebuild hook required by topology-churn
        scenario events (:meth:`rebind_network`): after a node/edge
        mutation the protocol must be re-instantiated for the new
        network (degrees, palettes and local-identifier colorings are
        network-derived).  ``ExperimentSpec.build_simulator`` supplies
        the registry builder automatically.
    """

    def __init__(
        self,
        protocol: Protocol,
        network,
        scheduler: Optional[Scheduler] = None,
        seed: Optional[int] = None,
        config: Optional[Configuration] = None,
        engine: Union[str, EnabledSetEngine] = "incremental",
        full_scan: bool = False,
        metrics: str = "full",
        state: str = "flat",
        keep_records: int = 0,
        scenario=None,
        protocol_factory: Optional[Callable] = None,
    ):
        if metrics not in METRICS_TIERS:
            raise ValueError(
                f"unknown metrics tier {metrics!r}; known: {METRICS_TIERS}"
            )
        if state not in STATE_BACKENDS:
            raise ValueError(
                f"unknown state backend {state!r}; known: {STATE_BACKENDS}"
            )
        self.protocol = protocol
        self.network = network
        self.scheduler = scheduler or SynchronousScheduler()
        # A reused stateful scheduler (round-robin pointer, bounded-fair
        # starvation counters, scripted prefix) must not carry pacing
        # state from a previous simulator into this run.
        self.scheduler.reset()
        #: named RNG streams; the historical single run RNG survives as
        #: the root (scheduler + protocol draws, byte-compatible with
        #: pre-scenario runs), while scenarios draw from their own
        #: derived stream.
        self.rngs = RngStreams(seed)
        self.rng = self.rngs.root
        self.specs_of = protocol.specs_of(network)
        self._actions = protocol.actions()
        self.metrics_tier = metrics
        self.state_backend = state
        backend = Configuration if state == "flat" else LegacyConfiguration
        if config is None:
            config = protocol.arbitrary_configuration(network, self.rng)
            if not isinstance(config, backend):
                config = backend(config.as_dict())
        else:
            # Private copy, normalized into the requested backend.
            config = backend(config.as_dict())
        protocol.validate_configuration(network, config,
                                        specs_of=self.specs_of)
        self._config = config
        # The canonical process list, cached once: Network.processes
        # builds a fresh list per call, far too expensive per step.
        self._processes = tuple(network.processes)
        self.round_tracker = RoundTracker(self._processes)
        self._metrics = MetricsCollector(
            self._processes, keep_records=keep_records
        )
        self.step_index = 0
        self.engine = make_engine("scan" if full_scan else engine)
        self.engine.bind(protocol, network, self.config, self.specs_of)
        # Batch-capable engines accumulate aggregate counts in vectors;
        # the ``metrics`` property drains them before any external read.
        self._metrics_flush = getattr(
            self.engine, "flush_pending_metrics", None
        )
        self._enabled_pool = self.scheduler.draws_from == "enabled"
        self._sched_distinct = getattr(
            self.scheduler, "selects_distinct", False
        )
        self._derive_batch()
        # Pooled contexts power the flat hot path; the legacy backend
        # keeps the historical one-context-per-activation allocation so
        # it stays a faithful baseline.
        self._ctx_pool = (
            StepContextPool(network, self.config, self.specs_of)
            if state == "flat"
            else None
        )
        # Telemetry handles, fetched once: the step loop pays a single
        # ``enabled`` attribute check per step, and allocation-free
        # ``inc`` calls only while the registry is switched on.
        self._obs = TELEMETRY
        self._obs_steps = TELEMETRY.counter("sim.steps")
        self._obs_activations = TELEMETRY.counter("sim.activations")
        self._protocol_factory = protocol_factory
        #: audit log of out-of-band fault writes (``FaultReport``-like
        #: objects appended by :meth:`note_fault`; the trace recorder
        #: drains it into fault events)
        self.fault_log: List[object] = []
        #: live scenario runtime (None on scenario-free runs)
        self.scenario_runtime = None
        if scenario is not None:
            self.install_scenario(scenario)

    # ------------------------------------------------------------------
    # Metrics access
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> MetricsCollector:
        """The run's metrics collector.

        A batch engine folds aggregate-tier counts into engine-side
        vectors between reads; accessing the collector through this
        property drains them first, so external readers (summaries,
        scenario hooks, the warehouse) always see exact totals.
        """
        flush = self._metrics_flush
        if flush is not None:
            flush()
        return self._metrics

    def _derive_batch(self) -> None:
        """Route the step loop through the engine's batch path when the
        engine is batch-capable *and* currently active (flat state with
        a registered kernel; re-derived after every engine rebind)."""
        engine = self.engine
        self._batch = (
            engine
            if self.state_backend == "flat"
            and getattr(engine, "batch_active", False)
            else None
        )

    # ------------------------------------------------------------------
    # Configuration access
    # ------------------------------------------------------------------
    @property
    def config(self) -> Union[Configuration, LegacyConfiguration]:
        """The live configuration γ.

        Assigning a replacement configuration swaps the run's state
        wholesale: the new object is normalized into the simulator's
        backend, every pooled context is rebuilt (their cached rows
        address the old storage), and the enabled-set engine is
        rebound and fully invalidated.  In-place mutation via
        :meth:`invalidate_enabled` remains the cheaper path for faults.
        """
        return self._config

    @config.setter
    def config(self, new_config) -> None:
        backend = (
            Configuration if self.state_backend == "flat" else LegacyConfiguration
        )
        if not isinstance(new_config, backend):
            new_config = backend(new_config.as_dict())
        self._config = new_config
        if self._ctx_pool is not None:
            self._ctx_pool = StepContextPool(
                self.network, new_config, self.specs_of
            )
        self.engine.rebind_config(new_config)
        self._derive_batch()
        if self.scenario_runtime is not None:
            self.scenario_runtime.silence_cache = None

    # ------------------------------------------------------------------
    # Scenario / fault plumbing
    # ------------------------------------------------------------------
    def install_scenario(self, scenario) -> None:
        """Attach (or replace) the run's scenario script.

        ``scenario.bind(self)`` builds the live runtime whose
        ``before_step``/``after_step`` hooks the step loop calls; its
        events draw from the dedicated ``scenario`` RNG stream.
        """
        self.scenario_runtime = scenario.bind(self)

    def note_fault(self, report) -> None:
        """Log one out-of-band fault application for auditing.

        Called by the :mod:`repro.faults` injectors with their
        ``FaultReport``; the report lands on :attr:`fault_log` (which
        :class:`~repro.core.trace.TraceRecorder` drains into the trace)
        and its victim count streams into the metrics collector under
        the ``full`` and ``aggregate`` tiers.
        """
        self.fault_log.append(report)
        if self.metrics_tier != "off":
            self.metrics.record_fault(len(getattr(report, "victims", ())))

    def swap_scheduler(self, scheduler: Scheduler) -> None:
        """Replace the daemon mid-run (a scenario event).

        The incoming scheduler is reset (no pacing state may leak in)
        and the selection-pool wiring is re-derived from its
        ``draws_from`` declaration.
        """
        scheduler.reset()
        self.scheduler = scheduler
        self._enabled_pool = scheduler.draws_from == "enabled"
        self._sched_distinct = getattr(scheduler, "selects_distinct", False)

    def rebind_network(self, network, rng=None) -> None:
        """Adopt a mutated topology mid-run (scenario churn events).

        Rebuilds the protocol via ``protocol_factory`` (churn changes
        degrees, palettes, and local-identifier colorings, so the
        protocol instance is network-derived), then migrates the run:

        * surviving processes keep every variable value still inside
          its (possibly resized) domain; integer pointer-like values
          are clamped, anything else is resampled from the scenario
          stream — the model of a churn event is a transient fault at
          the affected processes;
        * joined processes start from arbitrary (corrupted) states;
        * communication constants are re-derived by the new protocol;
        * the engine, context pools, round tracker, metrics keys and
          (network-aware) scheduler are all rebound; the whole enabled
          set is distrusted.
        """
        if self._protocol_factory is None:
            raise ValueError(
                "topology mutation requires a protocol_factory= rebuild "
                "hook on the Simulator (ExperimentSpec.build_simulator "
                "supplies one; imperative callers must pass their own)"
            )
        rng = rng if rng is not None else self.rngs.scenario
        protocol = self._protocol_factory(network)
        specs_of = protocol.specs_of(network)
        old_states = self._config.as_dict()
        states = {}
        for p in network.processes:
            consts = protocol.constant_values(network, p)
            old = old_states.get(p)
            state = {}
            for spec in specs_of[p]:
                if spec.kind == "const":
                    state[spec.name] = consts[spec.name]
                    continue
                value = None
                if old is not None and spec.name in old:
                    prev = old[spec.name]
                    if prev in spec.domain:
                        value = prev
                    elif isinstance(prev, int) and hasattr(spec.domain, "lo"):
                        value = max(spec.domain.lo,
                                    min(spec.domain.hi, prev))
                if value is None:
                    value = spec.domain.sample(rng)
                state[spec.name] = value
            states[p] = state
        backend = (
            Configuration if self.state_backend == "flat"
            else LegacyConfiguration
        )
        config = backend(states)
        protocol.validate_configuration(network, config, specs_of=specs_of)

        self.protocol = protocol
        self.network = network
        self.specs_of = specs_of
        self._actions = protocol.actions()
        self._config = config
        self._processes = tuple(network.processes)
        self.round_tracker.rebind(self._processes)
        self.metrics.rebind_processes(list(self._processes))
        if self._ctx_pool is not None:
            self._ctx_pool = StepContextPool(network, config, specs_of)
        self.engine.rebind_network(protocol, network, config, specs_of)
        self._derive_batch()
        self.scheduler.rebind_network(network)
        if self.scenario_runtime is not None:
            self.scenario_runtime.silence_cache = None

    def report(self) -> StabilizationReport:
        """A report for the *current* configuration (silence checked
        now) — what a horizon-bounded scenario run returns."""
        return self._report(silent=None)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> Union[StepRecord, LeanStepRecord]:
        """Execute one step and return its record.

        The scheduler draws from all processes, or — for daemons with
        ``draws_from == "enabled"`` — from the engine-maintained enabled
        set (falling back to all processes when nothing is enabled, so
        a terminal configuration still closes rounds via no-op steps and
        silence is detected at the next round boundary).

        Returns a full :class:`~repro.core.metrics.StepRecord` under
        ``metrics="full"`` and a lean
        :class:`~repro.core.metrics.LeanStepRecord` otherwise.

        Scenario hook point: an installed scenario runtime sees the
        step boundary *before* the selection (events mutate γ, the
        topology, or the daemon, and the engine is invalidated before
        the pool is drawn) and again after the step's accounting.
        """
        runtime = self.scenario_runtime
        if runtime is not None:
            runtime.before_step(self)
        if self._enabled_pool:
            pool = self.engine.enabled_list() or self._processes
        else:
            pool = self._processes
        selected = self.scheduler.select(pool, self.rngs.scheduler)
        if not selected:
            raise ConvergenceError("scheduler selected an empty set")

        batch = self._batch
        if batch is not None:
            if self._sched_distinct or len(set(selected)) == len(selected):
                return self._batch_step(batch, selected, runtime)
            # Scalar divert (duplicate pids): pooled contexts cache raw
            # row references, bypassing the resident config hook — the
            # columns must be decoded before any context reads them.
            batch.materialize_rows()

        executions = []
        append = executions.append
        actions = self._actions
        action_rng = self.rngs.protocol if self.protocol.randomized else None
        ctx_pool = self._ctx_pool
        if ctx_pool is not None:
            # Inlined StepContextPool.acquire / StepContext.reset: two
            # function calls per activation are measurable at 10k
            # activations per synchronous step.
            ctxs = ctx_pool._ctxs
            acquire = ctx_pool.acquire
            for p in selected:
                ctx = ctxs.get(p)
                if ctx is None:
                    ctx = acquire(p, action_rng)
                else:
                    ctx._rng = action_rng
                    ctx._stamp += 1
                    ctx.ports_read.clear()
                    ctx.bits_read = 0.0
                    ctx.writes.clear()
                    ctx.used_randomness = False
                action = first_enabled(actions, ctx)
                if action is not None:
                    action.effect(ctx)
                append((p, ctx, action))
        else:
            network, config, specs_of = self.network, self.config, self.specs_of
            for p in selected:
                ctx = StepContext(p, network, config, specs_of, rng=action_rng)
                action = first_enabled(actions, ctx)
                if action is not None:
                    action.effect(ctx)
                append((p, ctx, action))

        # Simultaneous writes: γi+1 is built only after every activated
        # process has computed its action against γi.  Processes whose
        # communication variables take a *new* value are collected for
        # the engine — only they can flip a neighbor's enabled-status.
        comm_changed = []
        for p, ctx, _action in executions:
            if ctx.flush_writes():
                comm_changed.append(p)
        self.engine.note_step(selected, comm_changed)

        if self._enabled_pool:
            closed = self.round_tracker.record_step(
                selected, still_enabled=self.engine.enabled_view()
            )
        else:
            closed = self.round_tracker.record_step(selected)

        index = self.step_index
        self.step_index = index + 1
        if self._obs.enabled:
            self._obs_steps.inc()
            self._obs_activations.inc(len(selected))
        tier = self.metrics_tier
        if tier == "full":
            record = StepRecord(
                index=index,
                activated=frozenset(selected),
                executed={
                    p: (action.name if action else None)
                    for p, _ctx, action in executions
                },
                ports_read={
                    p: frozenset(ctx.ports_read) for p, ctx, _ in executions
                },
                bits_read={p: ctx.bits_read for p, ctx, _ in executions},
                closed_round=closed,
            )
            self._metrics.record(record)
            if runtime is not None:
                runtime.after_step(self, closed)
            return record
        if tier == "aggregate":
            self._metrics.record_lean(executions, closed)
        if runtime is not None:
            runtime.after_step(self, closed)
        return LeanStepRecord(index, len(selected), closed)

    def _batch_step(self, engine, selected, runtime):
        """One whole step evaluated over columns.

        Reached only when the bound engine reports ``batch_active`` and
        the selection is duplicate-free (scripted daemons may repeat a
        pid; such steps take the scalar loop instead).  Produces the
        same γi+1, the same records, and the same metrics folds as the
        scalar path — bit for bit — just without per-process contexts.
        """
        action_rng = self.rngs.protocol if self.protocol.randomized else None
        outcome = engine.execute_step(selected, action_rng)

        if self._enabled_pool:
            closed = self.round_tracker.record_step(
                selected, still_enabled=engine.enabled_view()
            )
        else:
            closed = self.round_tracker.record_step(selected)

        index = self.step_index
        self.step_index = index + 1
        if self._obs.enabled:
            self._obs_steps.inc()
            self._obs_activations.inc(len(selected))
        tier = self.metrics_tier
        if tier == "full":
            record = engine.make_step_record(index, outcome, closed)
            self._metrics.record(record)
            if runtime is not None:
                runtime.after_step(self, closed)
            return record
        if tier == "aggregate":
            engine.fold_aggregate(outcome, self._metrics, closed)
        if runtime is not None:
            runtime.after_step(self, closed)
        return LeanStepRecord(index, len(selected), closed)

    def _fused_resident(self):
        """The engine to hand a fused columnar run to, or None.

        The fused driver covers scenario-free synchronous-daemon runs
        (plain or ``enabled_only``) below the ``full`` metrics tier on
        a column-resident engine; anything else — per-step records,
        scenario hooks, exotic daemons — keeps the per-step loop, which
        handles resident stores via the materialization hook.
        """
        batch = self._batch
        if (
            batch is not None
            and batch.resident
            and self.scenario_runtime is None
            and self.metrics_tier != "full"
            and type(self.scheduler) is SynchronousScheduler
        ):
            return batch
        return None

    def run_resident(
        self,
        steps: Optional[int] = None,
        stop_on_silence: bool = False,
        max_rounds: Optional[int] = None,
    ):
        """Drive the fused column-resident loop explicitly.

        Requires an eligible run (see :meth:`run_steps` for the
        delegation rules); returns ``(steps_executed, silent)`` from
        :meth:`BatchEngine.run_steps <repro.core.batchengine.BatchEngine.run_steps>`.
        """
        engine = self._fused_resident()
        if engine is None:
            raise ConvergenceError(
                "run_resident() requires an active batch-resident engine "
                "on a scenario-free synchronous-daemon run below the "
                "'full' metrics tier"
            )
        return engine.run_steps(
            self,
            max_steps=steps,
            stop_on_silence=stop_on_silence,
            round_budget=max_rounds,
        )

    def run_steps(self, count: int) -> None:
        """Execute exactly ``count`` steps."""
        engine = self._fused_resident()
        if engine is not None and count > 0:
            engine.run_steps(self, max_steps=count)
            return
        for _ in range(count):
            self.step()

    def run_rounds(self, count: int) -> int:
        """Execute until ``count`` more rounds complete; returns steps used."""
        target = self.round_tracker.completed_rounds + count
        steps = 0
        while self.round_tracker.completed_rounds < target:
            self.step()
            steps += 1
        return steps

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_legitimate(self) -> bool:
        """Whether the current γ satisfies the protocol's predicate."""
        return self.protocol.is_legitimate(self.network, self.config)

    def is_silent(self) -> bool:
        """Exact check that γ's communication part is fixed forever.

        Sound for any daemon: silence (Def. 3) quantifies over every
        fair scheduling of the future, not the one this simulator uses.

        On scenario runs the verdict is cached per (step, fault-count)
        boundary — the run loop, the recovery tracker and pending
        ``after_silence`` triggers all ask at the same boundary, and
        the check is a full-network scan.  The cache is keyed on
        :attr:`step_index` and ``len(fault_log)``, so every sanctioned
        mutation path (steps, the fault injectors, churn rebinding)
        invalidates it; out-of-band writes that bypass the injectors
        must not be mixed with installed scenarios.
        """
        runtime = self.scenario_runtime
        if runtime is None:
            return is_silent(self.protocol, self.network, self.config)
        key = (self.step_index, len(self.fault_log))
        cached = runtime.silence_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        verdict = is_silent(self.protocol, self.network, self.config)
        runtime.silence_cache = (key, verdict)
        return verdict

    def silence_witness(self):
        """A reachable communication write proving γ is not silent
        (None when silent)."""
        return silence_witness(self.protocol, self.network, self.config)

    def enabled_processes(self) -> List[ProcessId]:
        """Processes with at least one enabled action in the current γ.

        Served by the enabled-set engine in canonical network order:
        O(dirty guards) per call under the incremental engine instead
        of one guard evaluation per process.  Code that mutates
        :attr:`config` directly (fault injection does) must call
        :meth:`invalidate_enabled` first or the view may be stale.
        """
        return list(self.engine.enabled_list())

    def invalidate_enabled(
        self, processes: Optional[List[ProcessId]] = None
    ) -> None:
        """Tell the engine some states changed behind the simulator's back.

        ``processes`` limits the invalidation to the touched processes
        (and, via the protocol's read-set declaration, everyone whose
        guards may observe them); ``None`` distrusts the whole network.
        The fault-injection helpers in :mod:`repro.faults` call this for
        you.
        """
        self.engine.invalidate(processes)

    # ------------------------------------------------------------------
    # High-level runs
    # ------------------------------------------------------------------
    def run_until_silent(
        self,
        max_rounds: int = 10_000,
        check_legitimacy: bool = True,
    ) -> StabilizationReport:
        """Run until the configuration is provably silent.

        The (exact) silence check runs at every round boundary.  Raises
        :class:`ConvergenceError` if ``max_rounds`` elapse first — for
        the paper's protocols that indicates a bug, because all three
        are silent within known round bounds.
        """
        if self.is_silent():
            return self._report(silent=True)
        engine = self._fused_resident()
        if engine is not None:
            _steps, silent = engine.run_steps(
                self, stop_on_silence=True, round_budget=max_rounds
            )
            if silent:
                return self._report(silent=True)
        else:
            start_round = self.round_tracker.completed_rounds
            while (self.round_tracker.completed_rounds - start_round
                   < max_rounds):
                record = self.step()
                if record.closed_round and self.is_silent():
                    return self._report(silent=True)
        raise ConvergenceError(
            f"{self.protocol.name} not silent after {max_rounds} rounds "
            f"on {self.network!r} (witness: {self.silence_witness()})"
        )

    def run_until_legitimate(self, max_rounds: int = 10_000) -> StabilizationReport:
        """Run until the legitimacy predicate holds (weaker than silence)."""
        if self.is_legitimate():
            return self._report(silent=None)
        start_round = self.round_tracker.completed_rounds
        while self.round_tracker.completed_rounds - start_round < max_rounds:
            self.step()
            if self.is_legitimate():
                return self._report(silent=None)
        raise ConvergenceError(
            f"{self.protocol.name} not legitimate after {max_rounds} rounds"
        )

    def measure_suffix_stability(self, extra_rounds: int = 10) -> Dict[ProcessId, set]:
        """Arm suffix tracking and run ``extra_rounds`` more rounds.

        Returns each process's accumulated neighbor-read set over the
        suffix — the raw material of the ♦-(x, k)-stability measurement.
        Call after reaching silence.  Works under the ``full`` and
        ``aggregate`` tiers (both fold suffix read-sets); under
        ``metrics="off"`` nothing accumulates.
        """
        self.metrics.start_suffix()
        self.run_rounds(extra_rounds)
        assert self.metrics.suffix_read_sets is not None
        return {p: set(s) for p, s in self.metrics.suffix_read_sets.items()}

    # ------------------------------------------------------------------
    def _report(self, silent: Optional[bool]) -> StabilizationReport:
        actually_silent = self.is_silent() if silent is None else silent
        return StabilizationReport(
            silent=actually_silent,
            legitimate=self.is_legitimate(),
            steps=self.step_index,
            rounds=self.round_tracker.completed_rounds,
            silent_at_step=self.step_index if actually_silent else None,
            silent_at_round=(
                self.round_tracker.completed_rounds if actually_silent else None
            ),
        )
