"""Communication metrics.

Implements the measurable side of the paper's Section 3:

* **k-efficiency** (Def. 4) — the largest number of distinct neighbors
  any process reads in any single step.
* **Communication complexity** (Def. 5) — the most bits a process reads
  from neighbors in a step.
* **R_p(C) and stability** (Defs. 7–9) — the accumulated set of
  neighbors a process reads over a (suffix of a) computation; a protocol
  observed with ``R_p ≤ k`` for x processes over a suffix is evidence of
  ♦-(x, k)-stability.

The collector is fed one :class:`StepRecord` per step by the simulator
and can be "re-armed" (``start_suffix``) at the silence point so the
suffix read-sets measure the stabilized phase exactly as the paper's
♦-notions require.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Set

ProcessId = Hashable


@dataclass(frozen=True)
class StepRecord:
    """What happened in one step, as far as communication is concerned."""

    index: int
    activated: FrozenSet[ProcessId]
    #: rule name fired per activated process (None = was disabled)
    executed: Dict[ProcessId, Optional[str]]
    #: distinct neighbor ports read per activated process
    ports_read: Dict[ProcessId, FrozenSet[int]]
    #: bits of neighbor information read per activated process
    bits_read: Dict[ProcessId, float]
    closed_round: bool


class MetricsCollector:
    """Aggregates step records into the paper's communication measures."""

    def __init__(self, processes: List[ProcessId]):
        self._processes = list(processes)
        self.steps = 0
        self.rounds = 0
        #: worst per-step neighbor-read count seen so far (observed k-efficiency)
        self.max_reads_in_step = 0
        #: worst per-step bits read by a single process (Def. 5, observed)
        self.max_bits_in_step = 0.0
        self.total_bits = 0.0
        self.total_reads = 0
        #: activation counts per process
        self.activations: Dict[ProcessId, int] = {p: 0 for p in self._processes}
        #: accumulated neighbor-read sets over the whole run
        self.read_sets: Dict[ProcessId, Set[int]] = {p: set() for p in self._processes}
        #: accumulated neighbor-read sets since :meth:`start_suffix`
        self.suffix_read_sets: Optional[Dict[ProcessId, Set[int]]] = None
        self.suffix_start_step: Optional[int] = None

    # ------------------------------------------------------------------
    def record(self, record: StepRecord) -> None:
        """Fold one step record into the aggregates (simulator hook)."""
        self.steps += 1
        if record.closed_round:
            self.rounds += 1
        for p in record.activated:
            self.activations[p] += 1
        for p, ports in record.ports_read.items():
            count = len(ports)
            if count > self.max_reads_in_step:
                self.max_reads_in_step = count
            self.total_reads += count
            self.read_sets[p].update(ports)
            if self.suffix_read_sets is not None:
                self.suffix_read_sets[p].update(ports)
        for p, bits in record.bits_read.items():
            if bits > self.max_bits_in_step:
                self.max_bits_in_step = bits
            self.total_bits += bits

    # ------------------------------------------------------------------
    # Stability measurement
    # ------------------------------------------------------------------
    def start_suffix(self) -> None:
        """Begin accumulating the suffix read-sets (call at silence)."""
        self.suffix_read_sets = {p: set() for p in self._processes}
        self.suffix_start_step = self.steps

    def suffix_stable_processes(self, k: int = 1) -> List[ProcessId]:
        """Processes whose suffix read-set has size ≤ k.

        With the suffix armed at the silence point, the length of this
        list is the measured ``x`` of ♦-(x, k)-stability.
        """
        if self.suffix_read_sets is None:
            raise RuntimeError("start_suffix() was never called")
        return [
            p for p in self._processes if len(self.suffix_read_sets[p]) <= k
        ]

    def observed_k_efficiency(self) -> int:
        """The smallest k for which the run was k-efficient (Def. 4)."""
        return self.max_reads_in_step

    def observed_stability(self) -> int:
        """The smallest k for which the *whole run* was k-stable (Def. 7)."""
        return max((len(s) for s in self.read_sets.values()), default=0)

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline numbers for tables and benchmarks."""
        return {
            "steps": self.steps,
            "rounds": self.rounds,
            "k_efficiency": self.max_reads_in_step,
            "max_bits_per_step": self.max_bits_in_step,
            "total_bits": self.total_bits,
            "total_reads": self.total_reads,
        }
