"""Communication metrics.

Implements the measurable side of the paper's Section 3:

* **k-efficiency** (Def. 4) — the largest number of distinct neighbors
  any process reads in any single step.
* **Communication complexity** (Def. 5) — the most bits a process reads
  from neighbors in a step.
* **R_p(C) and stability** (Defs. 7–9) — the accumulated set of
  neighbors a process reads over a (suffix of a) computation; a protocol
  observed with ``R_p ≤ k`` for x processes over a suffix is evidence of
  ♦-(x, k)-stability.

The simulator feeds the collector through one of three *metrics tiers*
(:data:`METRICS_TIERS`, the ``metrics=`` knob on
:class:`~repro.core.simulator.Simulator` and
:class:`~repro.api.ExperimentSpec`):

* ``"full"`` — one :class:`StepRecord` per step, exactly the historical
  behavior; required by traces and the replay tests.
* ``"aggregate"`` — the paper's measures are folded straight off the
  step's pooled contexts (:meth:`MetricsCollector.record_lean`) without
  materializing a ``StepRecord``; every aggregate reported by
  :meth:`MetricsCollector.summary` and the suffix machinery is
  identical to the ``full`` tier's, at a fraction of the per-step cost.
* ``"off"`` — the collector is never touched; only
  ``Simulator.step_index`` and the round tracker advance.

Memory contract: the collector itself is ``O(n + Σ|read sets|)`` —
aggregates and per-process read sets, independent of run length.  Step
records are **not retained** unless explicitly requested via
``keep_records=N``, which keeps a bounded deque of the most recent N
records (``MetricsCollector.records``); unbounded retention is
deliberately impossible.  The collector can be "re-armed"
(``start_suffix``) at the silence point so the suffix read-sets measure
the stabilized phase exactly as the paper's ♦-notions require.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, FrozenSet, Hashable, List, Optional, Set

ProcessId = Hashable

#: Metrics tiers accepted by ``Simulator(metrics=...)`` and
#: ``ExperimentSpec(metrics=...)``.
METRICS_TIERS = ("full", "aggregate", "off")


@dataclass(frozen=True)
class StepRecord:
    """What happened in one step, as far as communication is concerned."""

    index: int
    activated: FrozenSet[ProcessId]
    #: rule name fired per activated process (None = was disabled)
    executed: Dict[ProcessId, Optional[str]]
    #: distinct neighbor ports read per activated process
    ports_read: Dict[ProcessId, FrozenSet[int]]
    #: bits of neighbor information read per activated process
    bits_read: Dict[ProcessId, float]
    closed_round: bool


@dataclass(frozen=True)
class LeanStepRecord:
    """Skeletal step result returned under the non-``full`` tiers.

    Carries just enough for the run loops (``closed_round`` drives
    ``run_until_silent``); per-process read sets and rule names are
    folded into the collector (``aggregate``) or dropped (``off``)
    without ever being materialized.
    """

    index: int
    activated_count: int
    closed_round: bool


class MetricsCollector:
    """Aggregates step records into the paper's communication measures.

    Parameters
    ----------
    processes:
        The network's process list (aggregates are keyed per process).
    keep_records:
        Optional bounded retention: keep the most recent ``N`` full
        :class:`StepRecord` objects in :attr:`records` for debugging.
        The default ``0`` retains nothing — the memory contract of the
        collector is independent of run length.
    """

    def __init__(self, processes: List[ProcessId], keep_records: int = 0):
        self._processes = list(processes)
        self.steps = 0
        self.rounds = 0
        #: worst per-step neighbor-read count seen so far (observed k-efficiency)
        self.max_reads_in_step = 0
        #: worst per-step bits read by a single process (Def. 5, observed)
        self.max_bits_in_step = 0.0
        self.total_bits = 0.0
        self.total_reads = 0
        #: activation counts per process
        self.activations: Dict[ProcessId, int] = {p: 0 for p in self._processes}
        #: accumulated neighbor-read sets over the whole run
        self.read_sets: Dict[ProcessId, Set[int]] = {p: set() for p in self._processes}
        #: accumulated neighbor-read sets since :meth:`start_suffix`
        self.suffix_read_sets: Optional[Dict[ProcessId, Set[int]]] = None
        self.suffix_start_step: Optional[int] = None
        if keep_records < 0:
            raise ValueError("keep_records must be >= 0")
        self.keep_records = keep_records
        #: bounded deque of the most recent records (None unless
        #: ``keep_records > 0``; only the ``full`` tier feeds it)
        self.records: Optional[Deque[StepRecord]] = (
            deque(maxlen=keep_records) if keep_records else None
        )
        # -- scenario measures (fed by fault injection / ScenarioRuntime;
        #    all stay zero on scenario-free runs, and the ``off`` tier
        #    never feeds them) ------------------------------------------
        #: number of fault/churn events applied to the run
        self.faults_injected = 0
        #: total processes hit across all fault events
        self.fault_victims = 0
        #: rounds from each fault to the return of silence
        self.recovery_rounds: List[int] = []
        #: steps from each fault to the return of silence
        self.recovery_steps: List[int] = []
        #: neighbor-read bits spent between faults and re-silence
        self.post_fault_bits = 0.0
        #: per-step legitimacy samples (availability tracking only)
        self.availability_steps = 0
        self.legitimate_steps = 0

    # ------------------------------------------------------------------
    def record(self, record: StepRecord) -> None:
        """Fold one step record into the aggregates (``full``-tier hook)."""
        self.steps += 1
        if record.closed_round:
            self.rounds += 1
        for p in record.activated:
            self.activations[p] += 1
        for p, ports in record.ports_read.items():
            count = len(ports)
            if count > self.max_reads_in_step:
                self.max_reads_in_step = count
            self.total_reads += count
            self.read_sets[p].update(ports)
            if self.suffix_read_sets is not None:
                self.suffix_read_sets[p].update(ports)
        for p, bits in record.bits_read.items():
            if bits > self.max_bits_in_step:
                self.max_bits_in_step = bits
            self.total_bits += bits
        if self.records is not None:
            self.records.append(record)

    def record_lean(self, executions, closed_round: bool) -> None:
        """Fold one step straight off the step contexts (``aggregate``).

        ``executions`` is the simulator's ``(pid, ctx, action)`` list
        for the step; the fold reads each context's ``ports_read`` /
        ``bits_read`` in place and produces aggregates identical to
        feeding :meth:`record` the equivalent :class:`StepRecord` —
        the metrics-tier property tests pin that equivalence — without
        ever building the record's frozensets and dicts.  A process
        appearing twice in one selection (a scripted
        ``FixedSequenceScheduler`` step can repeat pids) is folded
        once, matching the ``full`` tier's frozenset/dict dedup.
        """
        self.steps += 1
        if closed_round:
            self.rounds += 1
        activations = self.activations
        read_sets = self.read_sets
        suffix = self.suffix_read_sets
        max_reads = self.max_reads_in_step
        max_bits = self.max_bits_in_step
        total_reads = self.total_reads
        total_bits = self.total_bits
        seen = set()
        seen_add = seen.add
        for p, ctx, _action in executions:
            if p in seen:
                continue
            seen_add(p)
            activations[p] += 1
            ports = ctx.ports_read
            count = len(ports)
            if count:
                if count > max_reads:
                    max_reads = count
                total_reads += count
                read_sets[p].update(ports)
                if suffix is not None:
                    suffix[p].update(ports)
            bits = ctx.bits_read
            if bits > max_bits:
                max_bits = bits
            total_bits += bits
        self.max_reads_in_step = max_reads
        self.max_bits_in_step = max_bits
        self.total_reads = total_reads
        self.total_bits = total_bits

    # ------------------------------------------------------------------
    # Scenario measures (faults, recovery, availability)
    # ------------------------------------------------------------------
    def record_fault(self, victims: int) -> None:
        """Count one applied fault/churn event hitting ``victims``
        processes (streamed by :meth:`Simulator.note_fault
        <repro.core.simulator.Simulator.note_fault>` and the scenario
        runtime under the ``full`` and ``aggregate`` tiers)."""
        self.faults_injected += 1
        self.fault_victims += victims

    def record_recovery(self, rounds: int, steps: int, bits: float) -> None:
        """Record one fault → re-silence cycle: the recovery rounds,
        the steps to re-silence, and the neighbor-read bits spent in
        between (the post-fault read-bit overhead)."""
        self.recovery_rounds.append(rounds)
        self.recovery_steps.append(steps)
        self.post_fault_bits += bits

    def record_availability_step(self, legitimate: bool) -> None:
        """Fold one per-step legitimacy sample (availability tracking)."""
        self.availability_steps += 1
        if legitimate:
            self.legitimate_steps += 1

    @property
    def availability(self) -> float:
        """Fraction of sampled steps spent legitimate (1.0 untracked)."""
        if self.availability_steps == 0:
            return 1.0
        return self.legitimate_steps / self.availability_steps

    @property
    def mean_recovery_rounds(self) -> float:
        """Mean rounds from fault to re-silence (0.0 when no recovery
        was measured)."""
        if not self.recovery_rounds:
            return 0.0
        return sum(self.recovery_rounds) / len(self.recovery_rounds)

    # ------------------------------------------------------------------
    # Topology churn
    # ------------------------------------------------------------------
    def rebind_processes(self, processes: List[ProcessId]) -> None:
        """Extend the per-process aggregates after topology churn.

        Joined processes get zeroed entries; departed processes keep
        theirs (their activity happened and stays counted).  The
        stability queries (:meth:`suffix_stable_processes`) answer for
        the *current* process set.
        """
        for p in processes:
            if p not in self.activations:
                self.activations[p] = 0
                self.read_sets[p] = set()
                if self.suffix_read_sets is not None:
                    self.suffix_read_sets[p] = set()
        self._processes = list(processes)

    # ------------------------------------------------------------------
    # Stability measurement
    # ------------------------------------------------------------------
    def start_suffix(self) -> None:
        """Begin accumulating the suffix read-sets (call at silence)."""
        self.suffix_read_sets = {p: set() for p in self._processes}
        self.suffix_start_step = self.steps

    def suffix_stable_processes(self, k: int = 1) -> List[ProcessId]:
        """Processes whose suffix read-set has size ≤ k.

        With the suffix armed at the silence point, the length of this
        list is the measured ``x`` of ♦-(x, k)-stability.
        """
        if self.suffix_read_sets is None:
            raise RuntimeError("start_suffix() was never called")
        return [
            p for p in self._processes if len(self.suffix_read_sets[p]) <= k
        ]

    def observed_k_efficiency(self) -> int:
        """The smallest k for which the run was k-efficient (Def. 4)."""
        return self.max_reads_in_step

    def observed_stability(self) -> int:
        """The smallest k for which the *whole run* was k-stable (Def. 7)."""
        return max((len(s) for s in self.read_sets.values()), default=0)

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline numbers for tables and benchmarks."""
        return {
            "steps": self.steps,
            "rounds": self.rounds,
            "k_efficiency": self.max_reads_in_step,
            "max_bits_per_step": self.max_bits_in_step,
            "total_bits": self.total_bits,
            "total_reads": self.total_reads,
            "faults_injected": self.faults_injected,
            "fault_victims": self.fault_victims,
            "availability": self.availability,
            "mean_recovery_rounds": self.mean_recovery_rounds,
            "post_fault_bits": self.post_fault_bits,
        }

    def trial_measures(self) -> Dict[str, float]:
        """The collector's slice of a result row, ready-typed.

        The single definition of which measures a trial row carries
        from the collector: :func:`repro.api.execute_trial` splats this
        straight into ``TrialResult`` and the results warehouse
        (:mod:`repro.results`) flattens the same names into its trial
        columns, so the row schema cannot drift between the executor
        and the store.
        """
        return {
            "k_efficiency": int(self.max_reads_in_step),
            "max_bits_per_step": self.max_bits_in_step,
            "total_bits": self.total_bits,
            "faults_injected": int(self.faults_injected),
            "availability": float(self.availability),
            "mean_recovery_rounds": float(self.mean_recovery_rounds),
            "post_fault_bits": float(self.post_fault_bits),
        }
