"""Round accounting (Dolev-Israeli-Moran rounds).

The paper measures time in *rounds* (§2): the first round of a
computation is the minimal prefix in which every process has been
activated by the scheduler; the second round is the first round of the
remaining suffix, and so on.  :class:`RoundTracker` implements exactly
that with a shrinking remainder set.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence, Set

ProcessId = Hashable


class RoundTracker:
    """Counts completed rounds given the per-step activation sets."""

    def __init__(self, processes: Sequence[ProcessId]):
        self._all: Set[ProcessId] = set(processes)
        if not self._all:
            raise ValueError("round tracking requires at least one process")
        self._remaining: Set[ProcessId] = set(self._all)
        self._completed = 0

    @property
    def completed_rounds(self) -> int:
        """Number of rounds fully elapsed so far."""
        return self._completed

    @property
    def pending(self) -> Set[ProcessId]:
        """Processes not yet activated in the current round."""
        return set(self._remaining)

    def record_step(self, activated: Iterable[ProcessId]) -> bool:
        """Account one step; returns True when this step closed a round."""
        self._remaining.difference_update(activated)
        if not self._remaining:
            self._completed += 1
            self._remaining = set(self._all)
            return True
        return False

    def reset(self) -> None:
        self._remaining = set(self._all)
        self._completed = 0
