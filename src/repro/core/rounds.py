"""Round accounting (Dolev-Israeli-Moran rounds).

The paper measures time in *rounds* (§2): the first round of a
computation is the minimal prefix in which every process has been
activated by the scheduler; the second round is the first round of the
remaining suffix, and so on.  :class:`RoundTracker` implements exactly
that with a shrinking remainder set.

Two accounting modes cover the two daemon families:

* Under the repo's classic daemons — which may select *disabled*
  processes (the paper's footnote: a disabled process does nothing) —
  a round ends once every process has been activated.
* Under enabled-drawing daemons (``draws_from == "enabled"``) disabled
  processes are never selected, so the literature's refinement applies:
  a process is also *served* for the round the moment it is observed
  disabled.  Callers opt in by passing ``still_enabled`` to
  :meth:`record_step`.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence, Set

ProcessId = Hashable


class RoundTracker:
    """Counts completed rounds given the per-step activation sets."""

    def __init__(self, processes: Sequence[ProcessId]):
        self._all: Set[ProcessId] = set(processes)
        if not self._all:
            raise ValueError("round tracking requires at least one process")
        self._remaining: Set[ProcessId] = set(self._all)
        self._completed = 0

    @property
    def completed_rounds(self) -> int:
        """Number of rounds fully elapsed so far."""
        return self._completed

    @property
    def pending(self) -> Set[ProcessId]:
        """Processes not yet activated in the current round."""
        return set(self._remaining)

    def record_step(
        self,
        activated: Iterable[ProcessId],
        still_enabled: Optional[Iterable[ProcessId]] = None,
    ) -> bool:
        """Account one step; returns True when this step closed a round.

        ``still_enabled``, when given, is the enabled set *after* the
        step: any remaining process outside it became disabled and is
        treated as served for this round (the Dolev-Israeli-Moran
        refinement needed by enabled-drawing daemons, under which a
        disabled process is never activated).
        """
        self._remaining.difference_update(activated)
        if still_enabled is not None and self._remaining:
            self._remaining.intersection_update(still_enabled)
        if not self._remaining:
            self._completed += 1
            self._remaining = set(self._all)
            return True
        return False

    def advance_rounds(self, count: int) -> None:
        """Credit ``count`` closed rounds at once (fused synchronous
        driver: every step activates all processes, so each step closes
        exactly one round and the remainder set stays full)."""
        if count < 0:
            raise ValueError("cannot advance by a negative round count")
        self._completed += count
        if len(self._remaining) != len(self._all):
            self._remaining = set(self._all)

    def set_state(self, remaining: Iterable[ProcessId], completed: int) -> None:
        """Restore externally-advanced accounting (fused maximal-daemon
        driver: the round remainder is tracked as an index mask in
        columnar space and written back at the observation boundary)."""
        remaining = set(remaining)
        if not remaining.issubset(self._all):
            raise ValueError("remainder contains unknown processes")
        if completed < self._completed:
            raise ValueError("completed rounds cannot move backwards")
        self._remaining = remaining if remaining else set(self._all)
        self._completed = completed

    def rebind(self, processes: Sequence[ProcessId]) -> None:
        """Re-point the tracker at a mutated process set (topology churn).

        ``completed_rounds`` is preserved.  Departed processes are
        dropped from the current round's remainder; joined processes
        must be served before the current round can close (they are, by
        definition, not yet activated in it).  If every pending process
        departed, the current round closes immediately.
        """
        new_all = set(processes)
        if not new_all:
            raise ValueError("round tracking requires at least one process")
        joined = new_all - self._all
        self._remaining.intersection_update(new_all)
        self._remaining.update(joined)
        self._all = new_all
        if not self._remaining:
            self._completed += 1
            self._remaining = set(self._all)

    def reset(self) -> None:
        """Restart accounting: zero rounds, a fresh full remainder set."""
        self._remaining = set(self._all)
        self._completed = 0
