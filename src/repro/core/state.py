"""Process states and configurations.

A *configuration* (paper §2) is an instance of the states of all
processes; the *communication configuration* restricts each state to its
communication variables.

Two backends implement one contract:

* :class:`Configuration` — the default **flat indexed** backend: one
  interned :class:`StateLayout` (variable name → slot) per distinct
  variable tuple, and one plain value list (*row*) per process.  The
  hot step loop addresses state as ``row[slot]`` — no nested dicts —
  while the classic dict API (:meth:`get` / :meth:`set` /
  :meth:`state_of`) is kept as a compatibility view so protocols,
  predicates, faults, and the verification/impossibility modules work
  unchanged.
* :class:`LegacyConfiguration` — the original dict-of-dicts backend,
  retained as the reference implementation.  The flat-vs-legacy
  trace-equivalence tests replay whole executions on both backends and
  require byte-identical traces; it is also the fallback if a workload
  ever needs per-process dynamic variable sets (the flat backend's
  layouts are fixed at construction).

Both backends are immutable-by-convention with explicit copy helpers so
the simulator can implement the paper's read-from-``γi`` /
write-to-``γi+1`` step semantics safely.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Tuple

from .exceptions import DomainError
from .variables import VariableSpec

ProcessId = Hashable
ProcessState = Dict[str, Any]


class StateLayout:
    """Interned ``variable name -> slot`` table for one variable tuple.

    All processes whose states declare the same variable names (in the
    same order) share a single layout object, so a 10k-process network
    running a uniform protocol carries exactly one name table instead of
    10k per-process dicts.
    """

    __slots__ = ("names", "index")

    def __init__(self, names: Tuple[str, ...]):
        self.names = tuple(names)
        self.index: Dict[str, int] = {n: i for i, n in enumerate(self.names)}

    def __repr__(self) -> str:
        return f"StateLayout({self.names!r})"


#: Interned layouts keyed by their name tuple.  Bounded: the variety of
#: layouts is tiny (one per protocol family), but a pathological
#: workload generating unbounded distinct name sets would otherwise
#: leak — so the cache resets past a generous cap.
_LAYOUTS: Dict[Tuple[str, ...], StateLayout] = {}
_LAYOUT_CACHE_CAP = 4096


def _intern_layout(names: Tuple[str, ...]) -> StateLayout:
    layout = _LAYOUTS.get(names)
    if layout is None:
        if len(_LAYOUTS) >= _LAYOUT_CACHE_CAP:
            _LAYOUTS.clear()
        layout = _LAYOUTS[names] = StateLayout(names)
    return layout


class StateView(MutableMapping):
    """Write-through dict view of one process's row.

    What :meth:`Configuration.state_of` returns: reads and writes hit
    the flat row directly, so the view behaves like the mutable state
    dict the legacy backend used to hand out.  The variable set is
    fixed — assigning an undeclared name raises ``KeyError`` and
    deletion is not supported.
    """

    __slots__ = ("_row", "_layout", "_sync")

    def __init__(self, row: List[Any], layout: StateLayout, sync=None):
        self._row = row
        self._layout = layout
        self._sync = sync

    def __getitem__(self, name: str) -> Any:
        if self._sync is not None:
            self._sync()
        return self._row[self._layout.index[name]]

    def __setitem__(self, name: str, value: Any) -> None:
        if self._sync is not None:
            self._sync()
        slot = self._layout.index.get(name)
        if slot is None:
            raise KeyError(
                f"no variable {name!r}; indexed configurations cannot "
                f"grow new variables"
            )
        self._row[slot] = value

    def __delitem__(self, name: str) -> None:
        raise TypeError("configuration variables cannot be deleted")

    def __iter__(self):
        return iter(self._layout.names)

    def __len__(self) -> int:
        return len(self._layout.names)

    def __repr__(self) -> str:
        return repr(dict(self))


class BaseConfiguration:
    """Contract shared by the flat and legacy configuration backends.

    Subclasses provide :meth:`state_of`, :meth:`get`, :meth:`set`,
    :attr:`processes`, :meth:`copy` and :meth:`as_dict`; equality is
    backend-independent (a flat configuration equals a legacy one with
    the same states), so equivalence tests can compare across backends
    directly.
    """

    __slots__ = ()

    # -- equality (full state, backend-independent) ---------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BaseConfiguration):
            return NotImplemented
        if self is other:
            return True
        return self.as_dict() == other.as_dict()

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    # -- shared derived operations --------------------------------------
    def comm_projection(
        self, specs_of: Mapping[ProcessId, Tuple[VariableSpec, ...]]
    ) -> Dict[ProcessId, Tuple[Tuple[str, Any], ...]]:
        """The communication configuration (paper §2): neighbor-readable
        variables only, as a hashable canonical form."""
        return {
            p: self.comm_state_of(p, specs_of[p]) for p in self.processes
        }

    def comm_state_of(
        self, p: ProcessId, specs: Tuple[VariableSpec, ...]
    ) -> Tuple[Tuple[str, Any], ...]:
        """Communication state of one process, canonical/hashable."""
        state = self.state_of(p)
        return tuple(
            (spec.name, state[spec.name])
            for spec in specs
            if spec.readable_by_neighbors
        )

    def validate(
        self, specs_of: Mapping[ProcessId, Tuple[VariableSpec, ...]]
    ) -> None:
        """Check every value sits in its declared domain."""
        for p, specs in specs_of.items():
            state = self.state_of(p)
            for spec in specs:
                if spec.name not in state:
                    raise DomainError(f"{p!r} is missing variable {spec.name!r}")
                if state[spec.name] not in spec.domain:
                    raise DomainError(
                        f"value {state[spec.name]!r} of {spec.name}.{p!r} "
                        f"outside its domain"
                    )


class Configuration(BaseConfiguration):
    """States of all processes over flat indexed storage.

    Construction accepts the classic ``pid -> {var_name: value}``
    mapping covering communication variables, internal variables and
    communication constants alike; internally each process keeps one
    value list addressed through an interned :class:`StateLayout`.

    The fast-path accessors (:meth:`row_of`, :meth:`layout_of`,
    :meth:`index_of`) expose the flat representation to the step loop;
    rows are mutated in place and never rebound, so holders of a row
    reference (pooled :class:`~repro.core.context.StepContext` objects)
    stay valid for the configuration's lifetime.  Out-of-band writers
    (fault injection) go through :meth:`set` / :meth:`state_of` and must
    still call ``Simulator.invalidate_enabled`` afterwards.
    """

    __slots__ = ("_pids", "_pindex", "_layouts", "_rows", "_sync")

    def __init__(self, states: Mapping[ProcessId, Mapping[str, Any]]):
        pids: List[ProcessId] = []
        pindex: Dict[ProcessId, int] = {}
        layouts: List[StateLayout] = []
        rows: List[List[Any]] = []
        for p, s in states.items():
            layout = _intern_layout(tuple(s))
            pindex[p] = len(pids)
            pids.append(p)
            layouts.append(layout)
            rows.append([s[name] for name in layout.names])
        self._pids = pids
        self._pindex = pindex
        self._layouts = layouts
        self._rows = rows
        self._sync = None

    @classmethod
    def from_rows(cls, pids, pindex, layouts, rows) -> "Configuration":
        """Adopt prebuilt flat storage without the dict round-trip.

        The bulk construction path (``arbitrary_configuration`` over
        large networks) samples values straight into rows; the lists are
        adopted, not copied, so callers must hand over ownership.
        """
        new = cls.__new__(cls)
        new._pids = list(pids)
        new._pindex = pindex if pindex is not None else {
            p: i for i, p in enumerate(new._pids)
        }
        new._layouts = layouts
        new._rows = rows
        new._sync = None
        return new

    # -- resident-backend hook ------------------------------------------
    def install_sync(self, hook) -> None:
        """Register ``hook`` to run before any row observation.

        Column-resident engines keep pending writes in columns; the hook
        materializes them into the rows so stray scalar reads (traces,
        predicates, faults, direct ``config.get``) never see stale
        state.  ``None`` uninstalls."""
        self._sync = hook

    # -- access (compatibility view) ------------------------------------
    def state_of(self, p: ProcessId) -> StateView:
        """Write-through mapping view of ``p``'s state (callers must not
        abuse; out-of-band writes require engine invalidation)."""
        if self._sync is not None:
            self._sync()
        i = self._pindex[p]
        return StateView(self._rows[i], self._layouts[i], self._sync)

    def get(self, p: ProcessId, var: str) -> Any:
        """The value of variable ``var`` of process ``p``."""
        if self._sync is not None:
            self._sync()
        i = self._pindex[p]
        return self._rows[i][self._layouts[i].index[var]]

    def set(self, p: ProcessId, var: str, value: Any) -> None:
        """Write ``var`` of ``p`` in place (unvalidated; the simulator
        validates domains and, for out-of-band writes, callers must
        invalidate the enabled-set engine)."""
        if self._sync is not None:
            self._sync()
        i = self._pindex[p]
        slot = self._layouts[i].index.get(var)
        if slot is None:
            raise KeyError(
                f"{p!r} has no variable {var!r}; indexed configurations "
                f"cannot grow new variables"
            )
        self._rows[i][slot] = value

    @property
    def processes(self) -> Iterable[ProcessId]:
        """All process ids, in construction order."""
        return tuple(self._pids)

    # -- flat fast path --------------------------------------------------
    def index_of(self, p: ProcessId) -> int:
        """The process index of ``p`` (row number)."""
        return self._pindex[p]

    def row_of(self, p: ProcessId) -> List[Any]:
        """``p``'s value row — mutated in place, never rebound."""
        if self._sync is not None:
            self._sync()
        return self._rows[self._pindex[p]]

    def aligned_storage(self, pids):
        """``(layouts, rows)`` when this configuration's process order
        matches ``pids`` exactly, else ``None`` (bulk build fast path —
        avoids one ``row_of``/``layout_of`` pair per process)."""
        if self._pids != list(pids):
            return None
        if self._sync is not None:
            self._sync()
        return self._layouts, self._rows

    def layout_of(self, p: ProcessId) -> StateLayout:
        """The interned layout addressing ``p``'s row."""
        return self._layouts[self._pindex[p]]

    # -- copies and projections -----------------------------------------
    def copy(self) -> "Configuration":
        """An independent deep-enough copy (rows are new lists; pids and
        layouts are immutable and shared).  Copies are detached
        snapshots: the resident-backend hook is not inherited."""
        if self._sync is not None:
            self._sync()
        new = Configuration.__new__(Configuration)
        new._pids = self._pids
        new._pindex = self._pindex
        new._layouts = self._layouts
        new._rows = [list(row) for row in self._rows]
        new._sync = None
        return new

    def validate(self, specs_of) -> None:
        """Domain check over the flat rows directly (same errors as the
        base implementation, without per-name dict lookups)."""
        pindex = self._pindex
        rows = self._rows
        layouts = self._layouts
        if self._sync is not None:
            self._sync()
        for p, specs in specs_of.items():
            i = pindex[p]
            row = rows[i]
            index = layouts[i].index
            for spec in specs:
                slot = index.get(spec.name)
                if slot is None:
                    raise DomainError(
                        f"{p!r} is missing variable {spec.name!r}"
                    )
                if row[slot] not in spec.domain:
                    raise DomainError(
                        f"value {row[slot]!r} of {spec.name}.{p!r} "
                        f"outside its domain"
                    )

    def comm_projection(
        self, specs_of: Mapping[ProcessId, Tuple[VariableSpec, ...]]
    ) -> Dict[ProcessId, Tuple[Tuple[str, Any], ...]]:
        """The communication configuration (paper §2): neighbor-readable
        variables only, as a hashable canonical form."""
        if self._sync is not None:
            self._sync()
        proj = {}
        for i, p in enumerate(self._pids):
            row = self._rows[i]
            index = self._layouts[i].index
            proj[p] = tuple(
                (spec.name, row[index[spec.name]])
                for spec in specs_of[p]
                if spec.readable_by_neighbors
            )
        return proj

    def comm_state_of(
        self, p: ProcessId, specs: Tuple[VariableSpec, ...]
    ) -> Tuple[Tuple[str, Any], ...]:
        """Communication state of one process, canonical/hashable."""
        if self._sync is not None:
            self._sync()
        i = self._pindex[p]
        row = self._rows[i]
        index = self._layouts[i].index
        return tuple(
            (spec.name, row[index[spec.name]])
            for spec in specs
            if spec.readable_by_neighbors
        )

    def __repr__(self) -> str:
        return f"Configuration({self.as_dict()!r})"

    def as_dict(self) -> Dict[ProcessId, ProcessState]:
        """Deep-ish copy as plain dicts (values assumed immutable)."""
        if self._sync is not None:
            self._sync()
        return {
            p: dict(zip(self._layouts[i].names, self._rows[i]))
            for i, p in enumerate(self._pids)
        }


class LegacyConfiguration(BaseConfiguration):
    """The original dict-of-dicts configuration backend.

    The mapping is ``pid -> {var_name: value}``.  Kept as the reference
    implementation: the flat-vs-legacy equivalence tests replay whole
    executions on both backends (``Simulator(..., state="legacy")``)
    and require byte-identical traces.  Unlike the flat backend it
    tolerates per-process dynamic variable sets, so it also serves as
    an escape hatch for exotic workloads.
    """

    __slots__ = ("_states",)

    def __init__(self, states: Mapping[ProcessId, Mapping[str, Any]]):
        self._states = {p: dict(s) for p, s in states.items()}

    # -- access --------------------------------------------------------
    def state_of(self, p: ProcessId) -> ProcessState:
        """Mutable reference to p's state dict (callers must not abuse)."""
        return self._states[p]

    def get(self, p: ProcessId, var: str) -> Any:
        """The value of variable ``var`` of process ``p``."""
        return self._states[p][var]

    def set(self, p: ProcessId, var: str, value: Any) -> None:
        """Write ``var`` of ``p`` in place (unvalidated; the simulator
        validates domains and, for out-of-band writes, callers must
        invalidate the enabled-set engine)."""
        self._states[p][var] = value

    @property
    def processes(self) -> Iterable[ProcessId]:
        """All process ids, in construction order."""
        return self._states.keys()

    # -- copies ----------------------------------------------------------
    def copy(self) -> "LegacyConfiguration":
        """An independent deep-enough copy (per-process dicts are new)."""
        return LegacyConfiguration(self._states)

    def __repr__(self) -> str:
        return f"LegacyConfiguration({self._states!r})"

    def as_dict(self) -> Dict[ProcessId, ProcessState]:
        """Deep-ish copy as plain dicts (values assumed immutable)."""
        return {p: dict(s) for p, s in self._states.items()}
