"""Process states and configurations.

A *configuration* (paper §2) is an instance of the states of all
processes; the *communication configuration* restricts each state to its
communication variables.  Configurations here are immutable-by-convention
nested dicts with explicit copy helpers so the simulator can implement
the paper's read-from-``γi`` / write-to-``γi+1`` step semantics safely.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Mapping, Tuple

from .exceptions import DomainError
from .variables import VariableSpec

ProcessId = Hashable
ProcessState = Dict[str, Any]


class Configuration:
    """States of all processes, split per variable kind on demand.

    The mapping is ``pid -> {var_name: value}`` covering communication
    variables, internal variables and communication constants alike;
    the owning protocol's variable specs determine each name's kind.
    """

    __slots__ = ("_states",)

    def __init__(self, states: Mapping[ProcessId, Mapping[str, Any]]):
        self._states = {p: dict(s) for p, s in states.items()}

    # -- access --------------------------------------------------------
    def state_of(self, p: ProcessId) -> ProcessState:
        """Mutable reference to p's state dict (callers must not abuse)."""
        return self._states[p]

    def get(self, p: ProcessId, var: str) -> Any:
        """The value of variable ``var`` of process ``p``."""
        return self._states[p][var]

    def set(self, p: ProcessId, var: str, value: Any) -> None:
        """Write ``var`` of ``p`` in place (unvalidated; the simulator
        validates domains and, for out-of-band writes, callers must
        invalidate the enabled-set engine)."""
        self._states[p][var] = value

    @property
    def processes(self) -> Iterable[ProcessId]:
        return self._states.keys()

    # -- copies and projections -----------------------------------------
    def copy(self) -> "Configuration":
        """An independent deep-enough copy (per-process dicts are new)."""
        return Configuration(self._states)

    def comm_projection(
        self, specs_of: Mapping[ProcessId, Tuple[VariableSpec, ...]]
    ) -> Dict[ProcessId, Tuple[Tuple[str, Any], ...]]:
        """The communication configuration (paper §2): neighbor-readable
        variables only, as a hashable canonical form."""
        proj = {}
        for p, state in self._states.items():
            readable = tuple(
                (spec.name, state[spec.name])
                for spec in specs_of[p]
                if spec.readable_by_neighbors
            )
            proj[p] = readable
        return proj

    def comm_state_of(
        self, p: ProcessId, specs: Tuple[VariableSpec, ...]
    ) -> Tuple[Tuple[str, Any], ...]:
        """Communication state of one process, canonical/hashable."""
        state = self._states[p]
        return tuple(
            (spec.name, state[spec.name])
            for spec in specs
            if spec.readable_by_neighbors
        )

    # -- validation ------------------------------------------------------
    def validate(self, specs_of: Mapping[ProcessId, Tuple[VariableSpec, ...]]) -> None:
        """Check every value sits in its declared domain."""
        for p, specs in specs_of.items():
            state = self._states[p]
            for spec in specs:
                if spec.name not in state:
                    raise DomainError(f"{p!r} is missing variable {spec.name!r}")
                if state[spec.name] not in spec.domain:
                    raise DomainError(
                        f"value {state[spec.name]!r} of {spec.name}.{p!r} "
                        f"outside its domain"
                    )

    # -- equality (full state) --------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._states == other._states

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __repr__(self) -> str:
        return f"Configuration({self._states!r})"

    def as_dict(self) -> Dict[ProcessId, ProcessState]:
        """Deep-ish copy as plain dicts (values assumed immutable)."""
        return {p: dict(s) for p, s in self._states.items()}
