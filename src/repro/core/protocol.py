"""The :class:`Protocol` abstract base.

A protocol (paper §2) is a collection of local algorithms, one per
process.  All protocols in the paper are *uniform* — every process runs
the same code, parameterised by its degree and (for MIS / MATCHING) a
communication constant color — so a single object describes the whole
collection: per-process variable declarations plus one prioritised
action list.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, Iterable, Optional, Tuple

from .actions import Actions
from .state import Configuration, _intern_layout
from .variables import VariableSpec

ProcessId = Hashable


class Protocol(ABC):
    """Abstract self-stabilizing protocol in the locally shared memory model.

    Subclasses declare, per process, the communication variables,
    internal variables and communication constants (:meth:`variables`),
    and provide one prioritised tuple of guarded actions
    (:meth:`actions`).  The legitimacy predicate the protocol stabilizes
    to is exposed via :meth:`is_legitimate` so the simulator and the
    benchmark harness can measure stabilization uniformly.
    """

    #: short name used in traces, tables and benchmark output
    name: str = "protocol"

    #: True when some action consults the rng (COLORING); deterministic
    #: protocols keep this False so runs are replayable bit-for-bit.
    randomized: bool = False

    #: How far, in hops, a guard may read: 1 (the default, and the only
    #: distance :class:`~repro.core.context.StepContext` can serve) means
    #: a process's enabled-status depends only on its own state and its
    #: direct neighbors' communication variables.  Protocols built on
    #: wider derived views (e.g. a composed protocol whose guards consume
    #: pre-aggregated 2-hop summaries) must raise this so the incremental
    #: enabled-set engine invalidates a large enough neighborhood.
    read_radius: int = 1

    def reads(self, network, p: ProcessId) -> Iterable[ProcessId]:
        """Processes whose *communication* state ``p``'s guards may read.

        The default returns the radius-:attr:`read_radius` ball around
        ``p`` (``p`` itself excluded — own state is always implicitly
        read, and the engine marks an activated process dirty anyway).
        :class:`~repro.core.engine.IncrementalEngine` inverts this
        relation into its influence map, so overriding it with a
        *tighter* set (e.g. only the neighbor behind a pointer window)
        is a pure optimization, while an *undersized* set breaks
        incremental maintenance — audit such overrides with the
        ``debug`` engine.
        """
        if self.read_radius <= 1:
            return network.neighbors(p)
        ball = {p}
        frontier = [p]
        for _ in range(self.read_radius):
            nxt = []
            for r in frontier:
                for q in network.neighbors(r):
                    if q not in ball:
                        ball.add(q)
                        nxt.append(q)
            frontier = nxt
        ball.discard(p)
        return ball

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @abstractmethod
    def variables(self, network, p: ProcessId) -> Tuple[VariableSpec, ...]:
        """All variable declarations of process ``p`` (consts included)."""

    @abstractmethod
    def actions(self) -> Actions:
        """The guarded actions, highest priority first."""

    def constant_values(self, network, p: ProcessId) -> Dict[str, Any]:
        """Values of ``p``'s communication constants (default: none)."""
        return {}

    # ------------------------------------------------------------------
    # Legitimacy
    # ------------------------------------------------------------------
    @abstractmethod
    def is_legitimate(self, network, config: Configuration) -> bool:
        """The predicate this protocol stabilizes to."""

    # ------------------------------------------------------------------
    # Initial configurations
    # ------------------------------------------------------------------
    def arbitrary_configuration(
        self, network, rng: Optional[random.Random] = None
    ) -> Configuration:
        """A uniformly random configuration — the model of a transient
        fault that corrupted every variable (self-stabilization starts
        from *any* configuration, so tests draw many of these)."""
        rng = rng or random.Random()
        # Build the flat storage directly — same sampling sequence as
        # the classic dict construction (per process, per spec, in
        # declaration order), without one intermediate dict per
        # process.  The layout cache is keyed by spec-tuple identity
        # (protocols memoize their spec tuples per degree); the tuple
        # is kept in the cache value so the id stays live.
        pids = []
        layouts = []
        rows = []
        layout_cache: Dict[int, Any] = {}
        for p in network.processes:
            specs = self.variables(network, p)
            cached = layout_cache.get(id(specs))
            if cached is None:
                layout = _intern_layout(tuple(s.name for s in specs))
                layout_cache[id(specs)] = (layout, specs)
            else:
                layout = cached[0]
            consts = self.constant_values(network, p)
            rows.append([
                consts[spec.name] if spec.kind == "const"
                else spec.domain.sample(rng)
                for spec in specs
            ])
            pids.append(p)
            layouts.append(layout)
        return Configuration.from_rows(pids, None, layouts, rows)

    def specs_of(self, network) -> Dict[ProcessId, Tuple[VariableSpec, ...]]:
        """Variable declarations for every process, keyed by pid."""
        return {p: self.variables(network, p) for p in network.processes}

    # ------------------------------------------------------------------
    def validate_configuration(
        self, network, config: Configuration, specs_of=None
    ) -> None:
        """Raise :class:`DomainError` unless every value is in-domain and
        every constant carries its declared value.  Callers that already
        hold the run's spec map pass it via ``specs_of`` to skip one
        full :meth:`specs_of` rebuild."""
        config.validate(specs_of if specs_of is not None
                        else self.specs_of(network))
        for p in network.processes:
            for name, value in self.constant_values(network, p).items():
                actual = config.get(p, name)
                if actual != value:
                    from .exceptions import DomainError

                    raise DomainError(
                        f"constant {name}.{p!r} holds {actual!r}, "
                        f"expected {value!r}"
                    )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
