"""Step execution context with tracked neighbor reads.

Every communication-efficiency measure in the paper boils down to *which
neighbors a process reads in a step* (Definitions 4, 5, 7–9).  Rather
than trusting a protocol's self-description, the simulator routes every
neighbor access through :class:`StepContext.read`, which

* enforces the locally shared memory rules (only neighbors, only their
  communication variables / constants),
* records the set of ports read during the step (guards *and* effect),
* accounts the information read in bits, per Definition 5.

The context also buffers writes so the simulator can apply the paper's
step semantics: all selected processes read from ``γi`` and their writes
land simultaneously in ``γi+1``.

Hot-path design: a context bound to a flat indexed
:class:`~repro.core.state.Configuration` caches its own row and slot
table, the interned ``name -> spec`` map of its process, and — lazily,
per port — the neighbor's row/slot/bits triple, so repeated reads cost
two dict probes and a list index instead of a spec scan.  Contexts are
meant to be pooled per process and :meth:`reset` between steps
(:class:`StepContextPool`); all cached references stay valid because
configuration rows are mutated in place and never rebound.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Set, Tuple

from .exceptions import DomainError, IllegalRead, IllegalWrite
from .state import Configuration
from .variables import VariableSpec

ProcessId = Hashable

#: Interned ``name -> (spec, writable, domain, is_comm)`` maps keyed by
#: the spec tuple itself (VariableSpec and the built-in domains are
#: hashable frozen dataclasses).  The precomputed fields spare the hot
#: path two property calls per write.  Bounded like the layout cache in
#: :mod:`repro.core.state`: variety is one entry per protocol family ×
#: degree, but the cache resets past a generous cap so pathological
#: spec churn cannot leak.
_SPEC_MAPS: Dict[Tuple[VariableSpec, ...], Dict[str, tuple]] = {}
_SPEC_MAP_CACHE_CAP = 4096


def _build_spec_map(specs: Tuple[VariableSpec, ...]) -> Dict[str, tuple]:
    return {
        s.name: (s, s.writable, s.domain, s.kind == "comm") for s in specs
    }


def _own_spec_map(specs: Tuple[VariableSpec, ...]) -> Dict[str, tuple]:
    """The interned per-variable table for one process's spec tuple."""
    try:
        spec_map = _SPEC_MAPS.get(specs)
    except TypeError:  # unhashable custom domain — build uncached
        return _build_spec_map(specs)
    if spec_map is None:
        if len(_SPEC_MAPS) >= _SPEC_MAP_CACHE_CAP:
            _SPEC_MAPS.clear()
        spec_map = _SPEC_MAPS[specs] = _build_spec_map(specs)
    return spec_map


class StepContext:
    """Execution context of one process within one step.

    Parameters
    ----------
    pid:
        The executing process.
    network:
        The :class:`~repro.graphs.topology.Network`.
    config:
        The frozen pre-step configuration ``γi`` all reads resolve in.
    specs_of:
        ``pid -> tuple(VariableSpec)`` for every process (owned by the
        simulator, shared between contexts).
    rng:
        Source of randomness for probabilistic actions; ``None`` for
        protocols that must stay deterministic (any use then raises).
    """

    __slots__ = (
        "pid",
        "network",
        "_config",
        "_specs_of",
        "_own_specs",
        "_rng",
        "_row",
        "_slots",
        "_degree",
        "_port_tables",
        "_stamp",
        "ports_read",
        "bits_read",
        "writes",
        "used_randomness",
    )

    def __init__(
        self,
        pid: ProcessId,
        network,
        config: Configuration,
        specs_of: Dict[ProcessId, Tuple[VariableSpec, ...]],
        rng=None,
    ):
        self.pid = pid
        self.network = network
        self._config = config
        self._specs_of = specs_of
        self._own_specs = _own_spec_map(specs_of[pid])
        self._rng = rng
        row_of = getattr(config, "row_of", None)
        if row_of is not None:  # flat indexed backend
            self._row = row_of(pid)
            self._slots = config.layout_of(pid).index
        else:  # legacy dict backend
            self._row = None
            self._slots = None
        self._degree = network.degree(pid)
        #: per-port lazy read tables: port -> (neighbor, {name: cell});
        #: a cell is ``[row, slot, bits, stamp]`` — ``stamp`` marks the
        #: step that last charged this register, so repeat reads within
        #: a step (Definition 5: re-reading memory is free) cost one
        #: integer comparison instead of a set probe on a fresh tuple.
        self._port_tables: Dict[int, tuple] = {}
        self._stamp: int = 0

        #: ports whose neighbor was read during this step (guards + effect)
        self.ports_read: Set[int] = set()
        #: total bits of neighbor information read during this step
        #: (Definition 5 counts memory, so re-reading a register is free)
        self.bits_read: float = 0.0
        #: buffered writes ``name -> value`` (applied by the simulator)
        self.writes: Dict[str, Any] = {}
        #: True once the rng was consulted (used by the silence checker)
        self.used_randomness: bool = False

    # ------------------------------------------------------------------
    # Pooling
    # ------------------------------------------------------------------
    def reset(self, rng=None) -> None:
        """Re-arm a pooled context for a fresh step.

        Clears all per-step tracking (reads, bits, buffered writes,
        randomness flag) and installs the step's rng.  The static
        caches — rows, slot tables, per-port read tables — survive:
        they address storage that is mutated in place, so they stay
        valid for the lifetime of the bound configuration.

        ``Simulator.step`` inlines this body for its execution pool —
        a new per-step field cleared here must be cleared there too.
        """
        self._rng = rng
        self._stamp += 1
        self.ports_read.clear()
        self.bits_read = 0.0
        self.writes.clear()
        self.used_randomness = False

    @property
    def registers_read(self) -> Set[Tuple[int, str]]:
        """Distinct (port, variable) registers read during this step.

        Reconstructed from the per-port read tables (a register was
        read this step iff its cell carries the current stamp); the hot
        path tracks registers by stamping cells, not by growing a set.
        """
        stamp = self._stamp
        return {
            (port, name)
            for port, (_q, table) in self._port_tables.items()
            for name, cell in table.items()
            if cell[3] == stamp
        }

    # ------------------------------------------------------------------
    # Own state
    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        """δ.p of the executing process."""
        return self._degree

    def get(self, name: str) -> Any:
        """Read one of the process's own variables.

        Sees this step's pending writes, so statement sequences inside an
        action observe their own earlier assignments.
        """
        writes = self.writes
        if name in writes:
            return writes[name]
        row = self._row
        if row is not None:
            return row[self._slots[name]]
        return self._config.get(self.pid, name)

    def set(self, name: str, value: Any) -> None:
        """Assign one of the process's own (writable) variables."""
        entry = self._own_specs.get(name)
        if entry is None:
            raise IllegalWrite(f"{self.pid!r} has no variable {name!r}")
        if not entry[1]:
            raise IllegalWrite(f"{name}.{self.pid!r} is a constant")
        if value not in entry[2]:
            raise DomainError(
                f"value {value!r} outside domain of {name}.{self.pid!r}"
            )
        self.writes[name] = value

    # ------------------------------------------------------------------
    # Neighbor reads (the tracked operation)
    # ------------------------------------------------------------------
    def read(self, port: int, name: str) -> Any:
        """Read communication variable ``name`` of the neighbor at ``port``.

        Ports are the paper's local indices ``1 .. δ.p``.  Reading a
        communication *constant* (like the color ``C.q``) is tracked the
        same way — the paper charges those reads too when it argues MIS
        and MATCHING are 1-efficient.
        """
        entry = self._port_tables.get(port)
        if entry is None:
            q = self.network.neighbor_at(self.pid, port)
            entry = self._port_tables[port] = (q, {})
        q, table = entry
        cell = table.get(name)
        if cell is None:
            cell = table[name] = self._resolve_read(q, name)
        stamp = self._stamp
        if cell[3] != stamp:
            # First touch of this register this step: charge its bits
            # and mark the port (a stamped register implies a known port).
            cell[3] = stamp
            self.ports_read.add(port)
            self.bits_read += cell[2]
        row = cell[0]
        if row is not None:
            return row[cell[1]]
        return self._config.get(q, name)

    def _resolve_read(self, q: ProcessId, name: str) -> list:
        """Build (and legality-check) one cached neighbor-read cell."""
        spec = next(
            (s for s in self._specs_of[q] if s.name == name), None
        )
        if spec is None:
            raise IllegalRead(f"neighbor {q!r} has no variable {name!r}")
        if not spec.readable_by_neighbors:
            raise IllegalRead(
                f"{name}.{q!r} is internal and may not be read by {self.pid!r}"
            )
        bits = spec.domain.bits
        config = self._config
        row_of = getattr(config, "row_of", None)
        if row_of is not None:
            # None stamps as "never read": the cell charges on first use.
            return [row_of(q), config.layout_of(q).index[name], bits, None]
        return [None, name, bits, None]

    def cur_port(self, pointer: str = "cur") -> int:
        """Convenience: the current value of a round-robin port pointer."""
        return self.get(pointer)

    def advance(self, pointer: str = "cur") -> None:
        """The paper's idiom ``cur.p ← (cur.p mod δ.p) + 1``."""
        self.set(pointer, (self.get(pointer) % self._degree) + 1)

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def random_choice(self, domain) -> Any:
        """Draw uniformly from a :class:`Domain` (``random({1..Δ+1})``)."""
        if self._rng is None:
            raise IllegalWrite(
                "protocol attempted a random choice under a deterministic run"
            )
        self.used_randomness = True
        return domain.sample(self._rng)

    def random_int(self, lo: int, hi: int) -> int:
        """Draw a uniform integer in ``[lo, hi]``."""
        if self._rng is None:
            raise IllegalWrite(
                "protocol attempted a random choice under a deterministic run"
            )
        self.used_randomness = True
        return self._rng.randint(lo, hi)

    # ------------------------------------------------------------------
    def comm_writes(self) -> Dict[str, Any]:
        """The subset of buffered writes that target communication variables."""
        return {
            name: value
            for name, value in self.writes.items()
            if self._own_specs[name][3]
        }

    def flush_writes(self) -> bool:
        """Apply the buffered writes to the bound configuration.

        Returns True iff some *communication* variable took a new value
        — exactly the processes the enabled-set engine must hear about
        (only they can flip a neighbor's enabled-status).  The simulator
        calls this for every activated process after the whole selection
        computed against ``γi``, which realises the paper's simultaneous
        write into ``γi+1``.
        """
        writes = self.writes
        if not writes:
            return False
        own = self._own_specs
        changed = False
        row = self._row
        if row is not None:
            slots = self._slots
            for name, value in writes.items():
                slot = slots[name]
                if row[slot] != value:
                    row[slot] = value
                    if own[name][3]:
                        changed = True
        else:
            config, pid = self._config, self.pid
            for name, value in writes.items():
                if config.get(pid, name) != value:
                    config.set(pid, name, value)
                    if own[name][3]:
                        changed = True
        return changed


class StepContextPool:
    """Per-process :class:`StepContext` cache for one run.

    One fresh context per activated process per step was the single
    biggest allocation cost of the step loop; the pool instead builds
    each process's context once — precomputed spec maps, cached rows,
    lazily filled per-port read tables — and hands it back after a
    cheap :meth:`StepContext.reset`.

    A pool is a single-run object: it is bound to one
    ``(network, configuration, specs)`` triple, exactly like the
    enabled-set engines, and must be dropped with the run.
    """

    __slots__ = ("_network", "_config", "_specs_of", "_ctxs")

    def __init__(self, network, config, specs_of):
        self._network = network
        self._config = config
        self._specs_of = specs_of
        self._ctxs: Dict[ProcessId, StepContext] = {}

    def acquire(self, pid: ProcessId, rng=None) -> StepContext:
        """A reset context for ``pid`` (built on first acquisition)."""
        ctx = self._ctxs.get(pid)
        if ctx is None:
            ctx = StepContext(
                pid, self._network, self._config, self._specs_of, rng=rng
            )
            self._ctxs[pid] = ctx
            return ctx
        ctx.reset(rng)
        return ctx

    def __len__(self) -> int:
        return len(self._ctxs)
