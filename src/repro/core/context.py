"""Step execution context with tracked neighbor reads.

Every communication-efficiency measure in the paper boils down to *which
neighbors a process reads in a step* (Definitions 4, 5, 7–9).  Rather
than trusting a protocol's self-description, the simulator routes every
neighbor access through :class:`StepContext.read`, which

* enforces the locally shared memory rules (only neighbors, only their
  communication variables / constants),
* records the set of ports read during the step (guards *and* effect),
* accounts the information read in bits, per Definition 5.

The context also buffers writes so the simulator can apply the paper's
step semantics: all selected processes read from ``γi`` and their writes
land simultaneously in ``γi+1``.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Set, Tuple

from .exceptions import DomainError, IllegalRead, IllegalWrite
from .state import Configuration
from .variables import VariableSpec

ProcessId = Hashable


class StepContext:
    """Execution context of one process within one step.

    Parameters
    ----------
    pid:
        The executing process.
    network:
        The :class:`~repro.graphs.topology.Network`.
    config:
        The frozen pre-step configuration ``γi`` all reads resolve in.
    specs_of:
        ``pid -> tuple(VariableSpec)`` for every process (owned by the
        simulator, shared between contexts).
    rng:
        Source of randomness for probabilistic actions; ``None`` for
        protocols that must stay deterministic (any use then raises).
    """

    def __init__(
        self,
        pid: ProcessId,
        network,
        config: Configuration,
        specs_of: Dict[ProcessId, Tuple[VariableSpec, ...]],
        rng=None,
    ):
        self.pid = pid
        self.network = network
        self._config = config
        self._specs_of = specs_of
        self._own_specs = {s.name: s for s in specs_of[pid]}
        self._rng = rng

        #: ports whose neighbor was read during this step (guards + effect)
        self.ports_read: Set[int] = set()
        #: distinct (port, variable) registers read during this step
        self.registers_read: Set[Tuple[int, str]] = set()
        #: total bits of neighbor information read during this step
        #: (Definition 5 counts memory, so re-reading a register is free)
        self.bits_read: float = 0.0
        #: buffered writes ``name -> value`` (applied by the simulator)
        self.writes: Dict[str, Any] = {}
        #: True once the rng was consulted (used by the silence checker)
        self.used_randomness: bool = False

    # ------------------------------------------------------------------
    # Own state
    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        """δ.p of the executing process."""
        return self.network.degree(self.pid)

    def get(self, name: str) -> Any:
        """Read one of the process's own variables.

        Sees this step's pending writes, so statement sequences inside an
        action observe their own earlier assignments.
        """
        if name in self.writes:
            return self.writes[name]
        return self._config.get(self.pid, name)

    def set(self, name: str, value: Any) -> None:
        """Assign one of the process's own (writable) variables."""
        spec = self._own_specs.get(name)
        if spec is None:
            raise IllegalWrite(f"{self.pid!r} has no variable {name!r}")
        if not spec.writable:
            raise IllegalWrite(f"{name}.{self.pid!r} is a constant")
        if value not in spec.domain:
            raise DomainError(
                f"value {value!r} outside domain of {name}.{self.pid!r}"
            )
        self.writes[name] = value

    # ------------------------------------------------------------------
    # Neighbor reads (the tracked operation)
    # ------------------------------------------------------------------
    def read(self, port: int, name: str) -> Any:
        """Read communication variable ``name`` of the neighbor at ``port``.

        Ports are the paper's local indices ``1 .. δ.p``.  Reading a
        communication *constant* (like the color ``C.q``) is tracked the
        same way — the paper charges those reads too when it argues MIS
        and MATCHING are 1-efficient.
        """
        q = self.network.neighbor_at(self.pid, port)
        spec = next(
            (s for s in self._specs_of[q] if s.name == name), None
        )
        if spec is None:
            raise IllegalRead(f"neighbor {q!r} has no variable {name!r}")
        if not spec.readable_by_neighbors:
            raise IllegalRead(
                f"{name}.{q!r} is internal and may not be read by {self.pid!r}"
            )
        self.ports_read.add(port)
        if (port, name) not in self.registers_read:
            self.registers_read.add((port, name))
            self.bits_read += spec.domain.bits
        return self._config.get(q, name)

    def cur_port(self, pointer: str = "cur") -> int:
        """Convenience: the current value of a round-robin port pointer."""
        return self.get(pointer)

    def advance(self, pointer: str = "cur") -> None:
        """The paper's idiom ``cur.p ← (cur.p mod δ.p) + 1``."""
        self.set(pointer, (self.get(pointer) % self.degree) + 1)

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def random_choice(self, domain) -> Any:
        """Draw uniformly from a :class:`Domain` (``random({1..Δ+1})``)."""
        if self._rng is None:
            raise IllegalWrite(
                "protocol attempted a random choice under a deterministic run"
            )
        self.used_randomness = True
        return domain.sample(self._rng)

    def random_int(self, lo: int, hi: int) -> int:
        """Draw a uniform integer in ``[lo, hi]``."""
        if self._rng is None:
            raise IllegalWrite(
                "protocol attempted a random choice under a deterministic run"
            )
        self.used_randomness = True
        return self._rng.randint(lo, hi)

    # ------------------------------------------------------------------
    def comm_writes(self) -> Dict[str, Any]:
        """The subset of buffered writes that target communication variables."""
        return {
            name: value
            for name, value in self.writes.items()
            if self._own_specs[name].kind == "comm"
        }
