"""Computational model of the paper (Section 2).

Locally shared memory, prioritised guarded actions, distributed fair
schedulers, Dolev-Israeli-Moran rounds, tracked neighbor reads, a sound
silence (communication fixed point) checker, and incremental
enabled-set engines that keep "who can act now" current in
O(Δ·activated) per step instead of a full O(n·Δ) rescan.
"""

from .actions import GuardedAction, first_enabled
from .batchengine import (
    BatchCrossCheckEngine,
    BatchEngine,
    BatchKernel,
    ResidentBatchEngine,
    register_batch_kernel,
)
from .columns import ColumnStore
from .context import StepContext, StepContextPool
from .engine import (
    ENGINE_NAMES,
    CrossCheckEngine,
    EnabledSetEngine,
    IncrementalEngine,
    ScanEngine,
    make_engine,
)
from .exceptions import (
    ConvergenceError,
    DomainError,
    IllegalRead,
    IllegalWrite,
    ModelError,
    ReproError,
    TopologyError,
)
from .metrics import METRICS_TIERS, LeanStepRecord, MetricsCollector, StepRecord
from .protocol import Protocol
from .rngstreams import RngStreams, derive_seed
from .rounds import RoundTracker
from .scheduler import (
    BoundedFairScheduler,
    CentralScheduler,
    FixedSequenceScheduler,
    RandomSubsetScheduler,
    RoundRobinScheduler,
    Scheduler,
    SynchronousScheduler,
    make_scheduler,
)
from .silence import QuiescenceWitness, is_silent, silence_witness
from .simulator import STATE_BACKENDS, Simulator, StabilizationReport
from .state import Configuration, LegacyConfiguration, StateLayout, StateView
from .trace import (
    FaultEvent,
    Trace,
    TraceEvent,
    TraceRecorder,
    record_run,
    verify_replay,
)
from .variables import (
    BOOL,
    Domain,
    FiniteSet,
    IntRange,
    VariableSpec,
    comm,
    const,
    internal,
)

__all__ = [
    "BOOL",
    "BatchCrossCheckEngine",
    "BatchEngine",
    "BatchKernel",
    "BoundedFairScheduler",
    "CentralScheduler",
    "ColumnStore",
    "Configuration",
    "ConvergenceError",
    "CrossCheckEngine",
    "Domain",
    "DomainError",
    "ENGINE_NAMES",
    "EnabledSetEngine",
    "FaultEvent",
    "FiniteSet",
    "FixedSequenceScheduler",
    "GuardedAction",
    "IncrementalEngine",
    "IllegalRead",
    "IllegalWrite",
    "IntRange",
    "LeanStepRecord",
    "LegacyConfiguration",
    "METRICS_TIERS",
    "MetricsCollector",
    "ModelError",
    "Protocol",
    "QuiescenceWitness",
    "RandomSubsetScheduler",
    "ResidentBatchEngine",
    "ReproError",
    "RngStreams",
    "RoundRobinScheduler",
    "RoundTracker",
    "STATE_BACKENDS",
    "ScanEngine",
    "Scheduler",
    "Simulator",
    "StabilizationReport",
    "StateLayout",
    "StateView",
    "StepContext",
    "StepContextPool",
    "StepRecord",
    "SynchronousScheduler",
    "Trace",
    "TraceEvent",
    "TraceRecorder",
    "TopologyError",
    "VariableSpec",
    "comm",
    "const",
    "derive_seed",
    "first_enabled",
    "internal",
    "is_silent",
    "make_engine",
    "make_scheduler",
    "record_run",
    "register_batch_kernel",
    "verify_replay",
    "silence_witness",
]
