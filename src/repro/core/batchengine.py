"""The vectorized batch engine: whole-column guard evaluation.

:class:`BatchEngine` is an :class:`~repro.core.engine.EnabledSetEngine`
that additionally executes *entire steps* over columnar state — the
synchronous and maximal daemons activate most of the network every
step, so evaluating guards one pooled context at a time leaves an order
of magnitude on the table.  The simulator detects a batch-capable
engine (:attr:`BatchEngine.batch_active`) and routes the hot step loop
through :meth:`execute_step`, which

1. gathers the step's reads from a :class:`~repro.core.columns.ColumnStore`
   (γi — all gathers happen before any write),
2. classifies every selected process through the protocol's registered
   :class:`BatchKernel` (action code, port read, bits charged — the
   exact short-circuit semantics of the scalar guards),
3. writes the chosen actions back through the live configuration rows,
   so traces, silence detection, predicates and fault injectors see
   identical state, and
4. hands the simulator everything needed to reproduce the scalar
   engine's metrics byte for byte under both the ``full`` and
   ``aggregate`` tiers.

Kernels are registered per *protocol class* with
:func:`register_batch_kernel` next to the scalar implementations
(:mod:`repro.protocols.coloring` / ``mis`` / ``matching``).  A protocol
without a kernel — or state the column store cannot mirror (legacy
backend, mixed layouts, exotic domains) — degrades transparently: the
engine runs an internal :class:`~repro.core.engine.IncrementalEngine`
and the simulator keeps the scalar step loop, so ``engine="batch"`` is
always safe to request.

:class:`BatchCrossCheckEngine` (``engine="batch-debug"``) is the audit
mode: every batch step re-evaluates each selected process through the
scalar guard probes and raises
:class:`~repro.core.exceptions.ModelError` on any divergence in action
choice, ports read, or bits charged — the batch analogue of
:class:`~repro.core.engine.CrossCheckEngine`.

:class:`ResidentBatchEngine` (``engine="batch-resident"``) goes one
step further: the columns *are* the live state.  Writes stay columnar
(:attr:`ColumnStore.resident`), rows are decoded only at observation
boundaries via the :class:`~repro.core.state.Configuration` sync hook,
and the fused :meth:`BatchEngine.run_steps` driver executes whole
synchronous/maximal-daemon step sequences — selection, classification,
writes, round tracking, silence checks, aggregate metrics folds —
without returning to Python rows in between.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple, Type

from ..obs.registry import TELEMETRY
from .actions import first_enabled
from .columns import ColumnStore
from .engine import EnabledSetEngine, IncrementalEngine
from .exceptions import ModelError
from .metrics import StepRecord

#: fused-span length buckets (steps per ``run_steps`` invocation).
_SPAN_BUCKETS = (1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0)

ProcessId = Hashable

#: Vectorized kernels per protocol class (exact class match: a subclass
#: overriding guards must register its own kernel or it falls back to
#: the scalar path).
BATCH_KERNELS: Dict[Type, Callable] = {}


def register_batch_kernel(protocol_cls: Type):
    """Class decorator registering a :class:`BatchKernel` for one
    protocol class, alongside its scalar guard implementation."""

    def decorate(kernel_cls):
        BATCH_KERNELS[protocol_cls] = kernel_cls
        return kernel_cls

    return decorate


class BatchKernel:
    """Vectorized guard/action evaluation for one protocol.

    Contract — for any index vector over the store's canonical order,
    :meth:`classify` must return, per process, exactly what the scalar
    priority cascade would have produced against the same γ:

    * ``codes`` — the index of the fired action in :attr:`rule_names`
      (``-1`` when every guard is false: selected-but-disabled);
    * ``ports`` — the single neighbor port read while cascading
      (``0`` when no neighbor was consulted), matching
      ``StepContext.ports_read`` for these 1-efficient protocols;
    * ``bits`` — the bits charged, accumulated register by register in
      the scalar cascade's read order (float addition order matters for
      byte-identical metrics);
    * ``aux`` — intermediate columns :meth:`plan_writes` reuses.

    :meth:`plan_writes` turns the classification into per-slot write
    batches plus the canonical indices whose *communication* variables
    took a new value.  Any randomness must draw from ``rng`` once per
    affected process in selection order — identical to the scalar
    effects' draw sequence.
    """

    #: action names in protocol priority order (code -> name)
    rule_names: Tuple[str, ...] = ()

    def __init__(self, protocol, store: ColumnStore):
        self.protocol = protocol
        self.store = store

    def classify(self, idx):
        """Vectorized ``first_enabled`` over the processes in ``idx``.

        Returns ``(codes, ports, bits, aux)``: per-process rule codes
        (indices into :attr:`rule_names`, ``-1`` = disabled), the port
        each process read (``0`` = none; the paper's protocols read at
        most one neighbor per guard evaluation), the exact bits charged
        for those reads (scalar read-charging order preserved), and an
        opaque ``aux`` value handed back to :meth:`plan_writes`.
        """
        raise NotImplementedError

    def plan_writes(self, idx, codes, aux, rng):
        """Plan γi+1 for the classified processes in ``idx``.

        Returns ``(writes, comm_idx)``: a list of
        ``(slot, positions, encoded_values)`` column writes and the
        positions whose *communication* registers take a genuinely new
        value (the scalar ``flush_writes`` contract).  Randomized rules
        must draw from ``rng`` in selection order so the stream matches
        the scalar loop draw for draw.
        """
        raise NotImplementedError

    # -- optional resident-mode extensions ------------------------------
    #: Kernels may additionally provide
    #:
    #: ``plan_writes_resident(codes, aux, rng)`` — apply a whole-network
    #: step's writes directly to the store as column replacements
    #: (``store.write_col``) plus sparse ``store.write`` batches, with
    #: the exact same RNG draw sequence as :meth:`plan_writes`; used by
    #: the fused driver when the selection is the full network.
    #:
    #: ``silent_cols()`` — the silence verdict straight from the
    #: columns (must agree with the exact scalar
    #: :func:`~repro.core.silence.is_silent` on every configuration);
    #: the fused driver falls back to materialize + scalar check when
    #: absent.


class BatchOutcome:
    """One batch step's results, pre-aggregation (engine-internal)."""

    __slots__ = ("selected", "sel_idx", "idx", "codes", "ports", "bits")

    def __init__(self, selected, sel_idx, idx, codes, ports, bits):
        self.selected = selected
        self.sel_idx = sel_idx  # canonical indices, python list
        self.idx = idx  # the same indices as a backend column
        self.codes = codes
        self.ports = ports
        self.bits = bits


class BatchEngine(EnabledSetEngine):
    """Columnar enabled-set engine with whole-step batch execution."""

    name = "batch"
    #: resident engines keep writes columnar; rows decode lazily
    resident = False

    def bind(self, protocol, network, config, specs_of) -> None:
        super().bind(protocol, network, config, specs_of)
        self._agg_dirty = False
        self._agg_collector = None
        self._activate()

    # ------------------------------------------------------------------
    # Activation / fallback
    # ------------------------------------------------------------------
    def _activate(self) -> None:
        """(Re)derive the columnar machinery for the current run objects.

        Falls back to a fresh internal incremental engine when the
        protocol has no registered kernel or the state cannot be
        mirrored into columns.
        """
        self.flush_pending_metrics()
        self._store: Optional[ColumnStore] = None
        self._kernel: Optional[BatchKernel] = None
        self._fallback: Optional[IncrementalEngine] = None
        self._enabled_cache: Optional[frozenset] = None
        self._enabled_list_cache: Optional[Tuple[ProcessId, ...]] = None
        self._pull_pending: set = set()
        self._stale_all = False
        self._pending_act = None
        self._seen = None
        self._suffix_seen = None
        self._suffix_epoch = None
        self._unflushed_reads = []
        kernel_cls = BATCH_KERNELS.get(type(self.protocol))
        store = (
            ColumnStore.try_build(self.network, self.config, self.specs_of)
            if kernel_cls is not None
            else None
        )
        if store is not None:
            self._store = store
            self._kernel = kernel_cls(self.protocol, store)
        else:
            fallback = IncrementalEngine()
            fallback.bind(
                self.protocol, self.network, self.config, self.specs_of
            )
            self._fallback = fallback

    @property
    def batch_active(self) -> bool:
        """Whether batch execution is live (False = scalar fallback)."""
        return self._fallback is None

    @property
    def backend_name(self) -> Optional[str]:
        """Column backend in use (``"numpy"``/``"python"``), or None
        when running the scalar fallback."""
        return None if self._store is None else self._store.backend

    # ------------------------------------------------------------------
    # Column freshness
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        if self._stale_all:
            self._store.pull_all()
            self._stale_all = False
            self._pull_pending.clear()
        elif self._pull_pending:
            self._store.pull(sorted(self._pull_pending))
            self._pull_pending.clear()

    def _drop_enabled_cache(self) -> None:
        self._enabled_cache = None
        self._enabled_list_cache = None

    # ------------------------------------------------------------------
    # EnabledSetEngine contract
    # ------------------------------------------------------------------
    def _compute_enabled(self):
        if self._enabled_list_cache is None:
            self._refresh()
            store = self._store
            codes, _ports, _bits, _aux = self._kernel.classify(store.all_idx)
            ops = store.ops
            pids = store.pids
            ids = [
                pids[i] for i in ops.nonzero_list(ops.ne(codes, -1))
            ]
            self._enabled_list_cache = tuple(ids)
            self._enabled_cache = frozenset(ids)
        return self._enabled_cache, self._enabled_list_cache

    def enabled_set(self):
        if self._fallback is not None:
            return self._fallback.enabled_set()
        return self._compute_enabled()[0]

    def enabled_list(self):
        if self._fallback is not None:
            return self._fallback.enabled_list()
        return self._compute_enabled()[1]

    def enabled_view(self):
        if self._fallback is not None:
            return self._fallback.enabled_view()
        return self._compute_enabled()[0]

    def note_step(self, activated, comm_changed) -> None:
        # Scalar steps interleaved with batch ones (e.g. a scripted
        # scheduler repeating a pid) mutate rows behind the columns.
        if self._fallback is not None:
            self._fallback.note_step(activated, comm_changed)
            return
        if not self._stale_all:
            pindex = self._store.pindex
            self._pull_pending.update(
                pindex[p] for p in activated if p in pindex
            )
        self._drop_enabled_cache()

    def invalidate(self, processes: Optional[Iterable[ProcessId]] = None) -> None:
        if self._fallback is not None:
            self._fallback.invalidate(processes)
            return
        if processes is None:
            self._stale_all = True
            self._pull_pending.clear()
        elif not self._stale_all:
            pindex = self._store.pindex
            self._pull_pending.update(
                pindex[p] for p in processes if p in pindex
            )
        self._drop_enabled_cache()

    def rebind_config(self, config) -> None:
        super().rebind_config(config)
        self._activate()

    def rebind_network(self, protocol, network, config, specs_of) -> None:
        super().rebind_network(protocol, network, config, specs_of)
        self._activate()

    # ------------------------------------------------------------------
    # Batch step execution (simulator hot path)
    # ------------------------------------------------------------------
    def execute_step(self, selected, rng) -> BatchOutcome:
        """Run one whole step over columns; selection must be duplicate
        free (the simulator guards via ``Scheduler.selects_distinct``)."""
        self._refresh()
        store = self._store
        sel_idx = list(map(store.pindex.__getitem__, selected))
        idx = store.ops.int_col(sel_idx)
        obs_on = TELEMETRY.enabled
        t0 = perf_counter() if obs_on else 0.0
        codes, ports, bits, aux = self._kernel.classify(idx)
        t1 = perf_counter() if obs_on else 0.0
        self._audit_step(selected, sel_idx, codes, ports, bits)
        writes, _comm_idx = self._kernel.plan_writes(idx, codes, aux, rng)
        for slot, w_idx, w_vals in writes:
            if w_idx:
                store.write(slot, w_idx, w_vals)
        self._drop_enabled_cache()
        if obs_on:
            TELEMETRY.histogram("engine.classify_s").observe(t1 - t0)
            TELEMETRY.histogram("engine.plan_s").observe(perf_counter() - t1)
        return BatchOutcome(selected, sel_idx, idx, codes, ports, bits)

    def _audit_step(self, selected, sel_idx, codes, ports, bits) -> None:
        """Hook for :class:`BatchCrossCheckEngine` (no-op here)."""

    # ------------------------------------------------------------------
    # Column-resident execution
    # ------------------------------------------------------------------
    def materialize_rows(self) -> None:
        """Decode pending resident column writes into the live rows.

        The observation boundary of resident mode: installed as the
        configuration's sync hook and called explicitly before any
        scalar code path that bypasses it (pooled step contexts cache
        raw row references).  No-op for non-resident stores and on the
        scalar fallback.
        """
        store = self._store
        if store is not None:
            store.materialize()

    def run_steps(self, sim, max_steps=None, stop_on_silence=False,
                  round_budget=None):
        """Fused resident driver: run whole step sequences in columns.

        Executes synchronous-daemon steps (the full network, or the
        enabled pool under ``enabled_only``) entirely in columnar space
        — classification, writes, round accounting, aggregate metrics
        folds and silence checks — returning to Python rows only at the
        horizon (``max_steps``), at silence (``stop_on_silence``), or
        when the round budget runs out.  Byte-identical to driving
        :meth:`Simulator.step` in a loop: same RNG draw sequence, same
        float fold order, same round closures, same silence boundaries.

        Returns ``(steps_executed, silent)``; ``silent`` is ``None``
        unless ``stop_on_silence`` was requested, in which case it
        reports whether silence was detected within the budget.
        """
        store = self._store
        kernel = self._kernel
        ops = store.ops
        self._refresh()
        all_idx = store.all_idx
        n = store.n
        numpy = store.backend == "numpy"
        rng = sim.rngs.protocol if sim.protocol.randomized else None
        collector = sim._metrics if sim.metrics_tier == "aggregate" else None
        tracker = sim.round_tracker
        silent_cols = getattr(kernel, "silent_cols", None)
        resident_plan = (
            getattr(kernel, "plan_writes_resident", None)
            if self.resident else None
        )
        plan = kernel.plan_writes

        def silent_now() -> bool:
            if silent_cols is not None:
                return silent_cols()
            # No vectorized silence for this kernel: an observation
            # boundary — the config sync hook materializes the rows.
            return sim.is_silent()

        steps = 0
        silent = None
        all_sel = None if numpy else list(range(n))
        # Telemetry is sampled at the span boundary, never inside the
        # fused loop: one enabled-check + one clock read per
        # ``run_steps`` call keeps the disabled path inside the ≤2%
        # resident-throughput floor.
        obs_on = TELEMETRY.enabled
        span_t0 = perf_counter() if obs_on else 0.0
        activations = 0

        if not sim._enabled_pool:
            # Synchronous daemon: every step activates every process,
            # so every step closes exactly one round.
            closed_rounds = 0
            while max_steps is None or steps < max_steps:
                if round_budget is not None and closed_rounds >= round_budget:
                    break
                codes, ports, bits, aux = kernel.classify(all_idx)
                if resident_plan is not None:
                    resident_plan(codes, aux, rng)
                else:
                    writes, _comm = plan(all_idx, codes, aux, rng)
                    for slot, w_idx, w_vals in writes:
                        if w_idx:
                            store.write(slot, w_idx, w_vals)
                steps += 1
                closed_rounds += 1
                if collector is not None:
                    self.fold_aggregate(
                        BatchOutcome(None, all_sel, all_idx,
                                     codes, ports, bits),
                        collector, True,
                    )
                if stop_on_silence and silent_now():
                    silent = True
                    break
            if stop_on_silence and silent is None:
                silent = False
            tracker.advance_rounds(closed_rounds)
            activations = steps * n  # full-network activation per step
        else:
            # Maximal daemon (``enabled_only``): the pool is the
            # enabled set (all processes when it is empty — no-op
            # steps still close rounds).  One classify over the whole
            # network per step doubles as the previous step's
            # ``still_enabled`` view and the next step's selection.
            pids = store.pids
            pindex = store.pindex
            pending = {pindex[p] for p in tracker.pending}
            completed = tracker.completed_rounds
            start_completed = completed
            en_list = ops.nonzero_list(
                ops.ne(kernel.classify(all_idx)[0], -1)
            )
            while max_steps is None or steps < max_steps:
                if (round_budget is not None
                        and completed - start_completed >= round_budget):
                    break
                if en_list:
                    sel = en_list
                    idx = ops.int_col(sel)
                else:
                    sel = all_sel if all_sel is not None else list(range(n))
                    all_sel = sel
                    idx = all_idx
                codes, ports, bits, aux = kernel.classify(idx)
                writes, _comm = plan(idx, codes, aux, rng)
                for slot, w_idx, w_vals in writes:
                    if w_idx:
                        store.write(slot, w_idx, w_vals)
                en_list = ops.nonzero_list(
                    ops.ne(kernel.classify(all_idx)[0], -1)
                )
                # RoundTracker.record_step over indices: activations
                # serve first, then the Dolev-Israeli-Moran refinement
                # drops processes observed disabled after the step.
                pending.difference_update(sel)
                if pending:
                    pending.intersection_update(en_list)
                closed = not pending
                if closed:
                    completed += 1
                    pending = set(range(n))
                steps += 1
                activations += len(sel)
                if collector is not None:
                    self.fold_aggregate(
                        BatchOutcome(None, sel, idx, codes, ports, bits),
                        collector, closed,
                    )
                if stop_on_silence and closed and silent_now():
                    silent = True
                    break
            if stop_on_silence and silent is None:
                silent = False
            tracker.set_state({pids[i] for i in pending}, completed)
        self._drop_enabled_cache()
        sim.step_index += steps
        if obs_on:
            TELEMETRY.counter("sim.steps").inc(steps)
            TELEMETRY.counter("sim.activations").inc(activations)
            TELEMETRY.histogram(
                "engine.fused_span_steps", buckets=_SPAN_BUCKETS
            ).observe(steps)
            TELEMETRY.record_span(
                "engine.run_steps", perf_counter() - span_t0,
                n=n, steps=steps, activations=activations,
                resident=self.resident, silent=silent,
            )
        return steps, silent

    # ------------------------------------------------------------------
    # Metrics reproduction
    # ------------------------------------------------------------------
    def make_step_record(self, index, outcome: BatchOutcome, closed: bool) -> StepRecord:
        """The exact :class:`StepRecord` the scalar loop would build."""
        ops = self._store.ops
        names = self._kernel.rule_names
        codes = ops.tolist(outcome.codes)
        ports = ops.tolist(outcome.ports)
        bits = ops.tolist(outcome.bits)
        executed = {}
        ports_read = {}
        bits_read = {}
        empty = frozenset()
        for p, code, port, b in zip(outcome.selected, codes, ports, bits):
            executed[p] = names[code] if code >= 0 else None
            ports_read[p] = frozenset((port,)) if port else empty
            bits_read[p] = b
        return StepRecord(
            index=index,
            activated=frozenset(outcome.selected),
            executed=executed,
            ports_read=ports_read,
            bits_read=bits_read,
            closed_round=closed,
        )

    def fold_aggregate(self, outcome: BatchOutcome, collector, closed: bool) -> None:
        """Fold one batch step into the collector, reproducing
        :meth:`MetricsCollector.record_lean` exactly.

        Per-process activation counts are accumulated in an engine-side
        vector and flushed into the collector's dict lazily (the
        simulator's ``metrics`` property triggers the flush before any
        external read) — the dict update is the one per-step cost that
        would otherwise erase the batch win.  Read-set folds go through
        a seen-matrix so only *newly observed* (process, port) pairs
        touch the per-process sets; ``total_bits`` is summed in
        selection order because float addition order is observable.
        """
        collector.steps += 1
        if closed:
            collector.rounds += 1
        store = self._store
        ops = store.ops
        if self._pending_act is None:
            self._pending_act = ops.zeros_int(store.n)
        pend = self._pending_act
        if store.backend == "numpy":
            pend[outcome.idx] += 1
        else:
            for i in outcome.sel_idx:
                pend[i] += 1
        self._agg_dirty = True
        self._agg_collector = collector

        ports = outcome.ports
        has_read = ops.ne(ports, 0)
        count = ops.count(has_read)
        if count:
            collector.total_reads += count
            if collector.max_reads_in_step < 1:
                # These kernels read at most one port per step; the
                # scalar fold's per-process max over larger read sets
                # cannot occur here.
                collector.max_reads_in_step = 1
            self._fold_read_sets(
                collector.read_sets,
                self._ensure_seen("_seen"),
                outcome,
                has_read,
                defer_to=(self._unflushed_reads
                          if store.backend == "numpy" else None),
            )
            if collector.suffix_read_sets is not None:
                if self._suffix_epoch != collector.suffix_start_step:
                    self._suffix_epoch = collector.suffix_start_step
                    self._suffix_seen = None
                self._fold_read_sets(
                    collector.suffix_read_sets,
                    self._ensure_seen("_suffix_seen"),
                    outcome,
                    has_read,
                )
        bits = outcome.bits
        if store.backend == "numpy":
            if len(bits):
                np = ops.np
                max_bits = float(bits.max())
                if max_bits > collector.max_bits_in_step:
                    collector.max_bits_in_step = max_bits
                # ``np.add.accumulate`` is a strict left-to-right
                # chain (unlike ``np.add.reduce``, which pairs up), so
                # seeding the running total as element 0 reproduces the
                # scalar loop's sequential float fold bit for bit.
                chain = np.empty(len(bits) + 1, dtype=np.float64)
                chain[0] = collector.total_bits
                chain[1:] = bits
                collector.total_bits = float(np.add.accumulate(chain)[-1])
        else:
            bits_list = ops.tolist(bits)
            if bits_list:
                max_bits = max(bits_list)
                if max_bits > collector.max_bits_in_step:
                    collector.max_bits_in_step = max_bits
                total = collector.total_bits
                for b in bits_list:
                    total += b
                collector.total_bits = total

    def _ensure_seen(self, attr):
        seen = getattr(self, attr)
        if seen is None:
            store = self._store
            if store.backend == "numpy":
                seen = store.ops.np.zeros(
                    (store.n, store.max_degree), dtype=bool
                )
            else:
                seen = [set() for _ in range(store.n)]
            setattr(self, attr, seen)
        return seen

    def _fold_read_sets(self, read_sets, seen, outcome, has_read,
                        defer_to=None) -> None:
        """Fold newly observed (process, port) reads into ``read_sets``.

        With ``defer_to`` (the main numpy fold), the per-process set
        materialization is postponed: the new index pairs are stashed
        and drained by :meth:`flush_pending_metrics` before any
        external metrics read.  Each pair is recorded exactly once (the
        seen matrix dedups at fold time), so the drain's set inserts
        are order-insensitive and byte-equivalent to the eager fold.
        """
        store = self._store
        ops = store.ops
        pids = store.pids
        if store.backend == "numpy":
            rows = outcome.idx[has_read]
            cols = outcome.ports[has_read] - 1
            hit = seen[rows, cols]
            if hit.all():
                return
            new = ~hit
            new_rows = rows[new]
            new_cols = cols[new]
            seen[new_rows, new_cols] = True
            if defer_to is not None:
                defer_to.append((new_rows, new_cols))
                return
            for i, c in zip(new_rows.tolist(), new_cols.tolist()):
                read_sets[pids[i]].add(c + 1)
        else:
            for i, port, reads in zip(outcome.sel_idx, outcome.ports, has_read):
                if reads:
                    s = seen[i]
                    if port not in s:
                        s.add(port)
                        read_sets[pids[i]].add(port)

    def flush_pending_metrics(self) -> None:
        """Drain accumulated activation counts into the collector
        (called by ``Simulator.metrics`` before any external read, and
        before the engine rebuilds its per-process vectors)."""
        if not getattr(self, "_agg_dirty", False):
            return
        self._agg_dirty = False
        pend = self._pending_act
        activations = self._agg_collector.activations
        pids = self._store.pids
        if self._store.backend == "numpy":
            np = self._store.ops.np
            nz = np.nonzero(pend)[0]
            for i, c in zip(nz.tolist(), pend[nz].tolist()):
                activations[pids[i]] += c
            pend[nz] = 0
        else:
            for i, c in enumerate(pend):
                if c:
                    activations[pids[i]] += c
                    pend[i] = 0
        pending_reads = self._unflushed_reads
        if pending_reads:
            self._unflushed_reads = []
            read_sets = self._agg_collector.read_sets
            for rows, cols in pending_reads:
                for i, c in zip(rows.tolist(), cols.tolist()):
                    read_sets[pids[i]].add(c + 1)

    # ------------------------------------------------------------------
    # Introspection (property tests, debugging)
    # ------------------------------------------------------------------
    def classify_all(self) -> Dict[ProcessId, Optional[str]]:
        """Per-process fired-rule map over the whole network (None =
        disabled), straight from the kernel — the scalar oracle is one
        ``first_enabled`` probe per process."""
        if self._fallback is not None:
            raise ModelError("classify_all() requires an active batch kernel")
        self._refresh()
        store = self._store
        codes, _ports, _bits, _aux = self._kernel.classify(store.all_idx)
        names = self._kernel.rule_names
        return {
            p: (names[code] if code >= 0 else None)
            for p, code in zip(store.pids, store.ops.tolist(codes))
        }


class BatchCrossCheckEngine(BatchEngine):
    """Batch engine that audits every step against the scalar guards.

    The batch analogue of :class:`~repro.core.engine.CrossCheckEngine`:
    each selected process is re-evaluated through a pooled scalar probe
    context and any disagreement on the fired action, the ports read,
    or the bits charged raises
    :class:`~repro.core.exceptions.ModelError`.  Enabled-set queries are
    audited against a full scalar scan as well.  Strictly a debugging
    mode — every batch step pays the full scalar cost on top.
    """

    name = "batch-debug"

    def _audit_step(self, selected, sel_idx, codes, ports, bits) -> None:
        ops = self._store.ops
        names = self._kernel.rule_names
        actions = self._actions
        pool = self._probe_pool
        code_l = ops.tolist(codes)
        port_l = ops.tolist(ports)
        bits_l = ops.tolist(bits)
        for p, code, port, b in zip(selected, code_l, port_l, bits_l):
            ctx = pool.acquire(p, rng=None)
            action = first_enabled(actions, ctx)
            expect_name = action.name if action is not None else None
            got_name = names[code] if code >= 0 else None
            expect_ports = set(ctx.ports_read)
            got_ports = {port} if port else set()
            if (
                got_name != expect_name
                or got_ports != expect_ports
                or b != ctx.bits_read
            ):
                raise ModelError(
                    f"batch kernel diverged from scalar guards at {p!r}: "
                    f"action {got_name!r} vs {expect_name!r}, ports "
                    f"{sorted(got_ports)} vs {sorted(expect_ports)}, bits "
                    f"{b!r} vs {ctx.bits_read!r}"
                )

    def _compute_enabled(self):
        enabled_set, enabled_list = super()._compute_enabled()
        fresh = self._scan()
        if fresh != enabled_set:
            missing = sorted(map(repr, fresh - enabled_set))
            extra = sorted(map(repr, enabled_set - fresh))
            raise ModelError(
                "batch enabled-set diverged from full scan "
                f"(missing: {missing}, stale: {extra})"
            )
        return enabled_set, enabled_list


class ResidentBatchEngine(BatchEngine):
    """Column-resident batch engine: the columns are the live state.

    ``engine="batch-resident"``.  Differences from :class:`BatchEngine`:

    * the store runs in resident mode — step writes stay columnar and
      the touched rows go stale-by-design until :meth:`materialize_rows`
      decodes them (``ColumnStore.generation`` stamps which slots moved);
    * the bound :class:`~repro.core.state.Configuration` gets a sync
      hook, so *any* row observation — traces, predicates, silence
      walks, fault injectors, direct ``config.get``/``state_of`` reads —
      transparently materializes first and can never see stale rows;
    * the simulator's ``run_steps``/``run_until_silent`` delegate to the
      fused :meth:`BatchEngine.run_steps` driver under synchronous and
      maximal daemons, skipping the per-step Python round-trip entirely.

    Everything else — fallback ladder, metrics folds, equivalence
    guarantees — is inherited; the scalar engines remain the oracles.
    """

    name = "batch-resident"
    resident = True

    def _activate(self) -> None:
        hooked = getattr(self, "_hooked_config", None)
        if hooked is not None:
            hooked.install_sync(None)
            self._hooked_config = None
        super()._activate()
        store = self._store
        if store is not None:
            store.resident = True
            install = getattr(self.config, "install_sync", None)
            if install is not None:
                install(self.materialize_rows)
                self._hooked_config = self.config
