"""Guarded actions.

A local algorithm (paper §2) is a finite list of guarded actions
``⟨guard⟩ → ⟨action⟩``.  Guards are Boolean predicates over the process's
own variables and its neighbors' *communication* variables; actions
assign new values to the process's own variables.  The paper assumes a
priority order induced by the order of appearance in the code (earlier
actions have higher priority); we preserve that by keeping actions in a
tuple and always executing the first enabled one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .context import StepContext


@dataclass(frozen=True)
class GuardedAction:
    """One ``⟨guard⟩ → ⟨action⟩`` rule.

    Attributes
    ----------
    name:
        Human-readable rule name used in traces and tests.
    guard:
        Predicate evaluated against a :class:`StepContext`; any neighbor
        communication variables it touches are recorded as reads.
    effect:
        Statement list executed when the guard holds; writes go through
        the context (own variables only).
    """

    name: str
    guard: Callable[["StepContext"], bool]
    effect: Callable[["StepContext"], None]

    def is_enabled(self, ctx: "StepContext") -> bool:
        """Evaluate the guard against γi (neighbor reads are tracked)."""
        return bool(self.guard(ctx))


def first_enabled(
    actions: Sequence[GuardedAction], ctx: "StepContext"
) -> Optional[GuardedAction]:
    """The highest-priority enabled action, or ``None`` if disabled.

    Guard evaluations accumulate neighbor reads into ``ctx`` exactly as
    a real execution would: deciding which rule fires is itself
    communication, and the paper's k-efficiency measure charges for it.
    Calls each guard directly (the hot path skips the
    :meth:`GuardedAction.is_enabled` wrapper; ``if`` applies the same
    truthiness the wrapper's ``bool()`` would).
    """
    for action in actions:
        if action.guard(ctx):
            return action
    return None


Actions = Tuple[GuardedAction, ...]
