"""Schedulers (daemons).

The paper assumes a *distributed fair* scheduler: in each step any
non-empty subset of processes may be selected, and every process is
selected infinitely often.  This module provides a family of schedulers
that all satisfy distribution, with fairness achieved either surely
(synchronous, round-robin, bounded enforcement) or with probability 1
(random subsets).  The adversarial variants let tests and benchmarks
probe worst-case behaviour while staying inside the fairness contract.

Two selection pools exist, declared per scheduler via
:attr:`Scheduler.draws_from`:

* ``"all"`` (the default) — the daemon may select *any* process; a
  selected-but-disabled process executes nothing (the paper's footnote
  semantics).  This is the historical behaviour of every daemon here.
* ``"enabled"`` — the daemon draws directly from the enabled set
  maintained by the simulator's
  :class:`~repro.core.engine.EnabledSetEngine`, never wasting a
  selection on a disabled process — the daemon of the classical
  self-stabilization literature.  The simulator falls back to the full
  process list when nothing is enabled (the configuration is then
  terminal, so those activations are harmless no-ops that let rounds
  close and silence be detected).

The synchronous/central/random-subset/round-robin/locally-central
daemons accept ``enabled_only=True`` to opt into the second pool;
``enabled_only`` synchronous is exactly the *maximal* (greedy) daemon.
The bounded-fair and fixed-sequence daemons keep per-process scripts or
starvation books over the full process set and stay pool-"all" only.
"""

from __future__ import annotations

import inspect
import random
from abc import ABC, abstractmethod
from typing import Hashable, List, Optional, Sequence, Set

ProcessId = Hashable


class Scheduler(ABC):
    """Chooses which processes act in each step.

    Subclass contract: :meth:`select` receives the selection pool (all
    processes, or only the enabled ones when :attr:`draws_from` is
    ``"enabled"``) in canonical network order plus the run's rng, and
    must return a non-empty subset.  Stateful schedulers additionally
    override :meth:`reset` so a reused instance cannot leak pacing
    state between runs.
    """

    name: str = "scheduler"

    #: Which pool the simulator offers to :meth:`select`: ``"all"``
    #: processes (footnote semantics) or only the ``"enabled"`` ones
    #: (engine-maintained; see the module docstring).
    draws_from: str = "all"

    #: Whether :meth:`select` can never return the same process twice
    #: within one step.  Every daemon here selects subsets except the
    #: fixed-sequence one, whose scripts may repeat a pid; schedulers
    #: that can repeat must set this ``False`` so the batch step path
    #: (which folds each selected process exactly once) steps aside.
    selects_distinct: bool = True

    @abstractmethod
    def select(self, processes: Sequence[ProcessId], rng: random.Random) -> List[ProcessId]:
        """A non-empty subset of ``processes`` to activate this step."""

    def reset(self) -> None:
        """Forget any internal pacing state (called when a run restarts)."""

    def rebind_network(self, network) -> None:
        """Adopt a mutated network (topology churn).

        Most daemons are network-oblivious (they only see the selection
        pool), so the default is a no-op; network-aware daemons (the
        locally central one) override this.  Schedulers with explicit
        per-process scripts (fixed-sequence) are incompatible with
        churn that removes their scripted processes.
        """


class SynchronousScheduler(Scheduler):
    """Every process in the pool acts in every step.

    Over the full pool this is the synchronous daemon (one step per
    round); with ``enabled_only=True`` it activates exactly the enabled
    processes — the *maximal* (greedy) daemon.
    """

    name = "synchronous"

    def __init__(self, enabled_only: bool = False):
        if enabled_only:
            self.draws_from = "enabled"

    def select(self, processes: Sequence[ProcessId], rng: random.Random) -> List[ProcessId]:
        return list(processes)


class CentralScheduler(Scheduler):
    """Exactly one uniformly random pool member acts per step.

    The classical central daemon; fair with probability 1.  With
    ``enabled_only=True`` the draw is uniform over the *enabled*
    processes, matching the central daemon of the literature (and never
    spending a step on a disabled no-op).
    """

    name = "central"

    def __init__(self, enabled_only: bool = False):
        if enabled_only:
            self.draws_from = "enabled"

    def select(self, processes: Sequence[ProcessId], rng: random.Random) -> List[ProcessId]:
        return [processes[rng.randrange(len(processes))]]


class RandomSubsetScheduler(Scheduler):
    """Each pool member is independently included with probability ``p_act``.

    Empty draws are resampled so every step activates someone.  Fair with
    probability 1 and a good model of uncoordinated asynchrony.
    """

    name = "random-subset"

    def __init__(self, p_act: float = 0.5, enabled_only: bool = False):
        if not 0.0 < p_act <= 1.0:
            raise ValueError("p_act must be in (0, 1]")
        self.p_act = p_act
        if enabled_only:
            self.draws_from = "enabled"

    def select(self, processes: Sequence[ProcessId], rng: random.Random) -> List[ProcessId]:
        while True:
            chosen = [p for p in processes if rng.random() < self.p_act]
            if chosen:
                return chosen


class RoundRobinScheduler(Scheduler):
    """Pool members act one at a time in cyclic order.

    Deterministic and fair; over the full pool one round costs exactly
    ``n`` steps.  With ``enabled_only=True`` the cursor walks the
    (shrinking/shifting) enabled pool instead.
    """

    name = "round-robin"

    def __init__(self, enabled_only: bool = False) -> None:
        self._next = 0
        if enabled_only:
            self.draws_from = "enabled"

    def select(self, processes: Sequence[ProcessId], rng: random.Random) -> List[ProcessId]:
        p = processes[self._next % len(processes)]
        self._next += 1
        return [p]

    def reset(self) -> None:
        self._next = 0


class BoundedFairScheduler(Scheduler):
    """Adversarially skewed but *boundedly fair* scheduler.

    Activates a random subset biased toward a (re-drawn) favoured pool,
    but guarantees no process starves longer than ``bound`` steps — the
    strongest adversary compatible with the paper's fairness assumption
    that is still finitely checkable.
    """

    name = "bounded-fair"

    def __init__(self, bound: int = 24, burst: int = 3):
        if bound < 1:
            raise ValueError("bound must be >= 1")
        self.bound = bound
        self.burst = burst
        self._starved_for: dict = {}

    def select(self, processes: Sequence[ProcessId], rng: random.Random) -> List[ProcessId]:
        for p in processes:
            self._starved_for.setdefault(p, 0)
        overdue = [p for p in processes if self._starved_for[p] >= self.bound]
        if overdue:
            chosen = overdue
        else:
            k = min(len(processes), 1 + rng.randrange(self.burst))
            chosen = list(rng.sample(list(processes), k))
        chosen_set = set(chosen)
        for p in processes:
            self._starved_for[p] = 0 if p in chosen_set else self._starved_for[p] + 1
        return chosen

    def reset(self) -> None:
        self._starved_for.clear()


class FixedSequenceScheduler(Scheduler):
    """Replays an explicit list of activation sets (for targeted tests).

    After the scripted prefix is exhausted it falls back to synchronous
    steps so fairness still holds on the infinite suffix.
    """

    name = "fixed-sequence"
    selects_distinct = False  # a scripted step may repeat a pid

    def __init__(self, sequence: Sequence[Sequence[ProcessId]]):
        self._sequence = [list(s) for s in sequence]
        self._i = 0

    def select(self, processes: Sequence[ProcessId], rng: random.Random) -> List[ProcessId]:
        if self._i < len(self._sequence):
            chosen = self._sequence[self._i]
            self._i += 1
            if chosen:
                return list(chosen)
        return list(processes)

    def reset(self) -> None:
        self._i = 0



class LocallyCentralScheduler(Scheduler):
    """No two *neighbors* act in the same step (the locally central
    daemon).  Draws a random subset and greedily drops conflicts, so
    each step activates an independent set; fair with probability 1.

    Requires the network at construction because independence is a
    topological notion the base scheduler interface cannot see.
    """

    name = "locally-central"

    def __init__(self, network, p_act: float = 0.5, enabled_only: bool = False):
        if not 0.0 < p_act <= 1.0:
            raise ValueError("p_act must be in (0, 1]")
        self.network = network
        self.p_act = p_act
        if enabled_only:
            self.draws_from = "enabled"

    def select(self, processes: Sequence[ProcessId], rng: random.Random) -> List[ProcessId]:
        while True:
            candidates = [p for p in processes if rng.random() < self.p_act]
            rng.shuffle(candidates)
            chosen: List[ProcessId] = []
            taken: Set[ProcessId] = set()
            for p in candidates:
                if p in taken:
                    continue
                chosen.append(p)
                taken.add(p)
                taken.update(self.network.neighbors(p))
            if chosen:
                return chosen

    def rebind_network(self, network) -> None:
        """Independence is topological: track the mutated network."""
        self.network = network

DEFAULT_SCHEDULERS = (
    SynchronousScheduler,
    CentralScheduler,
    RandomSubsetScheduler,
    RoundRobinScheduler,
    BoundedFairScheduler,
    FixedSequenceScheduler,
    LocallyCentralScheduler,
)


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Factory by name (used by examples and the benchmark harness).

    Covers every scheduler in this module.  ``fixed-sequence`` needs a
    ``sequence=`` kwarg and ``locally-central`` a ``network=`` kwarg;
    the :mod:`repro.api` scheduler registry injects the network lazily
    at :class:`~repro.core.simulator.Simulator` build time.
    """
    table = {cls.name: cls for cls in DEFAULT_SCHEDULERS}
    try:
        cls = table[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; known: {sorted(table)}"
        ) from None
    try:
        inspect.signature(cls).bind(**kwargs)
    except TypeError as exc:
        raise ValueError(f"bad parameters for scheduler {name!r}: {exc}") from None
    return cls(**kwargs)
