"""Schedulers (daemons).

The paper assumes a *distributed fair* scheduler: in each step any
non-empty subset of processes may be selected, and every process is
selected infinitely often.  This module provides a family of schedulers
that all satisfy distribution, with fairness achieved either surely
(synchronous, round-robin, bounded enforcement) or with probability 1
(random subsets).  The adversarial variants let tests and benchmarks
probe worst-case behaviour while staying inside the fairness contract.
"""

from __future__ import annotations

import inspect
import random
from abc import ABC, abstractmethod
from typing import Hashable, List, Optional, Sequence, Set

ProcessId = Hashable


class Scheduler(ABC):
    """Chooses which processes act in each step."""

    name: str = "scheduler"

    @abstractmethod
    def select(self, processes: Sequence[ProcessId], rng: random.Random) -> List[ProcessId]:
        """A non-empty subset of ``processes`` to activate this step."""

    def reset(self) -> None:
        """Forget any internal pacing state (called when a run restarts)."""


class SynchronousScheduler(Scheduler):
    """Every process acts in every step — one step per round."""

    name = "synchronous"

    def select(self, processes: Sequence[ProcessId], rng: random.Random) -> List[ProcessId]:
        return list(processes)


class CentralScheduler(Scheduler):
    """Exactly one uniformly random process acts per step.

    The classical central daemon; fair with probability 1.
    """

    name = "central"

    def select(self, processes: Sequence[ProcessId], rng: random.Random) -> List[ProcessId]:
        return [processes[rng.randrange(len(processes))]]


class RandomSubsetScheduler(Scheduler):
    """Each process is independently included with probability ``p_act``.

    Empty draws are resampled so every step activates someone.  Fair with
    probability 1 and a good model of uncoordinated asynchrony.
    """

    name = "random-subset"

    def __init__(self, p_act: float = 0.5):
        if not 0.0 < p_act <= 1.0:
            raise ValueError("p_act must be in (0, 1]")
        self.p_act = p_act

    def select(self, processes: Sequence[ProcessId], rng: random.Random) -> List[ProcessId]:
        while True:
            chosen = [p for p in processes if rng.random() < self.p_act]
            if chosen:
                return chosen


class RoundRobinScheduler(Scheduler):
    """Processes act one at a time in a fixed cyclic order.

    Deterministic and fair; one round costs exactly ``n`` steps.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, processes: Sequence[ProcessId], rng: random.Random) -> List[ProcessId]:
        p = processes[self._next % len(processes)]
        self._next += 1
        return [p]

    def reset(self) -> None:
        self._next = 0


class BoundedFairScheduler(Scheduler):
    """Adversarially skewed but *boundedly fair* scheduler.

    Activates a random subset biased toward a (re-drawn) favoured pool,
    but guarantees no process starves longer than ``bound`` steps — the
    strongest adversary compatible with the paper's fairness assumption
    that is still finitely checkable.
    """

    name = "bounded-fair"

    def __init__(self, bound: int = 24, burst: int = 3):
        if bound < 1:
            raise ValueError("bound must be >= 1")
        self.bound = bound
        self.burst = burst
        self._starved_for: dict = {}

    def select(self, processes: Sequence[ProcessId], rng: random.Random) -> List[ProcessId]:
        for p in processes:
            self._starved_for.setdefault(p, 0)
        overdue = [p for p in processes if self._starved_for[p] >= self.bound]
        if overdue:
            chosen = overdue
        else:
            k = min(len(processes), 1 + rng.randrange(self.burst))
            chosen = list(rng.sample(list(processes), k))
        chosen_set = set(chosen)
        for p in processes:
            self._starved_for[p] = 0 if p in chosen_set else self._starved_for[p] + 1
        return chosen

    def reset(self) -> None:
        self._starved_for.clear()


class FixedSequenceScheduler(Scheduler):
    """Replays an explicit list of activation sets (for targeted tests).

    After the scripted prefix is exhausted it falls back to synchronous
    steps so fairness still holds on the infinite suffix.
    """

    name = "fixed-sequence"

    def __init__(self, sequence: Sequence[Sequence[ProcessId]]):
        self._sequence = [list(s) for s in sequence]
        self._i = 0

    def select(self, processes: Sequence[ProcessId], rng: random.Random) -> List[ProcessId]:
        if self._i < len(self._sequence):
            chosen = self._sequence[self._i]
            self._i += 1
            if chosen:
                return list(chosen)
        return list(processes)

    def reset(self) -> None:
        self._i = 0



class LocallyCentralScheduler(Scheduler):
    """No two *neighbors* act in the same step (the locally central
    daemon).  Draws a random subset and greedily drops conflicts, so
    each step activates an independent set; fair with probability 1.

    Requires the network at construction because independence is a
    topological notion the base scheduler interface cannot see.
    """

    name = "locally-central"

    def __init__(self, network, p_act: float = 0.5):
        if not 0.0 < p_act <= 1.0:
            raise ValueError("p_act must be in (0, 1]")
        self.network = network
        self.p_act = p_act

    def select(self, processes: Sequence[ProcessId], rng: random.Random) -> List[ProcessId]:
        while True:
            candidates = [p for p in processes if rng.random() < self.p_act]
            rng.shuffle(candidates)
            chosen: List[ProcessId] = []
            taken: Set[ProcessId] = set()
            for p in candidates:
                if p in taken:
                    continue
                chosen.append(p)
                taken.add(p)
                taken.update(self.network.neighbors(p))
            if chosen:
                return chosen

DEFAULT_SCHEDULERS = (
    SynchronousScheduler,
    CentralScheduler,
    RandomSubsetScheduler,
    RoundRobinScheduler,
    BoundedFairScheduler,
    FixedSequenceScheduler,
    LocallyCentralScheduler,
)


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Factory by name (used by examples and the benchmark harness).

    Covers every scheduler in this module.  ``fixed-sequence`` needs a
    ``sequence=`` kwarg and ``locally-central`` a ``network=`` kwarg;
    the :mod:`repro.api` scheduler registry injects the network lazily
    at :class:`~repro.core.simulator.Simulator` build time.
    """
    table = {cls.name: cls for cls in DEFAULT_SCHEDULERS}
    try:
        cls = table[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; known: {sorted(table)}"
        ) from None
    try:
        inspect.signature(cls).bind(**kwargs)
    except TypeError as exc:
        raise ValueError(f"bad parameters for scheduler {name!r}: {exc}") from None
    return cls(**kwargs)
