"""Columnar bridge between flat configurations and batch kernels.

The flat :class:`~repro.core.state.Configuration` stores one value row
per process addressed through an interned
:class:`~repro.core.state.StateLayout`.  A :class:`ColumnStore` turns
that row-major storage into one *column* per layout slot — the shape a
vectorized guard kernel wants — plus the per-process adjacency and
register-width tables every kernel needs:

* ``col(slot)`` — one integer column per variable, in canonical
  network-process order, holding *encoded* values (integers pass
  through; finite-set values are mapped to their index in the domain's
  value tuple, so ``Dominator``/``dominated`` and ``False``/``True``
  become ``0``/``1``);
* ``nbr`` / ``deg`` — a padded neighbor-index matrix built from the
  port-ordered :meth:`Network.neighbors` tuples (``nbr[i][port-1]`` is
  the column index of the neighbor behind port ``port`` of process
  ``i``);
* ``reg_bits(name)`` — per-process register widths in bits, gathered by
  neighbor index to charge reads exactly like
  :class:`~repro.core.context.StepContext` does.

Backends: NumPy arrays when NumPy imports (:data:`numpy` is resolved at
store construction, so blocking the import per-test exercises the
fallback), stdlib ``array('q')``/list columns otherwise.  Both expose
one tiny primitive set (:class:`_NumpyOps` / :class:`_PythonOps`) so
kernels are written once against ``store.ops``.

Writes flow *through* the configuration: :meth:`ColumnStore.write`
updates the column and immediately decodes the new value back into the
process's live row, so every consumer of the configuration — traces,
silence checks, predicates, fault injectors — observes exactly the
state a scalar step would have produced.

**Column-resident mode** (``store.resident = True``, set by the
``batch-resident`` engine) inverts that contract: writes stay in the
columns, the touched slots are recorded in ``_dirty_slots``, and the
per-slot ``generation`` stamp advances; rows are only refreshed by an
explicit :meth:`materialize` call at observation boundaries (traces,
scenario hooks, silence predicates, direct configuration reads — the
``Configuration`` sync hook routes all of those here).  The two
staleness directions are mutually exclusive by construction: while
columns are dirty, :meth:`pull`/:meth:`pull_all` refuse to run, so a
row-ahead and a column-ahead view can never silently merge.

A store is only *supported* for flat configurations whose processes
share one interned layout and whose domains are all integer ranges or
uniform finite value tuples; :meth:`ColumnStore.try_build` returns
``None`` otherwise and the batch engine falls back to the scalar path.
"""

from __future__ import annotations

from array import array
from itertools import chain, repeat
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..obs.registry import TELEMETRY
from .exceptions import ModelError
from .variables import FiniteSet, IntRange

ProcessId = Hashable

_SCALARS = (bool, int, float)


def _load_numpy():
    """NumPy, or None when unavailable (resolved per call, never cached,
    so tests can block the import for a single store)."""
    try:
        import numpy
    except ImportError:
        return None
    return numpy


class _NumpyOps:
    """Vector primitives over ``numpy.ndarray`` columns."""

    backend = "numpy"

    def __init__(self, np):
        self.np = np

    # -- construction ---------------------------------------------------
    def int_col(self, seq):
        return self.np.asarray(seq, dtype=self.np.int64)

    def float_col(self, seq):
        return self.np.asarray(seq, dtype=self.np.float64)

    def arange(self, n):
        return self.np.arange(n, dtype=self.np.int64)

    def zeros_int(self, n):
        return self.np.zeros(n, dtype=self.np.int64)

    # -- gathers --------------------------------------------------------
    def take(self, col, idx):
        return col[idx]

    def take2(self, mat, rows, cols):
        return mat[rows, cols]

    # -- elementwise ----------------------------------------------------
    def eq(self, a, b):
        return a == b

    def ne(self, a, b):
        return a != b

    def lt(self, a, b):
        return a < b

    def and_(self, a, b):
        return a & b

    def or_(self, a, b):
        return a | b

    def not_(self, a):
        return ~a

    def add(self, a, b):
        return a + b

    def mod(self, a, b):
        return a % b

    def where(self, c, a, b):
        return self.np.where(c, a, b)

    # -- reductions / conversions --------------------------------------
    def count(self, mask) -> int:
        return int(mask.sum())

    def anytrue(self, mask) -> bool:
        return bool(mask.any())

    def compress_list(self, vals, mask) -> list:
        return vals[mask].tolist()

    def nonzero_list(self, mask) -> list:
        return self.np.nonzero(mask)[0].tolist()

    def tolist(self, col) -> list:
        return col.tolist()


class _PythonOps:
    """The same primitives over stdlib ``array``/list columns.

    Columns are ``array('q')`` (state) or plain lists (masks, floats);
    scalar operands broadcast.  Performance is secondary — this backend
    exists so the batch engine stays available, and trace-identical,
    without NumPy.
    """

    backend = "python"

    @staticmethod
    def _iter(v, n):
        return repeat(v) if isinstance(v, _SCALARS) else v

    # -- construction ---------------------------------------------------
    def int_col(self, seq):
        return array("q", seq)

    def float_col(self, seq):
        return list(seq)

    def arange(self, n):
        return array("q", range(n))

    def zeros_int(self, n):
        return array("q", bytes(8 * n))

    # -- gathers --------------------------------------------------------
    def take(self, col, idx):
        return [col[i] for i in idx]

    def take2(self, mat, rows, cols):
        return [mat[i][j] for i, j in zip(rows, cols)]

    # -- elementwise ----------------------------------------------------
    def eq(self, a, b):
        return [x == y for x, y in zip(a, self._iter(b, len(a)))]

    def ne(self, a, b):
        return [x != y for x, y in zip(a, self._iter(b, len(a)))]

    def lt(self, a, b):
        return [x < y for x, y in zip(a, self._iter(b, len(a)))]

    def and_(self, a, b):
        return [x and y for x, y in zip(a, b)]

    def or_(self, a, b):
        return [x or y for x, y in zip(a, b)]

    def not_(self, a):
        return [not x for x in a]

    def add(self, a, b):
        return [x + y for x, y in zip(a, self._iter(b, len(a)))]

    def mod(self, a, b):
        return [x % y for x, y in zip(a, self._iter(b, len(a)))]

    def where(self, c, a, b):
        n = len(c)
        return [
            x if m else y
            for m, x, y in zip(c, self._iter(a, n), self._iter(b, n))
        ]

    # -- reductions / conversions --------------------------------------
    def count(self, mask) -> int:
        return sum(mask)

    def anytrue(self, mask) -> bool:
        return any(mask)

    def compress_list(self, vals, mask) -> list:
        return [v for v, m in zip(vals, mask) if m]

    def nonzero_list(self, mask) -> list:
        return [i for i, m in enumerate(mask) if m]

    def tolist(self, col) -> list:
        return list(col)


class _SlotCodec:
    """Encode/decode between a column's integers and row values.

    ``values is None`` is the identity codec (all-integer-range slots);
    otherwise values are indexed into the shared finite value tuple, and
    decoding restores the *original* objects — real bools, strings —
    so written-back rows are indistinguishable from scalar writes
    (JSON type fidelity matters for byte-identical traces).
    """

    __slots__ = ("values", "encode_map")

    def __init__(self, values: Optional[Tuple[Any, ...]]):
        self.values = values
        self.encode_map = (
            None
            if values is None
            else {v: i for i, v in enumerate(values)}
        )

    def encode(self, value) -> int:
        if self.values is None:
            return value
        return self.encode_map[value]

    def decode(self, code: int):
        if self.values is None:
            return code
        return self.values[code]


class ColumnStore:
    """Columnar mirror of one flat configuration over one network."""

    __slots__ = (
        "ops",
        "backend",
        "n",
        "pids",
        "pindex",
        "layout",
        "rows",
        "codecs",
        "cols",
        "nbr",
        "deg",
        "max_degree",
        "all_idx",
        "resident",
        "generation",
        "_dirty_slots",
        "_bits_raw",
        "_bits_cols",
    )

    def __init__(self, ops, pids, pindex, layout, rows, codecs, bits_raw,
                 nbr, deg, max_degree):
        self.ops = ops
        self.backend = ops.backend
        self.n = len(pids)
        self.pids = pids
        self.pindex = pindex
        self.layout = layout
        self.rows = rows
        self.codecs = codecs
        self._bits_raw = bits_raw
        self._bits_cols: Dict[str, Any] = {}
        self.nbr = nbr
        self.deg = deg
        self.max_degree = max_degree
        self.all_idx = ops.arange(self.n)
        self.resident = False
        #: per-slot column generation stamp; advances on every resident
        #: write, so observers can tell whether a slot moved since they
        #: last materialized.
        self.generation: List[int] = [0] * len(layout.names)
        self._dirty_slots: set = set()
        self.cols: List[Any] = [None] * len(layout.names)
        self.pull_all()

    # ------------------------------------------------------------------
    @classmethod
    def try_build(cls, network, config, specs_of) -> Optional["ColumnStore"]:
        """A store for this run, or ``None`` when unsupported.

        Unsupported cases (the batch engine then runs its scalar
        fallback): legacy dict configurations, processes with differing
        layouts, and variable domains that are neither integer ranges
        nor one shared finite value tuple.
        """
        row_of = getattr(config, "row_of", None)
        layout_of = getattr(config, "layout_of", None)
        if row_of is None or layout_of is None:
            return None
        pids = list(network.processes)
        n = len(pids)
        if n == 0:
            return None
        aligned = getattr(config, "aligned_storage", None)
        aligned = aligned(pids) if aligned is not None else None
        layout = (aligned[0][0] if aligned is not None
                  else layout_of(pids[0]))
        names = layout.names
        nvars = len(names)
        # One pass over every process resolves layout sharing, slot
        # codecs, the per-variable register widths, and the row aliases.
        # Spec tuples repeat heavily (protocols memoize by degree), so
        # the codec/bits resolution runs once per *distinct* tuple and
        # the per-process loop degrades to cache hits.
        codec_values: List[Any] = [False] * nvars  # False=int, tuple=enum
        bits_raw: Dict[str, List[float]] = {name: [0.0] * n for name in names}
        bits_cols = [bits_raw[name] for name in names]
        spec_cache: Dict[int, Optional[List[float]]] = {}

        def resolve(specs, first: bool) -> Optional[List[float]]:
            """Per-slot bit widths of one spec tuple, or None if the
            tuple cannot share this store's layout/codecs."""
            if len(specs) != nvars:
                return None
            bits = [0.0] * nvars
            for spec in specs:
                k = layout.index.get(spec.name)
                if k is None:
                    return None
                dom = spec.domain
                if isinstance(dom, IntRange):
                    if codec_values[k] is not False:
                        return None
                elif isinstance(dom, FiniteSet):
                    if codec_values[k] is False:
                        if first:
                            codec_values[k] = dom.values
                        else:
                            return None
                    elif codec_values[k] != dom.values:
                        return None
                else:
                    return None
                bits[k] = dom.bits
            return bits

        if aligned is not None:
            layouts, rows = aligned
            rows = list(rows)
        else:
            layouts = None
            rows = [None] * n
        bits_refs: List[Optional[List[float]]] = [None] * n
        for i, p in enumerate(pids):
            if aligned is not None:
                if layouts[i] is not layout:
                    return None
            else:
                if layout_of(p) is not layout:
                    return None
                rows[i] = row_of(p)
            specs = specs_of[p]
            bits = spec_cache.get(id(specs))
            if bits is None and id(specs) not in spec_cache:
                bits = resolve(specs, first=(i == 0))
                spec_cache[id(specs)] = bits
            if bits is None:
                return None
            bits_refs[i] = bits
        for k in range(nvars):
            bits_cols[k][:] = [b[k] for b in bits_refs]
        codecs = [
            _SlotCodec(None if values is False else tuple(values))
            for values in codec_values
        ]
        np = _load_numpy()
        ops = _NumpyOps(np) if np is not None else _PythonOps()
        pindex = {p: i for i, p in enumerate(pids)}
        port_lists = [network.neighbors(p) for p in pids]
        degs = list(map(len, port_lists))
        max_degree = max(degs) if degs else 0
        if max_degree == 0:
            return None
        if ops.backend == "numpy":
            # Padded (n, Δ) table built by scatter instead of a Python
            # per-neighbor append loop — at 1M processes the loop was
            # most of the store build.
            flat_pids = list(chain.from_iterable(port_lists))
            flat = np.fromiter(
                map(pindex.__getitem__, flat_pids),
                dtype=np.int64, count=len(flat_pids),
            )
            deg_arr = np.asarray(degs, dtype=np.int64)
            rows_rep = np.repeat(np.arange(n, dtype=np.int64), deg_arr)
            starts = np.repeat(
                np.cumsum(deg_arr, dtype=np.int64) - deg_arr, deg_arr
            )
            cols_rep = np.arange(len(flat_pids), dtype=np.int64) - starts
            nbr = np.zeros((n, max_degree), dtype=np.int64)
            nbr[rows_rep, cols_rep] = flat
            deg = deg_arr
        else:
            nbr = [
                array("q", (pindex[q] for q in order))
                for order in port_lists
            ]
            deg = ops.int_col(degs)
        return cls(ops, pids, pindex, layout, rows, codecs, bits_raw,
                   nbr, deg, max_degree)

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def slot(self, name: str) -> int:
        """The column index of register ``name`` in the shared layout."""
        return self.layout.index[name]

    def col(self, slot: int):
        """The backend column (codes, one entry per process) for ``slot``."""
        return self.cols[slot]

    def encode(self, slot: int, value) -> int:
        """The column code of one row value (for kernel constants)."""
        return self.codecs[slot].encode(value)

    def reg_bits(self, name: str):
        """Per-process register width of ``name`` in bits, as a float
        column indexed like every other column (gather by neighbor
        index to charge a read)."""
        col = self._bits_cols.get(name)
        if col is None:
            col = self._bits_cols[name] = self.ops.float_col(
                self._bits_raw[name]
            )
        return col

    # ------------------------------------------------------------------
    # Row <-> column synchronization
    # ------------------------------------------------------------------
    def pull_all(self) -> None:
        """Re-read every row into the columns (bind / full distrust)."""
        if self._dirty_slots:
            raise ModelError(
                "pull_all() with undecoded resident columns; "
                "materialize() first"
            )
        rows = self.rows
        for k, codec in enumerate(self.codecs):
            if codec.values is None:
                data = [row[k] for row in rows]
            else:
                enc = codec.encode_map
                data = [enc[row[k]] for row in rows]
            self.cols[k] = self.ops.int_col(data)

    def pull(self, indices) -> None:
        """Re-read the rows of ``indices`` (out-of-band writes: faults,
        adversarial resets, scalar steps interleaved with batch ones)."""
        if self._dirty_slots:
            raise ModelError(
                "pull() with undecoded resident columns; "
                "materialize() first"
            )
        rows = self.rows
        for k, codec in enumerate(self.codecs):
            col = self.cols[k]
            if codec.values is None:
                for i in indices:
                    col[i] = rows[i][k]
            else:
                enc = codec.encode_map
                for i in indices:
                    col[i] = enc[rows[i][k]]

    def write(self, slot: int, indices: list, codes: list) -> None:
        """Apply one slot's batch of writes to the column and — unless
        the store is resident — decode them into the live rows, keeping
        the configuration the source of truth.  Resident stores defer
        the decode to :meth:`materialize`."""
        col = self.cols[slot]
        if self.backend == "numpy":
            col[indices] = codes
        else:
            for i, v in zip(indices, codes):
                col[i] = v
        if self.resident:
            self.generation[slot] += 1
            self._dirty_slots.add(slot)
            return
        codec = self.codecs[slot]
        rows = self.rows
        if codec.values is None:
            for i, v in zip(indices, codes):
                rows[i][slot] = v
        else:
            values = codec.values
            for i, v in zip(indices, codes):
                rows[i][slot] = values[v]

    def write_col(self, slot: int, codes) -> None:
        """Replace one slot's whole column (resident fused driver only:
        the rows are left stale-by-design until :meth:`materialize`)."""
        if not self.resident:
            raise ModelError("write_col() requires a resident store")
        if self.backend == "python" and not isinstance(codes, array):
            codes = array("q", codes)
        self.cols[slot] = codes
        self.generation[slot] += 1
        self._dirty_slots.add(slot)

    @property
    def dirty(self) -> bool:
        """True while resident columns hold writes not yet decoded."""
        return bool(self._dirty_slots)

    def materialize(self) -> None:
        """Decode every dirty column back into the live rows (the
        observation boundary of resident mode).  Idempotent and cheap
        when nothing is dirty."""
        if not self._dirty_slots:
            return
        if TELEMETRY.enabled:
            # Decode events are the resident engine's cost center: the
            # whole point of column residency is keeping this count low.
            TELEMETRY.counter("columns.materializations").inc()
            TELEMETRY.counter("columns.materialized_slots").inc(
                len(self._dirty_slots))
        rows = self.rows
        tolist = self.ops.tolist
        for k in sorted(self._dirty_slots):
            codec = self.codecs[k]
            data = tolist(self.cols[k])
            if codec.values is None:
                for i, v in enumerate(data):
                    rows[i][k] = v
            else:
                values = codec.values
                for i, v in enumerate(data):
                    rows[i][k] = values[v]
        self._dirty_slots.clear()

    def __repr__(self) -> str:
        return (
            f"ColumnStore(n={self.n}, backend={self.backend!r}, "
            f"vars={self.layout.names!r})"
        )
