"""Sound detection of silent configurations.

Definition 3 calls a protocol *silent* when every computation converges
to a configuration after which communication variables are fixed.
Detecting that a given configuration is such a fixed point cannot rely
on "nothing changed for a while": internal round-robin pointers keep
moving forever, and an action that writes a communication variable may
be enabled only under a pointer value that shows up much later.

The checker here is exact for the protocols in this package (and any
protocol whose internal variables have finite declared domains and are
updated deterministically):

Given a configuration γ, assume the communication part of γ never
changes.  Then each process's future is an isolated walk over its own
internal-variable space — guards read only its own state and the frozen
neighbor communication states, and the highest-priority enabled action
is unique.  We simulate that walk from the process's *actual* internal
state.  If no reachable internal state fires an action that (a) writes a
communication variable to a different value, or (b) writes a
communication variable using randomness, the assumption is
self-consistent and γ is silent.  Otherwise the offending write is a
concrete witness that γ is not a communication fixed point.

Randomness in an *internal* write would make the walk branch; the
checker conservatively reports "not silent" in that case (none of the
paper's protocols do this — COLORING's randomness targets the
communication variable ``C`` and is caught by rule (b)).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

from .actions import first_enabled
from .context import StepContext
from .protocol import Protocol
from .state import Configuration

ProcessId = Hashable


@dataclass(frozen=True)
class QuiescenceWitness:
    """Why a configuration is not silent: a reachable comm write."""

    process: ProcessId
    rule: str
    variable: str
    old_value: object
    new_value: object
    randomized: bool

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        how = "randomly" if self.randomized else f"to {self.new_value!r}"
        return (
            f"process {self.process!r} can rewrite {self.variable} "
            f"(currently {self.old_value!r}) {how} via rule {self.rule!r}"
        )


def process_quiescence_witness(
    protocol: Protocol,
    network,
    config: Configuration,
    p: ProcessId,
    specs_of=None,
) -> Optional[QuiescenceWitness]:
    """Witness that ``p`` can still change its communication state, or None."""
    specs_of = specs_of or protocol.specs_of(network)
    internal_specs = [s for s in specs_of[p] if s.kind == "internal"]
    actions = protocol.actions()

    # The walk mutates a private copy of p's internal variables.
    trial = config.copy()
    probe_rng = random.Random(0)

    start = tuple(config.get(p, s.name) for s in internal_specs)
    seen = set()
    state = start
    while state not in seen:
        seen.add(state)
        for spec, value in zip(internal_specs, state):
            trial.set(p, spec.name, value)
        ctx = StepContext(p, network, trial, specs_of, rng=probe_rng)
        action = first_enabled(actions, ctx)
        if action is None:
            return None  # disabled forever at this internal state
        action.effect(ctx)
        comm_writes = ctx.comm_writes()
        for name, new_value in comm_writes.items():
            old_value = config.get(p, name)
            if ctx.used_randomness:
                return QuiescenceWitness(p, action.name, name, old_value, new_value, True)
            if new_value != old_value:
                return QuiescenceWitness(p, action.name, name, old_value, new_value, False)
        if ctx.used_randomness and not comm_writes:
            # Randomized internal update: the walk would branch; refuse
            # to certify silence rather than guess.
            return QuiescenceWitness(
                p, action.name, "<internal>", None, None, True
            )
        state = tuple(
            ctx.writes.get(s.name, trial.get(p, s.name)) for s in internal_specs
        )
    return None


def silence_witness(
    protocol: Protocol, network, config: Configuration
) -> Optional[QuiescenceWitness]:
    """First witness that ``config`` is not silent, or None if it is."""
    specs_of = protocol.specs_of(network)
    for p in network.processes:
        witness = process_quiescence_witness(protocol, network, config, p, specs_of)
        if witness is not None:
            return witness
    return None


def is_silent(protocol: Protocol, network, config: Configuration) -> bool:
    """True iff the communication variables of ``config`` are fixed forever."""
    return silence_witness(protocol, network, config) is None
