"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ModelError(ReproError):
    """Violation of the computational model (bad read/write, bad domain)."""


class IllegalRead(ModelError):
    """A process attempted to read a variable it may not access.

    Raised when a process reads an *internal* variable of a neighbor, or
    reads a variable of a non-neighbor: the locally shared memory model
    only allows reading neighbors' communication variables.
    """


class IllegalWrite(ModelError):
    """A process attempted to write a constant or a neighbor's variable."""


class DomainError(ModelError):
    """A value outside a variable's declared domain was assigned."""


class ConvergenceError(ReproError):
    """A simulation failed to reach the expected configuration in budget."""


class TopologyError(ReproError):
    """A graph does not satisfy a structural requirement."""
