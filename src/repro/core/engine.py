"""Enabled-set engines: who could act *right now*, maintained cheaply.

The simulator, the silence-adjacent analyses, and the enabled-drawing
daemons all need the same piece of derived state: the set of processes
with at least one enabled action in the current configuration γ.
Recomputing it from scratch costs one guard evaluation per process —
``O(n·Δ)`` per query — which caps throughput long before the hardware
does on large networks.

The engines here exploit the locality the execution model *enforces*:
a guard is a function of the process's own state and its neighbors'
communication variables only (:class:`~repro.core.context.StepContext`
raises :class:`~repro.core.exceptions.IllegalRead` on anything else).
Hence a step that activates the set ``s`` and changes the communication
variables of ``c ⊆ s`` can only change the enabled-status of

* the activated processes themselves (their own state moved), and
* the processes whose guards may read a member of ``c`` — by default
  the direct neighbors, or a wider ball when the protocol declares a
  larger :attr:`~repro.core.protocol.Protocol.read_radius` /
  overrides :meth:`~repro.core.protocol.Protocol.reads`.

Three engines implement one contract (:class:`EnabledSetEngine`):

* :class:`ScanEngine` — the ``full_scan=True`` fallback: rescans every
  process on demand.  ``O(n·Δ)`` per post-step query, trivially correct.
* :class:`IncrementalEngine` — the default: accumulates a dirty-set per
  step and re-evaluates only dirty guards on demand.  ``O(Δ·|s|)``
  amortized per step.
* :class:`CrossCheckEngine` — debugging: runs the incremental update
  *and* a full scan on every query and raises
  :class:`~repro.core.exceptions.ModelError` on any disagreement.

All engines are *lazy*: :meth:`note_step` only records what moved, and
guard re-evaluation happens when :meth:`enabled_set` /
:meth:`enabled_list` is queried.  A run that never asks about
enabled-status pays almost nothing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from time import perf_counter
from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Set, Tuple

from ..obs.registry import TELEMETRY
from .actions import first_enabled
from .context import StepContextPool
from .exceptions import ModelError

ProcessId = Hashable

#: Engine names accepted by :func:`make_engine` (and the registry /
#: CLI / :class:`~repro.api.ExperimentSpec` layers built on top of it).
#: ``batch`` / ``batch-debug`` / ``batch-resident`` live in
#: :mod:`repro.core.batchengine` (columnar whole-step execution with a
#: scalar fallback; the resident variant keeps state columnar between
#: steps) and are resolved lazily to keep this module import-light.
ENGINE_NAMES = (
    "incremental", "scan", "debug", "batch", "batch-debug", "batch-resident"
)


class EnabledSetEngine(ABC):
    """Maintains the set of enabled processes across simulator steps.

    Lifecycle contract:

    1. The simulator calls :meth:`bind` once with the live run objects;
       the engine snapshots nothing — it reads the (mutable)
       configuration on every guard evaluation.
    2. After every applied step the simulator calls :meth:`note_step`
       with the activated set and the subset whose *communication*
       variables actually changed value.  This must be cheap.
    3. Any time :meth:`enabled_set` / :meth:`enabled_list` is called,
       the engine answers for the configuration as of the last
       :meth:`note_step` (evaluating guards lazily as needed).
    4. Code that mutates the configuration behind the simulator's back
       (fault injection) must call :meth:`invalidate` with the touched
       processes, or with ``None`` to distrust everything.
    """

    #: registry/CLI identifier of the engine implementation
    name: str = "engine"

    def bind(self, protocol, network, config, specs_of) -> None:
        """Attach the engine to one run (called by the simulator).

        An engine instance is a single-run object: rebinding it would
        leave every earlier holder silently querying the new run's
        state, so a second bind raises — pass an engine *name* (or a
        fresh instance) per simulator instead.
        """
        if getattr(self, "_bound", False):
            raise ValueError(
                f"{type(self).__name__} is already bound to a run; "
                "engines are single-run objects — pass an engine name "
                "or a fresh instance to each Simulator"
            )
        self._bound = True
        self.protocol = protocol
        self.network = network
        self.config = config
        self.specs_of = specs_of
        self._actions = protocol.actions()
        # Guard probes reuse pooled contexts (reset per evaluation)
        # instead of allocating one per guard check: a scan costs n
        # context builds otherwise.  Separate from the simulator's
        # execution pool, so a lazy flush triggered mid-step can never
        # clobber the read tracking of the step's execution contexts.
        self._probe_pool = StepContextPool(network, config, specs_of)
        #: canonical position of each process — every engine presents
        #: the enabled pool in network-process order so that daemons
        #: drawing from it behave identically across engines.
        self._order: Dict[ProcessId, int] = {
            p: i for i, p in enumerate(network.processes)
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @abstractmethod
    def enabled_set(self) -> FrozenSet[ProcessId]:
        """The current enabled set (membership queries)."""

    @abstractmethod
    def enabled_list(self) -> Tuple[ProcessId, ...]:
        """The current enabled set in canonical network-process order."""

    def enabled_view(self) -> FrozenSet[ProcessId]:
        """The enabled set for hot-path membership tests.

        May alias engine-internal state to avoid a per-step copy;
        callers must treat it as read-only and must not hold it across
        steps.  Defaults to :meth:`enabled_set`.
        """
        return self.enabled_set()

    # ------------------------------------------------------------------
    # Change notifications
    # ------------------------------------------------------------------
    @abstractmethod
    def note_step(
        self,
        activated: Iterable[ProcessId],
        comm_changed: Iterable[ProcessId],
    ) -> None:
        """Record one applied step.

        ``activated`` is the scheduler's selection; ``comm_changed`` is
        the subset whose communication variables hold a new value in
        γi+1.  Must be O(|activated| + |comm_changed|·Δ) or better.
        """

    @abstractmethod
    def invalidate(self, processes: Optional[Iterable[ProcessId]] = None) -> None:
        """Distrust the cached status of ``processes`` (None = all).

        Required after any out-of-band configuration write — fault
        injection, adversarial resets, direct ``config.set`` calls.
        """

    def rebind_config(self, config) -> None:
        """Point the engine at a *replacement* configuration object.

        Assigning ``Simulator.config`` swaps the storage every cached
        row references, so the probe pool is rebuilt and the whole
        enabled set distrusted.  This is wholesale replacement, not the
        in-place mutation path — for that, :meth:`invalidate` alone is
        enough.
        """
        self.config = config
        self._probe_pool = StepContextPool(
            self.network, config, self.specs_of
        )
        self.invalidate(None)

    def rebind_network(self, protocol, network, config, specs_of) -> None:
        """Re-attach a bound engine to a *mutated* run (topology churn).

        Scenario churn events replace the network, the protocol built
        for it, the configuration and the variable specs wholesale.
        The engine rebuilds everything derived from them — guard
        probes, the canonical process order, and (for the incremental
        engine) the influence map — and distrusts the entire enabled
        set.  Only legal on an already-bound engine; fresh engines go
        through :meth:`bind`.
        """
        if not getattr(self, "_bound", False):
            raise ValueError(
                f"{type(self).__name__} is not bound yet; call bind() first"
            )
        self.protocol = protocol
        self.network = network
        self.config = config
        self.specs_of = specs_of
        self._actions = protocol.actions()
        self._probe_pool = StepContextPool(network, config, specs_of)
        self._order = {p: i for i, p in enumerate(network.processes)}
        self.invalidate(None)

    # ------------------------------------------------------------------
    # Shared guard evaluation
    # ------------------------------------------------------------------
    def _is_enabled(self, p: ProcessId) -> bool:
        """One from-scratch guard evaluation for ``p`` against γ."""
        ctx = self._probe_pool.acquire(p, rng=None)
        return first_enabled(self._actions, ctx) is not None

    def _scan(self) -> Set[ProcessId]:
        """A full from-scratch scan of every process."""
        return {p for p in self.network.processes if self._is_enabled(p)}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ScanEngine(EnabledSetEngine):
    """The full-scan fallback: every query rescans every guard.

    Correct by construction and allocation-free between queries; use it
    as the reference implementation, on tiny networks, or to bisect a
    suspected incremental-engine bug (see also :class:`CrossCheckEngine`
    which automates that comparison).
    """

    name = "scan"

    def bind(self, protocol, network, config, specs_of) -> None:
        super().bind(protocol, network, config, specs_of)
        self._stale = True
        self._set: FrozenSet[ProcessId] = frozenset()
        self._list: Tuple[ProcessId, ...] = ()

    def _refresh(self) -> None:
        if self._stale:
            enabled = self._scan()
            self._set = frozenset(enabled)
            self._list = tuple(
                p for p in self.network.processes if p in enabled
            )
            self._stale = False

    def enabled_set(self) -> FrozenSet[ProcessId]:
        self._refresh()
        return self._set

    def enabled_list(self) -> Tuple[ProcessId, ...]:
        self._refresh()
        return self._list

    def note_step(self, activated, comm_changed) -> None:
        self._stale = True

    def invalidate(self, processes=None) -> None:
        self._stale = True


class IncrementalEngine(EnabledSetEngine):
    """Dirty-set maintenance of the enabled set.

    On :meth:`bind` the engine performs one full scan and precomputes
    the *influence map* — for each process ``q``, the processes whose
    guards may read ``q``'s communication variables (the inverse of
    :meth:`Protocol.reads <repro.core.protocol.Protocol.reads>`).
    After a step, exactly ``activated ∪ influence(comm_changed)`` is
    marked dirty; a query re-evaluates only dirty guards.

    When the accumulated dirty-set covers the whole network (e.g. under
    the synchronous daemon, or after ``invalidate(None)``) the engine
    degrades gracefully to a single full scan at the next query and the
    per-step bookkeeping short-circuits to O(1).
    """

    name = "incremental"

    def bind(self, protocol, network, config, specs_of) -> None:
        super().bind(protocol, network, config, specs_of)
        self._n = network.n
        # influence[q] = processes (≠ q) whose enabled-status may depend
        # on q's communication variables.
        influence: Dict[ProcessId, list] = {p: [] for p in network.processes}
        for p in network.processes:
            for q in protocol.reads(network, p):
                influence[q].append(p)
        self._influence: Dict[ProcessId, Tuple[ProcessId, ...]] = {
            q: tuple(ps) for q, ps in influence.items()
        }
        self._dirty: Set[ProcessId] = set()
        self._stale_all = False
        self._enabled: Set[ProcessId] = self._scan()
        self._list: Optional[Tuple[ProcessId, ...]] = None

    def rebind_network(self, protocol, network, config, specs_of) -> None:
        """Base rebind plus a fresh influence map for the new topology
        (the old map would route invalidations to stale neighborhoods)."""
        super().rebind_network(protocol, network, config, specs_of)
        self._n = network.n
        influence: Dict[ProcessId, list] = {p: [] for p in network.processes}
        for p in network.processes:
            for q in protocol.reads(network, p):
                influence[q].append(p)
        self._influence = {q: tuple(ps) for q, ps in influence.items()}

    # ------------------------------------------------------------------
    def note_step(self, activated, comm_changed) -> None:
        if self._stale_all:
            return
        dirty = self._dirty
        dirty.update(activated)
        influence = self._influence
        for q in comm_changed:
            dirty.update(influence[q])
        if len(dirty) >= self._n:
            self._stale_all = True
            dirty.clear()

    def invalidate(self, processes=None) -> None:
        if processes is None:
            self._stale_all = True
            self._dirty.clear()
        else:
            # Treat the out-of-band write like a step that both
            # activated the victims and changed their comm variables.
            touched = list(processes)
            self.note_step(touched, touched)

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        if self._stale_all:
            self._enabled = self._scan()
            self._stale_all = False
            self._dirty.clear()
            self._list = None
            if TELEMETRY.enabled:
                TELEMETRY.counter("engine.incremental.rescans").inc()
                TELEMETRY.gauge("engine.enabled_set").set(len(self._enabled))
            return
        if not self._dirty:
            return
        # Telemetry stays out of the early-return paths above; a flush
        # with work to do pays one enabled-check (plus clock reads only
        # while the registry is on).
        obs_on = TELEMETRY.enabled
        t0 = perf_counter() if obs_on else 0.0
        dirty_count = len(self._dirty)
        enabled = self._enabled
        changed = False
        for p in self._dirty:
            if self._is_enabled(p):
                if p not in enabled:
                    enabled.add(p)
                    changed = True
            elif p in enabled:
                enabled.discard(p)
                changed = True
        self._dirty.clear()
        if changed:
            self._list = None
        if obs_on:
            TELEMETRY.counter(
                "engine.incremental.reclassified").inc(dirty_count)
            TELEMETRY.histogram("engine.flush_s").observe(
                perf_counter() - t0)
            TELEMETRY.gauge("engine.enabled_set").set(len(enabled))

    def enabled_set(self) -> FrozenSet[ProcessId]:
        self._flush()
        return frozenset(self._enabled)

    def enabled_view(self):
        self._flush()
        return self._enabled

    def enabled_list(self) -> Tuple[ProcessId, ...]:
        self._flush()
        if self._list is None:
            self._list = tuple(
                sorted(self._enabled, key=self._order.__getitem__)
            )
        return self._list


class CrossCheckEngine(IncrementalEngine):
    """Incremental engine that audits itself against a full scan.

    Every flush additionally rescans all guards and raises
    :class:`~repro.core.exceptions.ModelError` if the incrementally
    maintained set disagrees — the debugging mode to run when a new
    protocol declares a custom :meth:`reads` hook or a suspiciously
    narrow :attr:`read_radius`.
    """

    name = "debug"

    def _flush(self) -> None:
        super()._flush()
        fresh = self._scan()
        if fresh != self._enabled:
            missing = sorted(map(repr, fresh - self._enabled))
            extra = sorted(map(repr, self._enabled - fresh))
            raise ModelError(
                "incremental enabled-set diverged from full scan "
                f"(missing: {missing}, stale: {extra}); the protocol's "
                "reads()/read_radius declaration is too narrow or the "
                "configuration was mutated without invalidate()"
            )


_ENGINES = {
    cls.name: cls for cls in (IncrementalEngine, ScanEngine, CrossCheckEngine)
}


def make_engine(engine: "str | EnabledSetEngine" = "incremental") -> EnabledSetEngine:
    """Engine factory: a name from :data:`ENGINE_NAMES` or an instance.

    Passing an already-constructed (unbound) engine through is allowed
    so callers can supply custom implementations.
    """
    if isinstance(engine, EnabledSetEngine):
        return engine
    if (engine in ("batch", "batch-debug", "batch-resident")
            and engine not in _ENGINES):
        # Deferred: batchengine imports this module for the ABC.
        from .batchengine import (
            BatchCrossCheckEngine,
            BatchEngine,
            ResidentBatchEngine,
        )

        _ENGINES[BatchEngine.name] = BatchEngine
        _ENGINES[BatchCrossCheckEngine.name] = BatchCrossCheckEngine
        _ENGINES[ResidentBatchEngine.name] = ResidentBatchEngine
    try:
        cls = _ENGINES[engine]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown engine {engine!r}; known: {sorted(ENGINE_NAMES)}"
        ) from None
    return cls()
