"""Adversarial worst-case search.

The lemma bounds quantify over every initial configuration, port
numbering and fair schedule; random simulation samples the easy middle
of that space.  This module searches for *hard* instances: randomized
search over (port numbering, corrupted start, scheduler seed) tracking
the worst rounds-to-silence found.  The result is a certified lower
bound on the protocol's true worst case — useful for probing how much
slack the Δ·#C and (Δ+1)n+2 bounds carry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.protocol import Protocol
from ..core.scheduler import Scheduler
from ..core.simulator import Simulator
from ..graphs.topology import Network, relabel_ports_randomly


@dataclass
class AdversarialResult:
    """The hardest instance found by the search."""

    worst_rounds: int
    trials: int
    ports_seed: Optional[int]
    run_seed: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"worst {self.worst_rounds} rounds over {self.trials} trials "
            f"(ports_seed={self.ports_seed}, run_seed={self.run_seed})"
        )


def search_worst_case(
    protocol_factory: Callable[[Network], Protocol],
    network: Network,
    trials: int = 50,
    seed: int = 0,
    relabel_ports: bool = True,
    scheduler_factory: Optional[Callable[[], Scheduler]] = None,
    max_rounds: int = 100_000,
) -> AdversarialResult:
    """Randomized search for slow-stabilizing instances.

    Each trial draws a fresh port numbering (optional), a fresh
    corrupted start and scheduler randomness, runs to silence and keeps
    the maximum round count.  ``protocol_factory`` receives the
    (possibly relabeled) network so protocols that precompute per-port
    structure stay consistent.
    """
    meta_rng = random.Random(seed)
    worst = AdversarialResult(worst_rounds=-1, trials=trials,
                              ports_seed=None, run_seed=0)
    for trial in range(trials):
        ports_seed = meta_rng.randrange(2**31) if relabel_ports else None
        net = (
            relabel_ports_randomly(network, random.Random(ports_seed))
            if relabel_ports
            else network
        )
        run_seed = meta_rng.randrange(2**31)
        scheduler = scheduler_factory() if scheduler_factory else None
        sim = Simulator(protocol_factory(net), net, scheduler=scheduler,
                        seed=run_seed)
        report = sim.run_until_silent(max_rounds=max_rounds)
        if report.rounds > worst.worst_rounds:
            worst = AdversarialResult(
                worst_rounds=report.rounds,
                trials=trials,
                ports_seed=ports_seed,
                run_seed=run_seed,
            )
    return worst
