"""Bound calculators, space formulas and stability measurement."""

from .adversarial import AdversarialResult, search_worst_case
from .bounds import (
    coloring_palette_size,
    matching_round_bound,
    matching_stability_bound,
    max_dominators_on_longest_path,
    min_maximal_matching_size,
    mis_round_bound,
    mis_stability_bound,
)
from .space import (
    SpaceReport,
    coloring_communication_bits,
    coloring_local_bits,
    coloring_space_bits,
    coloring_space_report,
    matching_communication_bits,
    measured_space_bits,
    mis_communication_bits,
    traditional_coloring_communication_bits,
    traditional_mis_communication_bits,
)
from .convergence import (
    ConvergenceStudy,
    compare_schedulers,
    conflict_decay_timeline,
    run_convergence_study,
)
from .stability import StabilityMeasurement, measure_stability

__all__ = [
    "AdversarialResult",
    "ConvergenceStudy",
    "SpaceReport",
    "StabilityMeasurement",
    "compare_schedulers",
    "search_worst_case",
    "conflict_decay_timeline",
    "run_convergence_study",
    "coloring_communication_bits",
    "coloring_local_bits",
    "coloring_palette_size",
    "coloring_space_bits",
    "coloring_space_report",
    "matching_communication_bits",
    "matching_round_bound",
    "matching_stability_bound",
    "max_dominators_on_longest_path",
    "measure_stability",
    "measured_space_bits",
    "min_maximal_matching_size",
    "mis_communication_bits",
    "mis_round_bound",
    "mis_stability_bound",
    "traditional_coloring_communication_bits",
    "traditional_mis_communication_bits",
]
