"""Empirical ♦-(x, k)-stability measurement (Definitions 7–9).

Run a protocol to silence, arm suffix read-set tracking, keep executing,
and count the processes whose accumulated suffix read-set stays within
k neighbors.  For MIS the eventually-1-stable processes are exactly the
dominated ones (they freeze on their Dominator); for MATCHING they are
the married ones (they watch their spouse).  The theorems' lower bounds
(⌊(L_max+1)/2⌋ and 2⌈m/(2Δ−1)⌉) are compared against the measured x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set

from ..core.protocol import Protocol
from ..core.scheduler import Scheduler
from ..core.simulator import Simulator
from ..graphs.topology import Network

ProcessId = Hashable


@dataclass
class StabilityMeasurement:
    """Outcome of one stability run."""

    protocol: str
    n: int
    k: int
    #: processes whose suffix read-set stayed within k neighbors
    stable_processes: List[ProcessId]
    #: full suffix read-sets (ports) per process
    suffix_read_sets: Dict[ProcessId, Set[int]]
    rounds_to_silence: int
    suffix_rounds: int

    @property
    def x(self) -> int:
        """The measured x of ♦-(x, k)-stability."""
        return len(self.stable_processes)


def measure_stability(
    protocol: Protocol,
    network: Network,
    scheduler: Optional[Scheduler] = None,
    seed: int = 0,
    k: int = 1,
    suffix_rounds: int = 25,
    max_rounds: int = 50_000,
) -> StabilityMeasurement:
    """Run to silence, then measure suffix read-sets over extra rounds.

    ``suffix_rounds`` must be ≥ a few Δ so round-robin scanners have
    time to reveal their full read-set; the defaults are generous for
    the graph sizes used in tests and benches.
    """
    sim = Simulator(protocol, network, scheduler=scheduler, seed=seed)
    report = sim.run_until_silent(max_rounds=max_rounds)
    suffix_sets = sim.measure_suffix_stability(extra_rounds=suffix_rounds)
    stable = [p for p in network.processes if len(suffix_sets[p]) <= k]
    return StabilityMeasurement(
        protocol=protocol.name,
        n=network.n,
        k=k,
        stable_processes=stable,
        suffix_read_sets=suffix_sets,
        rounds_to_silence=report.rounds,
        suffix_rounds=suffix_rounds,
    )
