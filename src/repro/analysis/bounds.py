"""Closed-form bounds from the paper.

Every bench prints these next to the measured value, so the shape of
each theorem's claim is checked mechanically:

* Lemma 4  — MIS reaches silence within Δ·#C rounds.
* Lemma 9  — MATCHING reaches silence within (Δ+1)·n + 2 rounds.
* Theorem 6 — MIS is ♦-(⌊(L_max+1)/2⌋, 1)-stable.
* Theorem 8 — MATCHING is ♦-(2·⌈m/(2Δ−1)⌉, 1)-stable, via Biedl et al.'s
  ⌈m/(2Δ−1)⌉ lower bound on any maximal matching.
"""

from __future__ import annotations

import math
from typing import Tuple

from ..graphs.coloring import Coloring, color_count
from ..graphs.paths import mis_stability_lower_bound
from ..graphs.topology import Network


def coloring_palette_size(network: Network) -> int:
    """Δ+1 — the minimal palette for arbitrary networks (§5.1)."""
    return network.max_degree + 1


def mis_round_bound(network: Network, colors: Coloring) -> int:
    """Lemma 4: silence within Δ·#C rounds."""
    return network.max_degree * color_count(colors)


def matching_round_bound(network: Network) -> int:
    """Lemma 9: silence within (Δ+1)·n + 2 rounds."""
    return (network.max_degree + 1) * network.n + 2


def min_maximal_matching_size(network: Network) -> int:
    """Biedl et al. [6]: any maximal matching has ≥ ⌈m/(2Δ−1)⌉ edges."""
    delta = network.max_degree
    return math.ceil(network.m / (2 * delta - 1))


def matching_stability_bound(network: Network) -> int:
    """Theorem 8: at least 2·⌈m/(2Δ−1)⌉ eventually-1-stable processes."""
    return 2 * min_maximal_matching_size(network)


def mis_stability_bound(network: Network, **kwargs) -> Tuple[int, bool]:
    """Theorem 6: at least ⌊(L_max+1)/2⌋ eventually-1-stable processes.

    Returns ``(bound, exact)`` — ``exact`` is False when L_max came from
    the heuristic (then the returned value is a valid but possibly
    weaker bound).
    """
    return mis_stability_lower_bound(network, **kwargs)


def max_dominators_on_longest_path(l_max: int) -> int:
    """Theorem 6's counting step: a stabilized path of L_max edges holds
    at most ⌈(L_max+1)/2⌉ Dominators."""
    return math.ceil((l_max + 1) / 2)
