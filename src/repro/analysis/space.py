"""Space and communication complexity formulas (paper §3.2).

Definition 5 measures, per process, the maximal amount of memory read
from neighbors in a step; Definition 6 adds the local memory footprint.
The paper's worked example: protocol COLORING reads one color per step
(log(Δ+1) bits) against Δ·log(Δ+1) for a traditional full-scan coloring,
and stores one color plus one pointer (2·log(Δ+1) + log(δ.p) total
space).  These helpers compute the formulas so benches can print
paper-vs-measured side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable

from ..graphs.topology import Network

ProcessId = Hashable


def _log2(x: int) -> float:
    return math.log2(x) if x > 1 else 0.0


# ----------------------------------------------------------------------
# COLORING (§3.2 examples)
# ----------------------------------------------------------------------
def coloring_communication_bits(delta: int) -> float:
    """log(Δ+1) — one color read per step."""
    return _log2(delta + 1)


def traditional_coloring_communication_bits(delta: int) -> float:
    """Δ·log(Δ+1) — a full neighborhood scan per step."""
    return delta * _log2(delta + 1)


def coloring_local_bits(delta: int, degree: int) -> float:
    """log(Δ+1) for C plus log(δ.p) for cur."""
    return _log2(delta + 1) + _log2(degree)


def coloring_space_bits(delta: int, degree: int) -> float:
    """Definition 6: 2·log(Δ+1) + log(δ.p)."""
    return coloring_local_bits(delta, degree) + coloring_communication_bits(delta)


# ----------------------------------------------------------------------
# MIS
# ----------------------------------------------------------------------
def mis_communication_bits(color_domain_size: int) -> float:
    """One S flag (1 bit) plus one color constant per step."""
    return 1.0 + _log2(color_domain_size)


def traditional_mis_communication_bits(delta: int, color_domain_size: int) -> float:
    return delta * mis_communication_bits(color_domain_size)


# ----------------------------------------------------------------------
# MATCHING
# ----------------------------------------------------------------------
def matching_communication_bits(degree_of_neighbor: int, color_domain_size: int) -> float:
    """One M bit, one PR pointer (log(δ.q+1)) and one color per step."""
    return 1.0 + _log2(degree_of_neighbor + 1) + _log2(color_domain_size)


# ----------------------------------------------------------------------
# Whole-network summaries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpaceReport:
    """Formula-level space accounting for one protocol on one network."""

    protocol: str
    per_process_bits: Dict[ProcessId, float]

    @property
    def max_bits(self) -> float:
        return max(self.per_process_bits.values())

    @property
    def total_bits(self) -> float:
        return sum(self.per_process_bits.values())


def coloring_space_report(network: Network) -> SpaceReport:
    delta = network.max_degree
    return SpaceReport(
        "COLORING",
        {
            p: coloring_space_bits(delta, network.degree(p))
            for p in network.processes
        },
    )


def measured_space_bits(protocol, network) -> SpaceReport:
    """Space complexity straight from the declared variable domains —
    the ground truth the formulas are checked against in tests."""
    per_process: Dict[ProcessId, float] = {}
    specs_of = protocol.specs_of(network)
    for p in network.processes:
        local = sum(
            spec.domain.bits for spec in specs_of[p] if spec.kind != "const"
        )
        # Definition 6 adds the communication complexity: the widest
        # single-neighbor read the protocol can perform.  For the
        # 1-efficient protocols this is the full comm state of one
        # neighbor (vars + constants).
        neighbor_read = max(
            (
                sum(
                    spec.domain.bits
                    for spec in specs_of[q]
                    if spec.readable_by_neighbors
                )
                for q in network.neighbors(p)
            ),
            default=0.0,
        )
        per_process[p] = local + neighbor_read
    return SpaceReport(protocol.name, per_process)
