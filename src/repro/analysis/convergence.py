"""Empirical convergence statistics.

Aggregates many seeded runs into the distributional picture one needs
to compare protocols or schedulers fairly: mean/percentile rounds to
silence, worst case, and the conflict-decay timeline Lemma 2's
potential argument describes qualitatively.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.protocol import Protocol
from ..core.scheduler import Scheduler
from ..core.simulator import Simulator
from ..graphs.topology import Network


@dataclass
class ConvergenceStudy:
    """Rounds-to-silence distribution over many corrupted starts."""

    protocol: str
    n: int
    rounds: List[int] = field(default_factory=list)
    steps: List[int] = field(default_factory=list)

    def percentile(self, q: float) -> float:
        """Inclusive-interpolation percentile of rounds-to-silence."""
        if not self.rounds:
            raise ValueError("empty study")
        data = sorted(self.rounds)
        if len(data) == 1:
            return float(data[0])
        idx = (len(data) - 1) * q
        lo, hi = math.floor(idx), math.ceil(idx)
        if lo == hi:
            return float(data[lo])
        frac = idx - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    @property
    def mean_rounds(self) -> float:
        return statistics.fmean(self.rounds)

    @property
    def max_rounds(self) -> int:
        return max(self.rounds)

    @property
    def median_rounds(self) -> float:
        return statistics.median(self.rounds)


def run_convergence_study(
    protocol_factory: Callable[[], Protocol],
    network: Network,
    seeds: Sequence[int],
    scheduler_factory: Optional[Callable[[], Scheduler]] = None,
    max_rounds: int = 100_000,
) -> ConvergenceStudy:
    """One silent run per seed; fresh protocol/scheduler instances each."""
    study = ConvergenceStudy(protocol_factory().name, network.n)
    for seed in seeds:
        scheduler = scheduler_factory() if scheduler_factory else None
        sim = Simulator(protocol_factory(), network, scheduler=scheduler, seed=seed)
        report = sim.run_until_silent(max_rounds=max_rounds)
        study.rounds.append(report.rounds)
        study.steps.append(report.steps)
    return study


def conflict_decay_timeline(
    protocol: Protocol,
    network: Network,
    potential: Callable[[Network, object], int],
    seed: int = 0,
    scheduler: Optional[Scheduler] = None,
    max_rounds: int = 10_000,
) -> List[int]:
    """Per-round potential values until silence (e.g. Lemma 2's Conflit).

    The returned series starts with the corrupted configuration's value
    and ends at the first silent round; for COLORING it must end at 0.
    """
    sim = Simulator(protocol, network, scheduler=scheduler, seed=seed)
    series = [potential(network, sim.config)]
    rounds_done = 0
    while rounds_done < max_rounds:
        record = sim.step()
        if record.closed_round:
            rounds_done += 1
            series.append(potential(network, sim.config))
            if sim.is_silent():
                break
    return series


def compare_schedulers(
    protocol_factory: Callable[[], Protocol],
    network: Network,
    scheduler_factories: Dict[str, Callable[[], Scheduler]],
    seeds: Sequence[int],
    max_rounds: int = 100_000,
) -> Dict[str, ConvergenceStudy]:
    """The scheduler ablation: same protocol/network under each daemon."""
    return {
        name: run_convergence_study(
            protocol_factory, network, seeds,
            scheduler_factory=factory, max_rounds=max_rounds,
        )
        for name, factory in scheduler_factories.items()
    }
