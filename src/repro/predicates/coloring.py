"""The vertex coloring predicate (paper §5.1).

True iff for every process p and every neighbor q, ``color.p ≠ color.q``.
For protocol COLORING the color output is the communication variable
``C``; the helpers below also report the conflict structure used by
Lemma 2's potential-function argument.
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

from ..core.state import Configuration
from ..graphs.topology import Network

ProcessId = Hashable


def coloring_predicate(
    network: Network, config: Configuration, var: str = "C"
) -> bool:
    """The vertex coloring predicate over communication variable ``var``."""
    return all(
        config.get(p, var) != config.get(q, var) for p, q in network.edges()
    )


def conflicting_edges(
    network: Network, config: Configuration, var: str = "C"
) -> List[Tuple[ProcessId, ProcessId]]:
    """Edges whose endpoints share a color."""
    return [
        (p, q)
        for p, q in network.edges()
        if config.get(p, var) == config.get(q, var)
    ]


def conflict_count(
    network: Network, config: Configuration, var: str = "C"
) -> int:
    """Lemma 2's potential ``Conflit(γ)``: number of processes with at
    least one same-colored neighbor."""
    in_conflict = set()
    for p, q in conflicting_edges(network, config, var):
        in_conflict.add(p)
        in_conflict.add(q)
    return len(in_conflict)


def colors_used(network: Network, config: Configuration, var: str = "C") -> int:
    """Number of distinct colors in the configuration."""
    return len({config.get(p, var) for p in network.processes})
