"""The maximal independent set predicate (paper §5.2).

Legitimate configurations of protocol MIS satisfy both:

1. independence — every Dominator has only dominated neighbors;
2. maximality — every dominated process has a Dominator neighbor.
"""

from __future__ import annotations

from typing import Hashable, List, Set

from ..core.state import Configuration
from ..graphs.topology import Network

ProcessId = Hashable

DOMINATOR = "Dominator"
DOMINATED = "dominated"


def dominators(
    network: Network, config: Configuration, var: str = "S"
) -> Set[ProcessId]:
    """The set {p : S.p = Dominator} (the claimed independent set)."""
    return {p for p in network.processes if config.get(p, var) == DOMINATOR}


def is_independent_set(network: Network, members: Set[ProcessId]) -> bool:
    """No two members are neighbors."""
    return all(
        not (p in members and q in members) for p, q in network.edges()
    )


def is_maximal_independent_set(network: Network, members: Set[ProcessId]) -> bool:
    """Independent and not extendable by any process."""
    if not is_independent_set(network, members):
        return False
    for p in network.processes:
        if p not in members and not any(q in members for q in network.neighbors(p)):
            return False
    return True


def mis_predicate(network: Network, config: Configuration, var: str = "S") -> bool:
    """The MIS predicate of §5.2 over the S communication variable."""
    return is_maximal_independent_set(network, dominators(network, config, var))


def independence_violations(
    network: Network, config: Configuration, var: str = "S"
) -> List:
    """Edges joining two Dominators (condition 1 failures)."""
    doms = dominators(network, config, var)
    return [(p, q) for p, q in network.edges() if p in doms and q in doms]


def maximality_violations(
    network: Network, config: Configuration, var: str = "S"
) -> List[ProcessId]:
    """Dominated processes with no Dominator neighbor (condition 2 failures)."""
    doms = dominators(network, config, var)
    return [
        p
        for p in network.processes
        if p not in doms and not any(q in doms for q in network.neighbors(p))
    ]
