"""The maximal matching predicate (paper §5.3).

Protocol MATCHING marks the edge {p, q} as matched when
``PRmarried(p) ∧ PR.p = q`` — i.e. the two PR pointers designate each
other.  The predicate is true when the marked edge set is a maximal
matching of the network.
"""

from __future__ import annotations

from typing import Hashable, List, Set, Tuple

from ..core.state import Configuration
from ..graphs.topology import Network

ProcessId = Hashable
Edge = Tuple[ProcessId, ProcessId]


def pr_target(network: Network, config: Configuration, p: ProcessId):
    """The neighbor PR.p points at (PR values are ports; 0 = free)."""
    port = config.get(p, "PR")
    if port == 0:
        return None
    return network.neighbor_at(p, port)


def is_married(network: Network, config: Configuration, p: ProcessId) -> bool:
    """PRmarried without the cur restriction: p and PR.p point at each
    other (the configuration-level notion of a matched process)."""
    q = pr_target(network, config, p)
    if q is None:
        return False
    return pr_target(network, config, q) == p


def matched_edges(network: Network, config: Configuration) -> List[Edge]:
    """Edges {p,q} whose endpoints' PR pointers designate each other."""
    edges = []
    for p, q in network.edges():
        if (
            pr_target(network, config, p) == q
            and pr_target(network, config, q) == p
        ):
            edges.append((p, q))
    return edges


def is_matching(network: Network, edges: List[Edge]) -> bool:
    """No two edges share an endpoint."""
    seen: Set[ProcessId] = set()
    for p, q in edges:
        if p in seen or q in seen:
            return False
        seen.add(p)
        seen.add(q)
    return True


def is_maximal_matching(network: Network, edges: List[Edge]) -> bool:
    """A matching not extendable by any edge of the network."""
    if not is_matching(network, edges):
        return False
    covered: Set[ProcessId] = set()
    for p, q in edges:
        covered.add(p)
        covered.add(q)
    return all(p in covered or q in covered for p, q in network.edges())


def matching_predicate(network: Network, config: Configuration) -> bool:
    """The maximal matching predicate over the PR pointers."""
    return is_maximal_matching(network, matched_edges(network, config))


def married_processes(network: Network, config: Configuration) -> Set[ProcessId]:
    """Processes incident to a matched edge."""
    covered: Set[ProcessId] = set()
    for p, q in matched_edges(network, config):
        covered.add(p)
        covered.add(q)
    return covered
