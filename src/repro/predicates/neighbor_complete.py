"""Neighbor-completeness (Definition 10) checking.

A silent self-stabilizing protocol is *neighbor-complete* for predicate
P when every process p has a communication state αp supported by some
silent configuration such that, for each neighbor q, there is a
silent-supported communication state αq with (αp, αq) jointly
inconsistent — every configuration exhibiting the pair violates P.
Theorem 1 and 2's impossibility results apply exactly to such protocols,
and the paper notes COLORING, MIS and MATCHING all qualify.

Two checkers are provided:

* :func:`enumerate_silent_configurations` — exhaustive enumeration of
  all configurations of a *small* network, filtered through the sound
  silence checker.  Exact, exponential; meant for gadget-sized graphs.
* :func:`find_neighbor_completeness_witness` — samples silent
  configurations by running the protocol to silence from random
  corrupted starts, then searches the collected communication states
  for a Definition-10 witness.  ``pair_violates`` supplies the
  problem-specific "every configuration with this pair violates P"
  fact (a local argument for all three problems in the paper).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Set, Tuple

from ..core.protocol import Protocol
from ..core.silence import is_silent
from ..core.simulator import Simulator
from ..core.state import Configuration
from ..graphs.topology import Network

ProcessId = Hashable
CommState = Tuple[Tuple[str, object], ...]

# (network, p, αp, q, αq) -> True when the pair alone falsifies P
PairViolation = Callable[[Network, ProcessId, CommState, ProcessId, CommState], bool]


def enumerate_silent_configurations(
    protocol: Protocol,
    network: Network,
    limit: Optional[int] = None,
) -> Iterator[Configuration]:
    """All silent configurations of a small network, by brute force.

    Iterates the full cross product of every variable domain (constants
    pinned to their declared values) and yields the configurations the
    silence checker certifies.  Guard with ``limit`` for safety.
    """
    specs_of = protocol.specs_of(network)
    processes = network.processes
    per_process_choices = []
    for p in processes:
        consts = protocol.constant_values(network, p)
        names = []
        domains = []
        for spec in specs_of[p]:
            names.append(spec.name)
            if spec.kind == "const":
                domains.append([consts[spec.name]])
            else:
                domains.append(list(spec.domain))
        per_process_choices.append((p, names, domains))

    def states_for(p, names, domains):
        for combo in itertools.product(*domains):
            yield dict(zip(names, combo))

    produced = 0
    iterators = [
        list(states_for(p, names, domains))
        for p, names, domains in per_process_choices
    ]
    for assignment in itertools.product(*iterators):
        config = Configuration(
            {p: state for (p, _n, _d), state in zip(per_process_choices, assignment)}
        )
        if is_silent(protocol, network, config):
            yield config
            produced += 1
            if limit is not None and produced >= limit:
                return


@dataclass
class NeighborCompletenessWitness:
    """A Definition-10 witness: per process, the α states found."""

    alpha: Dict[ProcessId, CommState]
    #: per process, per neighbor, the conflicting neighbor state
    conflicts: Dict[ProcessId, Dict[ProcessId, CommState]]

    @property
    def complete(self) -> bool:
        return all(self.conflicts[p] for p in self.alpha) and bool(self.alpha)


def collect_silent_comm_states(
    protocol: Protocol,
    network: Network,
    samples: int = 20,
    seed: int = 0,
    max_rounds: int = 5_000,
) -> Dict[ProcessId, Set[CommState]]:
    """Communication states observed in sampled silent configurations."""
    specs_of = protocol.specs_of(network)
    observed: Dict[ProcessId, Set[CommState]] = {p: set() for p in network.processes}
    for i in range(samples):
        sim = Simulator(protocol, network, seed=seed + i)
        sim.run_until_silent(max_rounds=max_rounds)
        for p in network.processes:
            observed[p].add(sim.config.comm_state_of(p, specs_of[p]))
    return observed


def find_neighbor_completeness_witness(
    protocol: Protocol,
    network: Network,
    pair_violates: PairViolation,
    samples: int = 20,
    seed: int = 0,
    max_rounds: int = 5_000,
) -> Optional[NeighborCompletenessWitness]:
    """Search sampled silent configurations for a Definition-10 witness.

    Returns a witness covering *every* process (each p has an αp and a
    conflicting silent αq for each neighbor), or None if the samples did
    not expose one.  A returned witness is sound: every α state really
    occurs in a silent configuration, and ``pair_violates`` certifies
    the joint violation.
    """
    observed = collect_silent_comm_states(
        protocol, network, samples=samples, seed=seed, max_rounds=max_rounds
    )
    alpha: Dict[ProcessId, CommState] = {}
    conflicts: Dict[ProcessId, Dict[ProcessId, CommState]] = {}
    for p in network.processes:
        found = None
        for alpha_p in observed[p]:
            per_neighbor: Dict[ProcessId, CommState] = {}
            for q in network.neighbors(p):
                match = next(
                    (
                        alpha_q
                        for alpha_q in observed[q]
                        if pair_violates(network, p, alpha_p, q, alpha_q)
                    ),
                    None,
                )
                if match is None:
                    break
                per_neighbor[q] = match
            else:
                found = (alpha_p, per_neighbor)
                break
        if found is None:
            return None
        alpha[p], conflicts[p] = found
    return NeighborCompletenessWitness(alpha, conflicts)


# ----------------------------------------------------------------------
# Problem-specific pair violations (local arguments from the paper)
# ----------------------------------------------------------------------
def coloring_pair_violates(
    network: Network, p: ProcessId, alpha_p: CommState, q: ProcessId, alpha_q: CommState
) -> bool:
    """Two neighbors with equal colors violate vertex coloring outright."""
    cp = dict(alpha_p)["C"]
    cq = dict(alpha_q)["C"]
    return cp == cq


def mis_pair_violates(
    network: Network, p: ProcessId, alpha_p: CommState, q: ProcessId, alpha_q: CommState
) -> bool:
    """Two neighboring Dominators violate independence outright."""
    return dict(alpha_p)["S"] == "Dominator" and dict(alpha_q)["S"] == "Dominator"


def matching_pair_violates(
    network: Network, p: ProcessId, alpha_p: CommState, q: ProcessId, alpha_q: CommState
) -> bool:
    """Two neighboring *free* processes (PR = 0) violate maximality: the
    edge {p, q} could extend any matching, whatever the rest does."""
    sp = dict(alpha_p)
    sq = dict(alpha_q)
    return sp["PR"] == 0 and sq["PR"] == 0
