"""Legitimacy predicates and the neighbor-completeness checker."""

from .coloring import (
    coloring_predicate,
    colors_used,
    conflict_count,
    conflicting_edges,
)
from .matching import (
    is_married,
    is_matching,
    is_maximal_matching,
    matched_edges,
    matching_predicate,
    married_processes,
    pr_target,
)
from .mis import (
    DOMINATED,
    DOMINATOR,
    dominators,
    independence_violations,
    is_independent_set,
    is_maximal_independent_set,
    maximality_violations,
    mis_predicate,
)
from .neighbor_complete import (
    NeighborCompletenessWitness,
    collect_silent_comm_states,
    coloring_pair_violates,
    enumerate_silent_configurations,
    find_neighbor_completeness_witness,
    matching_pair_violates,
    mis_pair_violates,
)

__all__ = [
    "DOMINATED",
    "DOMINATOR",
    "NeighborCompletenessWitness",
    "collect_silent_comm_states",
    "coloring_pair_violates",
    "coloring_predicate",
    "colors_used",
    "conflict_count",
    "conflicting_edges",
    "dominators",
    "enumerate_silent_configurations",
    "find_neighbor_completeness_witness",
    "independence_violations",
    "is_independent_set",
    "is_married",
    "is_matching",
    "is_maximal_independent_set",
    "is_maximal_matching",
    "matched_edges",
    "matching_pair_violates",
    "matching_predicate",
    "married_processes",
    "maximality_violations",
    "mis_pair_violates",
    "mis_predicate",
    "pr_target",
]
