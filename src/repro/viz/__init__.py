"""ASCII visualization helpers (no plotting dependencies)."""

from .ascii import (
    degree_table,
    histogram,
    render_chain_colors,
    render_coloring,
    render_matching,
    render_mis,
    render_network,
    sparkline,
)

__all__ = [
    "degree_table",
    "histogram",
    "render_chain_colors",
    "render_coloring",
    "render_matching",
    "render_mis",
    "render_network",
    "sparkline",
]
