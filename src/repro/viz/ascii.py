"""Dependency-free ASCII rendering of networks and configurations.

Terminal-friendly views for examples and debugging: node tables with
protocol outputs, adjacency summaries, sparklines and histograms for
convergence series.  Nothing here is required by the core library.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence

from ..core.state import Configuration
from ..graphs.topology import Network
from ..predicates.matching import matched_edges
from ..predicates.mis import DOMINATOR

ProcessId = Hashable

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def render_network(network: Network, max_rows: int = 30) -> str:
    """Adjacency summary, one process per line."""
    lines = [f"n={network.n} m={network.m} Δ={network.max_degree}"]
    for i, p in enumerate(network.processes):
        if i >= max_rows:
            lines.append(f"… ({network.n - max_rows} more)")
            break
        neighbors = ", ".join(repr(q) for q in network.neighbors(p))
        lines.append(f"  {p!r} (δ={network.degree(p)}): {neighbors}")
    return "\n".join(lines)


def render_coloring(network: Network, config: Configuration, var: str = "C") -> str:
    """Colors per process, flagging conflicting edges."""
    lines = ["colors:"]
    for p in network.processes:
        clashes = [
            q for q in network.neighbors(p)
            if config.get(q, var) == config.get(p, var)
        ]
        flag = f"  !! clashes {clashes}" if clashes else ""
        lines.append(f"  {p!r}: color {config.get(p, var)}{flag}")
    return "\n".join(lines)


def render_mis(network: Network, config: Configuration, var: str = "S") -> str:
    """Dominators marked ●, dominated ○ (Figure 9's convention)."""
    lines = ["independent set (●=Dominator ○=dominated):"]
    for p in network.processes:
        mark = "●" if config.get(p, var) == DOMINATOR else "○"
        lines.append(f"  {mark} {p!r}")
    return "\n".join(lines)


def render_matching(network: Network, config: Configuration) -> str:
    """Matched pairs (Figure 11's bold edges) plus free processes."""
    edges = matched_edges(network, config)
    covered = {p for e in edges for p in e}
    lines = ["matching (bold edges of Fig. 11):"]
    for p, q in edges:
        lines.append(f"  {p!r} ═══ {q!r}")
    free = [p for p in network.processes if p not in covered]
    if free:
        lines.append(f"  free: {', '.join(repr(p) for p in free)}")
    return "\n".join(lines)


def render_chain_colors(network: Network, config: Configuration, var: str = "C") -> str:
    """Compact one-line view for chains/rings: 2-3-1-2-1."""
    return "-".join(str(config.get(p, var)) for p in network.processes)


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline of a series (e.g. conflict decay)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def histogram(values: Sequence[float], bins: int = 10, width: int = 40) -> str:
    """Horizontal ASCII histogram (used by convergence studies)."""
    if not values:
        return "(no data)"
    lo, hi = min(values), max(values)
    if hi == lo:
        return f"{lo:g}: {'#' * width} ({len(values)})"
    step = (hi - lo) / bins
    counts = [0] * bins
    for v in values:
        idx = min(int((v - lo) / step), bins - 1)
        counts[idx] += 1
    peak = max(counts)
    lines: List[str] = []
    for i, count in enumerate(counts):
        left = lo + i * step
        bar = "#" * max(1 if count else 0, round(count / peak * width))
        lines.append(f"{left:10.1f} | {bar} {count}")
    return "\n".join(lines)


def degree_table(network: Network) -> Dict[int, int]:
    """Degree histogram of the topology (δ -> count)."""
    table: Dict[int, int] = {}
    for p in network.processes:
        table[network.degree(p)] = table.get(network.degree(p), 0) + 1
    return dict(sorted(table.items()))
