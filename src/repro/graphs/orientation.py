"""Color-induced dag orientations (Theorem 4).

Given a proper coloring with an order ``≺`` on colors, orienting every
edge from the smaller to the larger color yields a directed acyclic
graph.  This is why a local coloring suffices as the symmetry-breaking
substrate for protocols MIS and MATCHING.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Tuple

import networkx as nx

from ..core.exceptions import TopologyError
from .coloring import Coloring, assert_local_identifiers
from .topology import Network

ProcessId = Hashable


def color_orientation(network: Network, colors: Coloring) -> nx.DiGraph:
    """The orientation E' = {(p,q) : p~q and C.p ≺ C.q} of Theorem 4."""
    assert_local_identifiers(network, colors)
    digraph = nx.DiGraph()
    digraph.add_nodes_from(network.processes)
    for p, q in network.edges():
        if colors[p] < colors[q]:
            digraph.add_edge(p, q)
        else:
            digraph.add_edge(q, p)
    return digraph


def verify_theorem4(network: Network, colors: Coloring) -> bool:
    """Check that the color orientation is acyclic (Theorem 4)."""
    return nx.is_directed_acyclic_graph(color_orientation(network, colors))


def orientation_successors(
    network: Network, colors: Coloring
) -> Dict[ProcessId, FrozenSet[ProcessId]]:
    """``Succ.p`` per process under the color orientation."""
    digraph = color_orientation(network, colors)
    return {p: frozenset(digraph.successors(p)) for p in network.processes}


def local_minima(network: Network, colors: Coloring) -> Tuple[ProcessId, ...]:
    """Processes whose color is smaller than every neighbor's.

    These are the sources of the color dag; Lemma 4's induction starts
    from them (rank R(c) = 0).
    """
    assert_local_identifiers(network, colors)
    return tuple(
        p
        for p in network.processes
        if all(colors[p] < colors[q] for q in network.neighbors(p))
    )


def color_rank(colors: Coloring) -> Dict[ProcessId, int]:
    """R(C.p) of Notation 1: how many used colors are strictly smaller."""
    used = sorted(set(colors.values()))
    rank = {c: i for i, c in enumerate(used)}
    return {p: rank[c] for p, c in colors.items()}
