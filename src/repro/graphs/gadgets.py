"""The paper's gadget topologies (Figures 1, 2, 3, 6, 9, 11).

These are the concrete networks used by the impossibility constructions
(Theorems 1 and 2) and the tight lower-bound examples for the stability
theorems (Theorems 6 and 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Set, Tuple

import networkx as nx

from ..core.exceptions import TopologyError
from .topology import Network

ProcessId = Hashable


# ----------------------------------------------------------------------
# Theorem 1 gadgets (anonymous networks)
# ----------------------------------------------------------------------
def theorem1_chain() -> Network:
    """The anonymous 5-process chain of Figure 1: p1—p2—p3—p4—p5.

    Process ids are 1..5 to match the paper's naming.
    """
    g = nx.Graph()
    g.add_edges_from([(1, 2), (2, 3), (3, 4), (4, 5)])
    return Network(g)


def theorem1_spliced_chain() -> Network:
    """The 7-process chain of Figure 1(c): p'1—…—p'7."""
    g = nx.Graph()
    g.add_edges_from([(i, i + 1) for i in range(1, 7)])
    return Network(g)


def theorem1_gadget(delta: int) -> Network:
    """The Δ-generalisation (Figure 2): Δ²+1 nodes.

    A center of degree Δ linked to Δ middle nodes of degree Δ, each
    middle node carrying Δ−1 pendants.  Node ids: ``"c"`` (center),
    ``("m", i)`` (middles), ``("l", i, j)`` (pendants).
    """
    if delta < 2:
        raise TopologyError("theorem1_gadget needs Δ ≥ 2")
    g = nx.Graph()
    for i in range(delta):
        g.add_edge("c", ("m", i))
        for j in range(delta - 1):
            g.add_edge(("m", i), ("l", i, j))
    net = Network(g)
    assert net.n == delta * delta + 1
    assert net.max_degree == delta
    return net


# ----------------------------------------------------------------------
# Theorem 2 gadgets (rooted, dag-oriented networks)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OrientedNetwork:
    """A network plus a dag orientation and a distinguished root.

    ``succ[p]`` is the paper's ``Succ.p`` — the set of neighbors the
    dag-orientation directs p toward.  The directed graph over these
    edges must be acyclic (Definition 11).
    """

    network: Network
    succ: Dict[ProcessId, FrozenSet[ProcessId]]
    root: ProcessId

    def __post_init__(self) -> None:
        digraph = nx.DiGraph()
        digraph.add_nodes_from(self.network.processes)
        for p, targets in self.succ.items():
            for q in targets:
                if not self.network.are_neighbors(p, q):
                    raise TopologyError(f"orientation edge {p!r}->{q!r} not in graph")
                digraph.add_edge(p, q)
        if not nx.is_directed_acyclic_graph(digraph):
            raise TopologyError("orientation is not a dag")
        if self.root not in self.network:
            raise TopologyError("root is not a process of the network")

    def sources(self) -> Set[ProcessId]:
        """Processes with no incoming oriented edge."""
        incoming: Set[ProcessId] = set()
        for targets in self.succ.values():
            incoming.update(targets)
        return {p for p in self.network.processes if p not in incoming}

    def sinks(self) -> Set[ProcessId]:
        """Processes with no outgoing oriented edge."""
        return {
            p for p in self.network.processes if not self.succ.get(p, frozenset())
        }


def theorem2_network() -> OrientedNetwork:
    """The rooted dag-oriented 6-cycle of Figure 3 (reconstruction).

    Topology: the cycle ``p1—p2—p5—p4—p6—p3—p1`` with orientation
    ``p1→p2, p2→p5, p4→p5, p4→p6, p3→p6, p1→p3`` and root ``p1``.
    This satisfies every structural fact the Theorem 2 proof uses:
    Γ.p2 = {p1, p5}; p6's two neighbors both point *at* p6 (so its local
    orientation cannot break the symmetry); p1 and p4 are sources; p5
    and p6 are sinks; Δ = 2.  See DESIGN.md §4 for the reconstruction
    argument (the original figure is an image).
    """
    g = nx.Graph()
    g.add_edges_from([(1, 2), (2, 5), (5, 4), (4, 6), (6, 3), (3, 1)])
    succ = {
        1: frozenset({2, 3}),
        2: frozenset({5}),
        3: frozenset({6}),
        4: frozenset({5, 6}),
        5: frozenset(),
        6: frozenset(),
    }
    return OrientedNetwork(Network(g), succ, root=1)


def theorem2_gadget(delta: int) -> OrientedNetwork:
    """The Δ-generalisation (Figure 6): Δ−2 pendants added per process.

    Pendant edges are oriented to preserve the proof's structure:
    p1 and p4 stay sources (their pendant edges point outward) and p5,
    p6 stay sinks (their pendant edges point inward).
    """
    if delta < 2:
        raise TopologyError("theorem2_gadget needs Δ ≥ 2")
    base = theorem2_network()
    g = base.network.nx_graph
    succ: Dict[ProcessId, Set[ProcessId]] = {
        p: set(base.succ[p]) for p in base.network.processes
    }
    for core in list(g.nodes):
        for j in range(delta - 2):
            pendant = ("pend", core, j)
            g.add_edge(core, pendant)
            succ.setdefault(pendant, set())
            if core in (5, 6):
                # keep sinks: pendant → core
                succ[pendant].add(core)
            else:
                # keep p1/p4 sources (and orient p2/p3 pendants outward too)
                succ.setdefault(core, set()).add(pendant)
    frozen = {p: frozenset(s) for p, s in succ.items()}
    return OrientedNetwork(Network(g), frozen, root=1)


# ----------------------------------------------------------------------
# Tight stability examples (Figures 9 and 11)
# ----------------------------------------------------------------------
def figure9_path(n: int = 7) -> Network:
    """Figure 9's tight example for Theorem 6: a path.

    On a path, the longest elementary path has ``L_max = n−1`` edges, so
    Theorem 6 promises at least ``⌊n/2⌋`` eventually-1-stable
    (dominated) processes; alternating Dominator/dominated along the
    path meets it exactly.
    """
    if n < 2:
        raise TopologyError("figure9_path needs n ≥ 2")
    return Network(nx.path_graph(n))


def figure11_graph() -> Tuple[Network, List[Tuple[ProcessId, ProcessId]]]:
    """Figure 11's tight example for Theorem 8: Δ = 4, m = 14.

    Two "matched" edges (a1,a2) and (b1,b2).  Each of the four endpoints
    is filled up to degree 4 with pendant edges, and one shared pendant
    ("t", "shared") links a2 and b1 so the network is connected without
    adding an edge between hubs.  The degree sum over the hubs is 16 and
    only the two matched edges are internal, so m = 16 − 2 = 14, Δ = 4,
    and the matching {(a1,a2), (b1,b2)} is maximal with
    2·⌈m/(2Δ−1)⌉ = 2·⌈14/7⌉ = 4 matched processes — the bound exactly.

    Returns the network and the tight maximal matching.
    """
    g = nx.Graph()
    g.add_edge("a1", "a2")
    g.add_edge("b1", "b2")
    g.add_edge("a2", ("t", "shared"))
    g.add_edge("b1", ("t", "shared"))
    pend = 0
    for hub, k in (("a1", 3), ("a2", 2), ("b1", 2), ("b2", 3)):
        for _ in range(k):
            g.add_edge(hub, ("t", pend))
            pend += 1
    net = Network(g)
    matching = [("a1", "a2"), ("b1", "b2")]
    if net.m != 14 or net.max_degree != 4:
        raise TopologyError("figure11_graph construction drifted")  # pragma: no cover
    return net, matching
