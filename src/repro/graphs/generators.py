"""Topology generators.

Standard families used by the tests, examples and benchmarks: chains,
rings, stars, cliques, grids, tori, trees, caterpillars, hypercubes and
random graphs.  All return :class:`~repro.graphs.topology.Network`
objects with process ids ``0..n-1`` (or coordinate tuples for grids).
"""

from __future__ import annotations

import random
from typing import Optional

import networkx as nx

from ..core.exceptions import TopologyError
from .topology import Network


def chain(n: int) -> Network:
    """A path of ``n`` processes: ``0 — 1 — … — n-1``."""
    if n < 1:
        raise TopologyError("chain needs at least one process")
    return Network(nx.path_graph(n), copy=False)


def ring(n: int) -> Network:
    """A cycle of ``n ≥ 3`` processes."""
    if n < 3:
        raise TopologyError("ring needs at least 3 processes")
    return Network(nx.cycle_graph(n), copy=False)


def star(leaves: int) -> Network:
    """A star: center ``0`` plus ``leaves`` pendant processes."""
    if leaves < 1:
        raise TopologyError("star needs at least one leaf")
    return Network(nx.star_graph(leaves), copy=False)


def clique(n: int) -> Network:
    """The complete graph on ``n ≥ 2`` processes (a Δ-clique forces the
    Δ+1 colors of protocol COLORING)."""
    if n < 2:
        raise TopologyError("clique needs at least 2 processes")
    return Network(nx.complete_graph(n), copy=False)


def grid(rows: int, cols: int) -> Network:
    """A rows×cols 2D mesh; process ids are (row, col) tuples."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid dimensions must be positive")
    return Network(nx.grid_2d_graph(rows, cols), copy=False)


def torus(rows: int, cols: int) -> Network:
    """A rows×cols 2D torus (4-regular when both dims ≥ 3)."""
    if rows < 3 or cols < 3:
        raise TopologyError("torus dimensions must be ≥ 3")
    return Network(nx.grid_2d_graph(rows, cols, periodic=True), copy=False)


def hypercube(dim: int) -> Network:
    """The ``dim``-dimensional hypercube (ids are ints 0..2^dim-1)."""
    if dim < 1:
        raise TopologyError("hypercube dimension must be ≥ 1")
    g = nx.hypercube_graph(dim)
    return Network(nx.convert_node_labels_to_integers(g, ordering="sorted"), copy=False)


def binary_tree(height: int) -> Network:
    """A complete binary tree of the given height (height 0 = one node)."""
    if height < 0:
        raise TopologyError("tree height must be ≥ 0")
    return Network(nx.balanced_tree(2, height), copy=False) if height > 0 else chain(1)


def caterpillar(spine: int, legs_per_node: int) -> Network:
    """A caterpillar: a spine path with ``legs_per_node`` pendants each.

    Caterpillars stress the stability measures: spine processes see
    high degree while pendants are forced to watch their only neighbor.
    """
    if spine < 1 or legs_per_node < 0:
        raise TopologyError("bad caterpillar parameters")
    g = nx.path_graph(spine)
    next_id = spine
    for v in range(spine):
        for _ in range(legs_per_node):
            g.add_edge(v, next_id)
            next_id += 1
    return Network(g, copy=False)


def random_connected(
    n: int, p: float, seed: Optional[int] = None, max_tries: int = 200
) -> Network:
    """A connected Erdős–Rényi G(n, p) sample (resampled until connected)."""
    if n < 1:
        raise TopologyError("need at least one process")
    rng = random.Random(seed)
    for _ in range(max_tries):
        g = nx.gnp_random_graph(n, p, seed=rng.randrange(2**31))
        if n == 1 or nx.is_connected(g):
            return Network(g, copy=False)
    # Fall back: connect components along a random spanning chain.
    g = nx.gnp_random_graph(n, p, seed=rng.randrange(2**31))
    comps = [sorted(c) for c in nx.connected_components(g)]
    for a, b in zip(comps, comps[1:]):
        g.add_edge(a[0], b[0])
    return Network(g, copy=False)


def random_regular(n: int, d: int, seed: Optional[int] = None) -> Network:
    """A random connected ``d``-regular graph on ``n`` processes."""
    if n * d % 2 != 0:
        raise TopologyError("n*d must be even for a d-regular graph")
    rng = random.Random(seed)
    for _ in range(200):
        g = nx.random_regular_graph(d, n, seed=rng.randrange(2**31))
        if nx.is_connected(g):
            return Network(g, copy=False)
    raise TopologyError(f"could not sample a connected {d}-regular graph on {n}")


def sparse_random(
    n: int, avg_degree: float = 3.0, seed: Optional[int] = None
) -> Network:
    """A connected sparse random graph on ``n`` processes in O(n + m).

    The 10k-node scale tier needs random topologies that build in linear
    time; :func:`random_connected` resamples dense G(n, p) draws and is
    quadratic in ``n``.  This generator takes one G(n, p = avg_degree/n)
    sample via the fast (sparse) algorithm and then stitches the
    connected components together along a random chain, adding at most
    ``#components - 1`` edges — negligible against ``m ≈ n·avg_degree/2``
    and guaranteeing connectivity without resampling.
    """
    if n < 2:
        raise TopologyError("need at least two processes")
    if avg_degree <= 0:
        raise TopologyError("avg_degree must be positive")
    rng = random.Random(seed)
    p = min(1.0, avg_degree / max(n - 1, 1))
    g = nx.fast_gnp_random_graph(n, p, seed=rng.randrange(2**31))
    comps = [list(c) for c in nx.connected_components(g)]
    rng.shuffle(comps)
    for a, b in zip(comps, comps[1:]):
        g.add_edge(rng.choice(a), rng.choice(b))
    return Network(g, copy=False)


def random_tree(n: int, seed: Optional[int] = None) -> Network:
    """A uniformly random labelled tree on ``n`` processes."""
    if n < 1:
        raise TopologyError("need at least one process")
    if n == 1:
        return chain(1)
    if hasattr(nx, "random_labeled_tree"):
        g = nx.random_labeled_tree(n, seed=seed)
    else:  # networkx < 3.2
        g = nx.random_tree(n, seed=seed)
    return Network(g, copy=False)
