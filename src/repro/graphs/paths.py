"""Longest elementary path (L_max) computation.

Theorem 6's stability bound for MIS is ``⌊(L_max+1)/2⌋`` where L_max is
the number of edges of the longest elementary (simple) path.  Longest
path is NP-hard in general, so we provide:

* an exact exponential search with pruning, fine for the gadget and
  test graphs (n ≲ 30 at reasonable density, any size for paths/trees),
* a linear-time exact algorithm for trees (double BFS),
* a randomized DFS heuristic that yields a certified *lower bound*
  for larger graphs (a lower bound on L_max only weakens the claimed
  stability bound, so benches stay sound).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx

from .topology import Network

ProcessId = Hashable


@dataclass(frozen=True)
class LongestPathResult:
    """Length (in edges) of the longest elementary path found.

    ``exact`` records whether the value is proven optimal or merely a
    lower bound from the heuristic.
    """

    length: int
    exact: bool
    path: Tuple[ProcessId, ...]


def _tree_longest_path(g: nx.Graph) -> LongestPathResult:
    """Double-BFS: in a tree the longest path is the diameter path."""
    start = next(iter(g.nodes))
    far1 = max(nx.single_source_shortest_path_length(g, start).items(), key=lambda kv: kv[1])[0]
    lengths = nx.single_source_shortest_path(g, far1)
    far2, path = max(lengths.items(), key=lambda kv: len(kv[1]))
    return LongestPathResult(len(path) - 1, True, tuple(path))


def _exact_longest_path(g: nx.Graph, budget: int) -> Optional[LongestPathResult]:
    """Branch-and-bound DFS over simple paths; None if budget exhausted."""
    best_len = 0
    best_path: Tuple[ProcessId, ...] = (next(iter(g.nodes)),)
    nodes = list(g.nodes)
    steps = 0

    def dfs(v, visited: Set[ProcessId], path: List[ProcessId]) -> bool:
        nonlocal best_len, best_path, steps
        steps += 1
        if steps > budget:
            return False
        if len(path) - 1 > best_len:
            best_len = len(path) - 1
            best_path = tuple(path)
        # Prune: remaining reachable unvisited nodes bound the extension.
        remaining = len(nodes) - len(visited)
        if len(path) - 1 + remaining <= best_len:
            return True
        ok = True
        for w in g.neighbors(v):
            if w not in visited:
                visited.add(w)
                path.append(w)
                ok = dfs(w, visited, path) and ok
                path.pop()
                visited.remove(w)
                if not ok:
                    return False
        return ok

    complete = True
    for v in nodes:
        if not dfs(v, {v}, [v]):
            complete = False
            break
    if not complete:
        return None
    return LongestPathResult(best_len, True, best_path)


def _heuristic_longest_path(
    g: nx.Graph, tries: int, seed: Optional[int]
) -> LongestPathResult:
    """Randomized greedy DFS walks; certified lower bound."""
    rng = random.Random(seed)
    nodes = list(g.nodes)
    best_len = 0
    best_path: Tuple[ProcessId, ...] = (nodes[0],)
    for _ in range(tries):
        v = nodes[rng.randrange(len(nodes))]
        visited = {v}
        path = [v]
        while True:
            nxt = [w for w in g.neighbors(path[-1]) if w not in visited]
            if not nxt:
                break
            # Prefer low-degree extensions (keeps options open).
            nxt.sort(key=lambda w: sum(1 for x in g.neighbors(w) if x not in visited))
            cut = max(1, len(nxt) // 2)
            w = nxt[rng.randrange(cut)]
            visited.add(w)
            path.append(w)
        if len(path) - 1 > best_len:
            best_len = len(path) - 1
            best_path = tuple(path)
    return LongestPathResult(best_len, False, best_path)


def longest_elementary_path(
    network: Network,
    exact_budget: int = 2_000_000,
    heuristic_tries: int = 200,
    seed: Optional[int] = None,
) -> LongestPathResult:
    """L_max of the network (see module docstring for exactness rules)."""
    g = network.subgraph_view()
    if network.n == 1:
        return LongestPathResult(0, True, (network.processes[0],))
    if nx.is_tree(g):
        return _tree_longest_path(g)
    exact = _exact_longest_path(g, exact_budget)
    if exact is not None:
        return exact
    return _heuristic_longest_path(g, heuristic_tries, seed)


def mis_stability_lower_bound(network: Network, **kwargs) -> Tuple[int, bool]:
    """Theorem 6's ⌊(L_max+1)/2⌋, plus whether L_max was exact."""
    result = longest_elementary_path(network, **kwargs)
    return (result.length + 1) // 2, result.exact
