"""Port-numbered network topologies.

The paper's model assumes each process ``p`` distinguishes its neighbors
via *local indices* numbered ``1 .. δ.p`` (Section 2).  The local index
assignment (the "port numbering") is adversarial in anonymous networks —
several impossibility arguments hinge on choosing it maliciously — so the
topology object carries an explicit, per-process port map rather than
relying on any canonical neighbor ordering.

:class:`Network` wraps a :mod:`networkx` graph and exposes the paper's
notation: ``Γ.p`` (:meth:`Network.neighbors`), ``δ.p``
(:meth:`Network.degree`), ``Δ`` (:attr:`Network.max_degree`), ``D``
(:attr:`Network.diameter`), ``n`` and ``m``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from ..core.exceptions import TopologyError

ProcessId = Hashable


class Network:
    """An undirected connected network with explicit port numbering.

    Parameters
    ----------
    graph:
        Undirected :class:`networkx.Graph`.  Must be connected, simple,
        with at least one node and no self-loops.
    ports:
        Optional mapping ``p -> [q1, q2, ...]`` listing p's neighbors in
        local-index order (index ``i`` of the list is port ``i+1``).
        When omitted, a deterministic port numbering is derived from the
        graph's neighbor iteration order.
    copy:
        Copy ``graph`` before adopting it (the default).  Builders that
        hand over a freshly constructed graph nobody else holds pass
        ``copy=False`` to skip the duplication — at million-node scale
        the defensive copy dominates the build.
    """

    def __init__(
        self,
        graph: nx.Graph,
        ports: Optional[Mapping[ProcessId, Sequence[ProcessId]]] = None,
        copy: bool = True,
    ):
        if graph.number_of_nodes() == 0:
            raise TopologyError("network must have at least one process")
        if any(graph.has_edge(v, v) for v in graph.nodes):
            raise TopologyError("self-loops are not allowed")
        if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
            raise TopologyError("network must be connected")

        self._graph = graph.copy() if copy else graph
        self._ports: Dict[ProcessId, Tuple[ProcessId, ...]] = {}
        #: ``p -> {q: port}`` inverse tables, built lazily by
        #: :meth:`port_to` — only scenario churn and debug tooling ask
        #: for them, so the eager build was pure overhead at scale.
        self._port_of: Dict[ProcessId, Dict[ProcessId, int]] = {}

        for p in self._graph.nodes:
            if ports is not None and p in ports:
                order = tuple(ports[p])
                if sorted(map(repr, order)) != sorted(
                    map(repr, self._graph.neighbors(p))
                ):
                    raise TopologyError(
                        f"port list of {p!r} does not enumerate its neighbors"
                    )
            else:
                order = tuple(self._graph.neighbors(p))
            self._ports[p] = order

        self._diameter: Optional[int] = None

    # ------------------------------------------------------------------
    # Paper notation
    # ------------------------------------------------------------------
    @property
    def processes(self) -> List[ProcessId]:
        """Π — all processes, in a stable order."""
        return list(self._graph.nodes)

    @property
    def n(self) -> int:
        """Number of processes."""
        return self._graph.number_of_nodes()

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._graph.number_of_edges()

    def neighbors(self, p: ProcessId) -> Tuple[ProcessId, ...]:
        """Γ.p — neighbors of ``p`` in local-index order (port 1 first)."""
        return self._ports[p]

    def degree(self, p: ProcessId) -> int:
        """δ.p — the degree of ``p``."""
        return len(self._ports[p])

    @property
    def max_degree(self) -> int:
        """Δ — the degree of the network."""
        return max(self.degree(p) for p in self._graph.nodes)

    @property
    def diameter(self) -> int:
        """D — the diameter (computed lazily, cached)."""
        if self._diameter is None:
            if self.n == 1:
                self._diameter = 0
            else:
                self._diameter = nx.diameter(self._graph)
        return self._diameter

    # ------------------------------------------------------------------
    # Port numbering
    # ------------------------------------------------------------------
    def neighbor_at(self, p: ProcessId, port: int) -> ProcessId:
        """The neighbor of ``p`` behind local index ``port`` (1-based)."""
        order = self._ports[p]
        if not 1 <= port <= len(order):
            raise TopologyError(
                f"process {p!r} has no port {port} (degree {len(order)})"
            )
        return order[port - 1]

    def port_to(self, p: ProcessId, q: ProcessId) -> int:
        """The local index under which ``p`` sees its neighbor ``q``."""
        table = self._port_of.get(p)
        if table is None:
            order = self._ports.get(p)
            if order is None:
                raise TopologyError(f"{q!r} is not a neighbor of {p!r}")
            table = self._port_of[p] = {r: i + 1 for i, r in enumerate(order)}
        try:
            return table[q]
        except KeyError:
            raise TopologyError(f"{q!r} is not a neighbor of {p!r}") from None

    def with_ports(self, ports: Mapping[ProcessId, Sequence[ProcessId]]) -> "Network":
        """A copy of this network with (some) port maps replaced."""
        merged = {p: list(self._ports[p]) for p in self._graph.nodes}
        for p, order in ports.items():
            merged[p] = list(order)
        return Network(self._graph, merged)

    # ------------------------------------------------------------------
    # Safe mutation (functional: every mutator returns a new Network)
    # ------------------------------------------------------------------
    def _mutated(self, mutate, ports: Dict[ProcessId, List[ProcessId]]) -> "Network":
        """Build a mutated copy: apply ``mutate`` to a graph copy and
        construct a new :class:`Network` with the given port lists (the
        constructor re-validates connectivity, simplicity, non-emptiness)."""
        graph = self._graph.copy()
        mutate(graph)
        return Network(graph, ports, copy=False)

    def with_edge_added(self, p: ProcessId, q: ProcessId) -> "Network":
        """A copy with edge ``{p, q}`` added.

        Port numbering stays stable for every untouched process; each
        endpoint sees its new neighbor behind its highest port (the
        least disruptive assignment for round-robin pointers).
        """
        if p == q:
            raise TopologyError("self-loops are not allowed")
        if p not in self._graph or q not in self._graph:
            raise TopologyError(f"{p!r} or {q!r} is not a process")
        if self._graph.has_edge(p, q):
            raise TopologyError(f"{p!r} and {q!r} are already neighbors")
        ports = {r: list(order) for r, order in self._ports.items()}
        ports[p].append(q)
        ports[q].append(p)
        return self._mutated(lambda g: g.add_edge(p, q), ports)

    def with_edge_removed(self, p: ProcessId, q: ProcessId) -> "Network":
        """A copy with edge ``{p, q}`` removed (ports compact upward).

        Raises :class:`TopologyError` when the edge does not exist or
        its removal would disconnect the network (use
        :func:`non_bridge_edges` to sample safely).
        """
        if not self._graph.has_edge(p, q):
            raise TopologyError(f"{p!r} and {q!r} are not neighbors")
        ports = {r: list(order) for r, order in self._ports.items()}
        ports[p].remove(q)
        ports[q].remove(p)
        return self._mutated(lambda g: g.remove_edge(p, q), ports)

    def with_node_added(
        self, p: ProcessId, neighbors: Sequence[ProcessId]
    ) -> "Network":
        """A copy with a joining process ``p`` wired to ``neighbors``.

        The newcomer needs at least one neighbor (the network must stay
        connected); existing processes see it behind their highest port.
        """
        if p in self._graph:
            raise TopologyError(f"{p!r} is already a process")
        neighbors = list(neighbors)
        if not neighbors:
            raise TopologyError("a joining process needs >= 1 neighbor")
        if len(set(neighbors)) != len(neighbors):
            raise TopologyError("duplicate neighbors for the joining process")
        for q in neighbors:
            if q not in self._graph:
                raise TopologyError(f"{q!r} is not a process")
        ports = {r: list(order) for r, order in self._ports.items()}
        for q in neighbors:
            ports[q].append(p)
        ports[p] = list(neighbors)
        return self._mutated(
            lambda g: g.add_edges_from((p, q) for q in neighbors), ports
        )

    def with_node_removed(self, p: ProcessId) -> "Network":
        """A copy with process ``p`` (and its edges) removed.

        Raises :class:`TopologyError` when ``p`` does not exist, is the
        last process, or is a cut vertex (use :func:`removable_nodes`
        to sample safely).
        """
        if p not in self._graph:
            raise TopologyError(f"{p!r} is not a process")
        if self.n == 1:
            raise TopologyError("cannot remove the last process")
        ports = {
            r: [q for q in order if q != p]
            for r, order in self._ports.items()
            if r != p
        }
        return self._mutated(lambda g: g.remove_node(p), ports)

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------
    def edges(self) -> List[Tuple[ProcessId, ProcessId]]:
        """All edges as (p, q) tuples."""
        return list(self._graph.edges)

    def are_neighbors(self, p: ProcessId, q: ProcessId) -> bool:
        return self._graph.has_edge(p, q)

    @property
    def nx_graph(self) -> nx.Graph:
        """A copy of the underlying :mod:`networkx` graph."""
        return self._graph.copy()

    def subgraph_view(self) -> nx.Graph:
        """Read-only view of the underlying graph (no copy)."""
        return self._graph

    def __contains__(self, p: ProcessId) -> bool:
        return p in self._graph

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"Network(n={self.n}, m={self.m}, Δ={self.max_degree})"


def relabel_ports_randomly(network: Network, rng) -> Network:
    """Shuffle every process's port numbering uniformly at random.

    In anonymous networks the port numbering is not under the protocol's
    control; randomizing it exercises protocols against arbitrary
    labellings (and lets tests search for adversarial ones).
    """
    ports = {}
    for p in network.processes:
        order = list(network.neighbors(p))
        rng.shuffle(order)
        ports[p] = order
    return network.with_ports(ports)


def non_bridge_edges(network: Network) -> List[Tuple[ProcessId, ProcessId]]:
    """Edges whose removal keeps the network connected (non-bridges).

    The safe candidate pool for edge-removal churn events, in the
    deterministic edge-iteration order of the underlying graph.
    """
    bridges = set(nx.bridges(network.subgraph_view()))
    return [
        (p, q)
        for p, q in network.edges()
        if (p, q) not in bridges and (q, p) not in bridges
    ]


def removable_nodes(network: Network, min_n: int = 3) -> List[ProcessId]:
    """Processes whose departure keeps the network connected.

    Excludes cut vertices, and returns nothing once the network has
    shrunk to ``min_n`` processes (the default 3 keeps every remaining
    process a neighbor-having one, as the paper's protocols require).
    """
    if network.n <= min_n:
        return []
    cuts = set(nx.articulation_points(network.subgraph_view()))
    return [p for p in network.processes if p not in cuts]


def missing_edges(
    network: Network, limit: int = 0
) -> List[Tuple[ProcessId, ProcessId]]:
    """Non-adjacent process pairs — the edge-add churn fallback when
    rejection sampling finds nothing (near-complete graphs).  ``limit``
    caps the enumeration (0 = all pairs); pairs come out in
    deterministic process order.
    """
    out: List[Tuple[ProcessId, ProcessId]] = []
    procs = network.processes
    for i, p in enumerate(procs):
        for q in procs[i + 1:]:
            if not network.are_neighbors(p, q):
                out.append((p, q))
                if limit and len(out) >= limit:
                    return out
    return out


def network_from_edges(
    edges: Iterable[Tuple[ProcessId, ProcessId]],
    ports: Optional[Mapping[ProcessId, Sequence[ProcessId]]] = None,
) -> Network:
    """Build a :class:`Network` from an edge list."""
    g = nx.Graph()
    g.add_edges_from(edges)
    return Network(g, ports, copy=False)
