"""Proper vertex colorings as the local-identifier substrate.

Protocols MIS and MATCHING assume a *locally identified* network: each
process holds a communication constant color ``C.p`` that differs from
every neighbor's, ordered by ``≺``.  Any proper vertex coloring provides
these constants (Theorem 4 then derives a dag orientation from them).

This module supplies several classical constructions — greedy in id
order, Welsh-Powell (largest degree first) and DSATUR — plus
verification helpers.  The COLORING protocol itself can also serve as
the substrate; see :mod:`repro.protocols.composite`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional

import networkx as nx

from ..core.exceptions import TopologyError
from .topology import Network

ProcessId = Hashable
Coloring = Dict[ProcessId, int]


def is_proper_coloring(network: Network, colors: Coloring) -> bool:
    """True iff adjacent processes always carry distinct colors."""
    if set(colors) != set(network.processes):
        return False
    return all(colors[p] != colors[q] for p, q in network.edges())


def assert_local_identifiers(network: Network, colors: Coloring) -> None:
    """Raise unless ``colors`` is a valid local-identifier assignment."""
    if not is_proper_coloring(network, colors):
        raise TopologyError("colors are not a proper (local-identifier) coloring")


def color_count(colors: Coloring) -> int:
    """#C — the number of distinct colors used (Notation 1)."""
    return len(set(colors.values()))


def _normalize(raw: Dict[ProcessId, int]) -> Coloring:
    """Shift colorings to the paper's 1-based convention."""
    return {p: c + 1 for p, c in raw.items()}


def greedy_coloring(network: Network) -> Coloring:
    """Greedy in process-id iteration order; ≤ Δ+1 colors."""
    raw = nx.greedy_color(network.subgraph_view(), strategy="largest_first")
    return _normalize(raw)


def sequential_coloring(network: Network, order: Optional[Iterable[ProcessId]] = None) -> Coloring:
    """First-fit along an explicit order (defaults to process order)."""
    order = list(order) if order is not None else network.processes
    colors: Coloring = {}
    for p in order:
        taken = {colors[q] for q in network.neighbors(p) if q in colors}
        c = 1
        while c in taken:
            c += 1
        colors[p] = c
    return colors


def dsatur_coloring(network: Network) -> Coloring:
    """DSATUR — usually fewer colors than plain greedy."""
    raw = nx.greedy_color(network.subgraph_view(), strategy="saturation_largest_first")
    return _normalize(raw)


def welsh_powell_coloring(network: Network) -> Coloring:
    """Welsh-Powell: first-fit in non-increasing degree order."""
    order = sorted(network.processes, key=lambda p: -network.degree(p))
    return sequential_coloring(network, order)


def random_proper_coloring(network: Network, rng) -> Coloring:
    """First-fit along a random order — random but proper (for tests)."""
    order = list(network.processes)
    rng.shuffle(order)
    return sequential_coloring(network, order)
