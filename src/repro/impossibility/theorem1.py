"""Theorem 1 demonstrations (anonymous networks).

No ♦-k-stable neighbor-complete protocol exists for k < Δ in arbitrary
anonymous networks.  The proof builds, for any such protocol, a silent
configuration violating the predicate by splicing two legitimately
silent configurations so the conflicting pair of communication states
sits on an edge neither endpoint reads (Figure 1), then generalises to
any Δ with the Δ²+1-node gadget (Figure 2).

The demonstrations below run the construction concretely against the
1-stable :class:`FixedWatchColoring` strawman:

* :func:`theorem1_overlay_demo` — Figure 1(d)'s case (both unread sides
  face the same edge): overlay two silent 5-chain configurations.
* :func:`theorem1_splice_demo` — Figure 1(c)'s case: embed the second
  configuration reversed into a 7-chain.
* :func:`theorem1_gadget_demo` — the Δ-generalisation on the Δ²+1 gadget.
"""

from __future__ import annotations

from typing import Dict

from ..core.silence import is_silent
from ..core.state import Configuration
from ..graphs.gadgets import theorem1_chain, theorem1_gadget
from ..graphs.topology import Network
from .demonstration import (
    ImpossibilityDemonstration,
    build_trap_configuration,
)
from .splicing import overlay_five_chain, splice_seven_chain
from .strawman import FixedWatchColoring


def _five_chain_with_ports(p3_watches: int, p4_watches: int) -> Network:
    """The 5-chain with p3/p4's port 1 aimed as requested."""
    net = theorem1_chain()
    ports = {
        3: [p3_watches, 6 - p3_watches],  # neighbors of 3 are {2, 4}
        4: [p4_watches, 8 - p4_watches],  # neighbors of 4 are {3, 5}
    }
    return net.with_ports(ports)


def _config(colors: Dict[int, int]) -> Configuration:
    return Configuration({p: {"C": c} for p, c in colors.items()})


def theorem1_overlay_demo() -> ImpossibilityDemonstration:
    """Figure 1(d): p3 never reads p4 and p4 never reads p3.

    γ'3 = (2,3,1,2,1) is silent with α3 = color 1 at p3;
    γ'4 = (2,3,2,1,3) is silent with α4 = color 1 at p4.
    Overlaying left half of γ'3 with right half of γ'4 yields
    (2,3,1,1,3): silent, but edge {3,4} is monochromatic forever.
    """
    network = _five_chain_with_ports(p3_watches=2, p4_watches=5)
    protocol = FixedWatchColoring(palette_size=3)
    gamma3 = _config({1: 2, 2: 3, 3: 1, 4: 2, 5: 1})
    gamma4 = _config({1: 2, 2: 3, 3: 2, 4: 1, 5: 3})
    for gamma in (gamma3, gamma4):
        assert is_silent(protocol, network, gamma)
        assert protocol.is_legitimate(network, gamma)
    config = overlay_five_chain(gamma3, gamma4)
    return ImpossibilityDemonstration(
        name="theorem1-overlay",
        protocol=protocol,
        network=network,
        config=config,
        trap_edge=(3, 4),
    )


def theorem1_splice_demo() -> ImpossibilityDemonstration:
    """Figure 1(c): p4's unread side faces p5, so a 7-chain is spliced.

    γ'3 = (2,3,1,2,1) on a chain where p3 watches p2 (never reads p4);
    γ'4 = (3,2,3,1,2) on a chain where p4 watches p3 (never reads p5).
    The B-half embeds reversed: p'4..p'7 copy γ'4's p4, p3, p2, p1.
    Every process keeps the watched view of its source configuration,
    and the monochromatic edge {p'3, p'4} is read by neither endpoint.
    """
    network_a = _five_chain_with_ports(p3_watches=2, p4_watches=3)
    protocol = FixedWatchColoring(palette_size=3)
    gamma3 = _config({1: 2, 2: 3, 3: 1, 4: 2, 5: 1})
    gamma4 = _config({1: 3, 2: 2, 3: 3, 4: 1, 5: 2})
    for gamma in (gamma3, gamma4):
        assert is_silent(protocol, network_a, gamma)
        assert protocol.is_legitimate(network_a, gamma)

    seven, config = splice_seven_chain(gamma3, gamma4)
    # Port numbering of the spliced chain: each process's port 1 aims at
    # the neighbor holding the state its source process used to watch.
    seven = seven.with_ports(
        {
            2: [1, 3],
            3: [2, 4],
            4: [5, 3],  # γ'4's p4 watched p3, whose state now sits at p'5
            5: [6, 4],  # γ'4's p3 watched p2 → p'6
            6: [7, 5],  # γ'4's p2 watched p1 → p'7
            7: [6],
        }
    )
    return ImpossibilityDemonstration(
        name="theorem1-splice",
        protocol=protocol,
        network=seven,
        config=config,
        trap_edge=(3, 4),
    )


def theorem1_gadget_demo(delta: int = 3) -> ImpossibilityDemonstration:
    """The Δ-generalisation (Figure 2) on the Δ²+1-node gadget.

    The center watches middle node 1, middle node 0 watches its first
    pendant: the center–m0 edge is unwatched from both sides and traps a
    monochromatic pair in an otherwise proper, silent configuration.
    """
    network = theorem1_gadget(delta)
    watch = {"c": 2}  # center's port 2 = ("m", 1); its port 1 would watch m0
    for i in range(delta):
        watch[("m", i)] = 2  # port 1 is the center; port 2 the first pendant
        for j in range(delta - 1):
            watch[("l", i, j)] = 1
    protocol = FixedWatchColoring(palette_size=delta + 1, watch_port=watch)
    config = build_trap_configuration(protocol, network, ("c", ("m", 0)))
    return ImpossibilityDemonstration(
        name=f"theorem1-gadget-Δ{delta}",
        protocol=protocol,
        network=network,
        config=config,
        trap_edge=("c", ("m", 0)),
    )
