"""Theorem 2 demonstrations (rooted, dag-oriented networks).

Even a root plus a dag orientation does not enable k-stable
neighbor-complete protocols for k < Δ.  The proof works on the Figure 3
network: because the sinks see the *same* orientation on both incident
edges, the orientation cannot tell them which neighbor to drop, and the
splicing argument of Theorem 1 goes through (Figures 4 and 5).

The demonstration runs the construction against
:class:`OrientedWatchColoring` — a strawman that *does* use the
orientation (it watches a successor when it has one) and falls back to a
fixed port at sinks.  Some edge still ends up unwatched from both
sides, and the trap configuration freezes the system in an illegitimate
silent state.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..graphs.gadgets import OrientedNetwork, theorem2_gadget, theorem2_network
from .demonstration import (
    ImpossibilityDemonstration,
    build_trap_configuration,
)
from .strawman import OrientedWatchColoring


def _first_unwatched_edge(
    protocol: OrientedWatchColoring, oriented: OrientedNetwork
) -> Tuple:
    unwatched = protocol.unwatched_edges(oriented.network)
    if not unwatched:
        raise AssertionError(
            "orientation-aware strawman watches every edge — "
            "the gadget no longer demonstrates Theorem 2"
        )
    return unwatched[0]


def theorem2_demo(
    trap_edge: Optional[Tuple] = None,
) -> ImpossibilityDemonstration:
    """The construction on the Figure 3 network.

    The orientation-aware strawman watches successors; with Δ = 2 every
    process drops one neighbor, and at least one edge of the 6-cycle is
    dropped from both sides.  A trap configuration on that edge is
    silent and illegitimate forever — root and orientation included.
    """
    oriented = theorem2_network()
    protocol = OrientedWatchColoring(
        palette_size=oriented.network.max_degree + 1, oriented=oriented
    )
    edge = trap_edge or _first_unwatched_edge(protocol, oriented)
    config = build_trap_configuration(protocol, oriented.network, edge)
    return ImpossibilityDemonstration(
        name="theorem2-fig3",
        protocol=protocol,
        network=oriented.network,
        config=config,
        trap_edge=edge,
    )


def theorem2_gadget_demo(delta: int = 3) -> ImpossibilityDemonstration:
    """The Δ-generalisation (Figure 6): pendants preserve sources/sinks."""
    oriented = theorem2_gadget(delta)
    protocol = OrientedWatchColoring(
        palette_size=oriented.network.max_degree + 1, oriented=oriented
    )
    edge = _first_unwatched_edge(protocol, oriented)
    config = build_trap_configuration(protocol, oriented.network, edge)
    return ImpossibilityDemonstration(
        name=f"theorem2-gadget-Δ{delta}",
        protocol=protocol,
        network=oriented.network,
        config=config,
        trap_edge=edge,
    )
