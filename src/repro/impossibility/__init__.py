"""Executable impossibility constructions (Theorems 1 and 2)."""

from .demonstration import (
    DemonstrationReport,
    ImpossibilityDemonstration,
    build_trap_configuration,
)
from .splicing import overlay_five_chain, splice_seven_chain, transplant_states
from .strawman import FixedWatchColoring, OrientedWatchColoring
from .theorem1 import (
    theorem1_gadget_demo,
    theorem1_overlay_demo,
    theorem1_splice_demo,
)
from .theorem2 import theorem2_demo, theorem2_gadget_demo

__all__ = [
    "DemonstrationReport",
    "FixedWatchColoring",
    "ImpossibilityDemonstration",
    "OrientedWatchColoring",
    "build_trap_configuration",
    "overlay_five_chain",
    "splice_seven_chain",
    "theorem1_gadget_demo",
    "theorem1_overlay_demo",
    "theorem1_splice_demo",
    "theorem2_demo",
    "theorem2_gadget_demo",
    "transplant_states",
]
