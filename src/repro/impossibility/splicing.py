"""Configuration splicing — the cut-and-paste of Figures 1, 4 and 5.

Theorem 1's proof takes two silent configurations of the same gadget
(γ'3 where p3's communication state is α3 and p3 never reads p4; γ'4
where p4's state is α4 and p4 never reads its own unread side), then
manufactures a new network whose processes copy states from the two
configurations so that every process keeps the *local view* it had in
its source configuration.  Nobody can distinguish the spliced world from
the silent one it came from, so nobody moves — yet the copied α3/α4 pair
sits on an edge neither endpoint reads, violating the predicate forever.

The helpers here perform that state surgery generically (they copy full
process states between configurations over an explicit correspondence)
plus the two concrete constructions used by the demonstrations.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Tuple

from ..core.state import Configuration
from ..graphs.gadgets import theorem1_spliced_chain
from ..graphs.topology import Network

ProcessId = Hashable


def transplant_states(
    source_configs: Mapping[str, Configuration],
    correspondence: Mapping[ProcessId, Tuple[str, ProcessId]],
) -> Configuration:
    """Build a configuration by copying process states across networks.

    ``correspondence[new_pid] = (config_key, old_pid)`` states that the
    new process adopts the full state ``old_pid`` had in
    ``source_configs[config_key]``.
    """
    states: Dict[ProcessId, Dict] = {}
    for new_pid, (key, old_pid) in correspondence.items():
        states[new_pid] = dict(source_configs[key].state_of(old_pid))
    return Configuration(states)


def overlay_five_chain(
    gamma3: Configuration, gamma4: Configuration
) -> Configuration:
    """Figure 1(d)'s case: both unread ports face the 3–4 edge.

    When p3 never reads p4 *and* p4 never reads p3, no new network is
    needed: overlay γ'3's left half with γ'4's right half on the same
    5-chain.  Everyone's watched view matches its source configuration.
    """
    return transplant_states(
        {"A": gamma3, "B": gamma4},
        {
            1: ("A", 1),
            2: ("A", 2),
            3: ("A", 3),
            4: ("B", 4),
            5: ("B", 5),
        },
    )


def splice_seven_chain(
    gamma3: Configuration, gamma4: Configuration
) -> Tuple[Network, Configuration]:
    """Figure 1(c)'s case: p4's unread side faces p5 in γ'4.

    Build the 7-chain p'1 … p'7 with p'1..p'3 copying γ'3's p1..p3 and
    p'4..p'7 copying γ'4's p4, p3, p2, p1 (the B-half embeds reversed so
    p'4's read side sees the state p4 used to read).  The caller must
    supply the port numbering separately — see
    :func:`repro.impossibility.theorem1.theorem1_spliced_ports`.
    """
    network = theorem1_spliced_chain()
    config = transplant_states(
        {"A": gamma3, "B": gamma4},
        {
            1: ("A", 1),
            2: ("A", 2),
            3: ("A", 3),
            4: ("B", 4),
            5: ("B", 3),
            6: ("B", 2),
            7: ("B", 1),
        },
    )
    return network, config
