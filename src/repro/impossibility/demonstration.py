"""Shared harness for the impossibility demonstrations.

A demonstration packages a victim protocol, a network (with adversarial
port numbering), and a *trap configuration*: a silent configuration that
violates the protocol's predicate on an edge neither endpoint ever
reads.  :meth:`ImpossibilityDemonstration.verify` checks all three
facts, both statically (the sound silence checker) and dynamically (the
simulator runs on and nothing ever changes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from ..core.scheduler import RandomSubsetScheduler, Scheduler
from ..core.silence import is_silent
from ..core.simulator import Simulator
from ..core.state import Configuration
from ..graphs.topology import Network
from .strawman import FixedWatchColoring

ProcessId = Hashable


def build_trap_configuration(
    protocol: FixedWatchColoring,
    network: Network,
    trap_edge: Tuple[ProcessId, ProcessId],
) -> Configuration:
    """A silent illegitimate configuration around an unwatched edge.

    The trap endpoints share color 1; every other process is colored
    greedily so that *all* remaining edges are proper.  Then every
    watched neighbor differs (the strawman is disabled everywhere =
    silent) while the unwatched trap edge violates the predicate.
    """
    p_trap, q_trap = trap_edge
    unwatched = {frozenset(e) for e in protocol.unwatched_edges(network)}
    if frozenset(trap_edge) not in unwatched:
        raise ValueError(
            f"edge {trap_edge!r} is watched by an endpoint; no trap there"
        )
    colors = {p_trap: 1, q_trap: 1}
    for p in network.processes:
        if p in colors:
            continue
        taken = {colors[q] for q in network.neighbors(p) if q in colors}
        color = next(c for c in protocol.palette if c not in taken)
        colors[p] = color
    # Sanity: every non-trap edge must be proper (greedy guarantees it —
    # the trap endpoints were colored first and identically).
    for p, q in network.edges():
        if frozenset((p, q)) != frozenset(trap_edge) and colors[p] == colors[q]:
            raise AssertionError("trap construction produced a stray conflict")
    return Configuration({p: {"C": colors[p]} for p in network.processes})


@dataclass
class DemonstrationReport:
    """What the verification observed."""

    silent: bool
    legitimate: bool
    steps_run: int
    comm_changed: bool

    @property
    def demonstrates_impossibility(self) -> bool:
        """Silent + illegitimate + frozen = the deadlock the proof builds."""
        return self.silent and not self.legitimate and not self.comm_changed


@dataclass
class ImpossibilityDemonstration:
    """A concrete instance of the Theorem 1 / Theorem 2 construction."""

    name: str
    protocol: FixedWatchColoring
    network: Network
    config: Configuration
    trap_edge: Tuple[ProcessId, ProcessId]

    def verify(
        self,
        rounds: int = 30,
        seed: int = 0,
        scheduler: Optional[Scheduler] = None,
    ) -> DemonstrationReport:
        """Check the trap statically and dynamically."""
        silent = is_silent(self.protocol, self.network, self.config)
        legitimate = self.protocol.is_legitimate(self.network, self.config)
        sim = Simulator(
            self.protocol,
            self.network,
            scheduler=scheduler or RandomSubsetScheduler(0.5),
            seed=seed,
            config=self.config,
        )
        specs_of = self.protocol.specs_of(self.network)
        before = sim.config.comm_projection(specs_of)
        sim.run_rounds(rounds)
        after = sim.config.comm_projection(specs_of)
        return DemonstrationReport(
            silent=silent,
            legitimate=legitimate,
            steps_run=sim.step_index,
            comm_changed=(before != after),
        )
