"""Strawman stable protocols for the impossibility demonstrations.

Theorems 1 and 2 quantify over *all* ♦-k-stable / k-stable protocols; an
executable artefact demonstrates them on concrete victims.  The
strawmen here are honest attempts at communication-stable coloring:

* :class:`FixedWatchColoring` — each process forever reads exactly one
  fixed neighbor (1-stable by construction) and recolors deterministically
  on a clash with that neighbor.  On a favourable port numbering this
  protocol actually stabilizes (every edge watched by someone); the
  theorem-1 construction exhibits port numberings and initial
  configurations where it sits silent in an illegitimate configuration.
* :class:`OrientedWatchColoring` — the theorem-2 victim: it may consult
  the dag orientation (watching its smallest-port successor) and falls
  back to a fixed port at sinks.  The construction shows that root +
  orientation do not rescue k-stability: some edge is still unwatched
  from both sides.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Tuple

from ..core.actions import GuardedAction
from ..core.exceptions import TopologyError
from ..core.protocol import Protocol
from ..core.state import Configuration
from ..core.variables import IntRange, VariableSpec, comm
from ..graphs.gadgets import OrientedNetwork
from ..graphs.topology import Network
from ..predicates.coloring import coloring_predicate

ProcessId = Hashable


class FixedWatchColoring(Protocol):
    """1-stable deterministic coloring: read one fixed port forever.

    Parameters
    ----------
    palette_size:
        Colors {1..palette_size}; use Δ+1 for parity with COLORING.
    watch_port:
        ``pid -> port`` map of the single neighbor each process reads;
        defaults to port 1 everywhere.  The port choice is part of the
        local algorithm — a 1-stable protocol must fix it from the
        process state alone, and in an anonymous network the adversary
        controls what hides behind each port.
    """

    name = "FIXED-WATCH-COLORING"
    randomized = False

    def __init__(
        self,
        palette_size: int,
        watch_port: Optional[Mapping[ProcessId, int]] = None,
    ):
        if palette_size < 2:
            raise ValueError("palette must contain at least 2 colors")
        self.palette = IntRange(1, palette_size)
        self._watch_port = dict(watch_port) if watch_port else {}

    def watch_port_of(self, p: ProcessId) -> int:
        return self._watch_port.get(p, 1)

    # ------------------------------------------------------------------
    def variables(self, network: Network, p: ProcessId) -> Tuple[VariableSpec, ...]:
        degree = network.degree(p)
        if degree < 1:
            raise TopologyError("coloring requires every process to have a neighbor")
        if not 1 <= self.watch_port_of(p) <= degree:
            raise TopologyError(f"watch port of {p!r} out of range")
        return (comm("C", self.palette),)

    def actions(self) -> Tuple[GuardedAction, ...]:
        def clash(ctx) -> bool:
            return ctx.get("C") == ctx.read(self.watch_port_of(ctx.pid), "C")

        def recolor(ctx) -> None:
            # Deterministic palette rotation keeps the strawman
            # replayable; any rule that only reacts to the watched
            # neighbor falls to the same construction.
            ctx.set("C", (ctx.get("C") % len(self.palette)) + 1)

        return (GuardedAction("recolor", clash, recolor),)

    def is_legitimate(self, network: Network, config: Configuration) -> bool:
        return coloring_predicate(network, config, var="C")

    def watched_edges(self, network: Network) -> set:
        """Edges read by at least one endpoint (as frozensets)."""
        watched = set()
        for p in network.processes:
            q = network.neighbor_at(p, self.watch_port_of(p))
            watched.add(frozenset((p, q)))
        return watched

    def unwatched_edges(self, network: Network) -> list:
        """Edges read by neither endpoint — the construction's target."""
        watched = self.watched_edges(network)
        return [
            (p, q) for p, q in network.edges() if frozenset((p, q)) not in watched
        ]


class OrientedWatchColoring(FixedWatchColoring):
    """Theorem-2 victim: may use the dag orientation to pick its watch.

    Each process watches its smallest-port successor when it has one;
    sinks (no successors) fall back to port 1.  The proof's observation
    is embodied at the sinks: when both neighbors carry the same
    orientation the orientation cannot break the tie, so the choice
    degenerates to a fixed port and the construction applies.
    """

    name = "ORIENTED-WATCH-COLORING"

    def __init__(self, palette_size: int, oriented: OrientedNetwork):
        network = oriented.network
        watch: Dict[ProcessId, int] = {}
        for p in network.processes:
            successors = oriented.succ.get(p, frozenset())
            if successors:
                watch[p] = min(network.port_to(p, q) for q in successors)
            else:
                watch[p] = 1
        super().__init__(palette_size, watch)
        self.oriented = oriented
