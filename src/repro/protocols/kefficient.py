"""The k-efficiency spectrum (Definition 4's knob).

The paper proves its protocols at k = 1 and notes every protocol is
trivially Δ-efficient; this module fills in the spectrum with a
*window-scanning* coloring protocol that reads exactly
``min(k, δ.p)`` consecutive neighbors per step.  k = 1 recovers the
shape of protocol COLORING; k ≥ Δ recovers the traditional full scan.
The ablation bench measures how convergence time and per-step bits
trade off along k — the design space the paper's measures make visible.
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

from ..core.actions import GuardedAction
from ..core.exceptions import TopologyError
from ..core.protocol import Protocol
from ..core.state import Configuration
from ..core.variables import IntRange, VariableSpec, comm, internal
from ..graphs.topology import Network
from ..graphs.coloring import Coloring, assert_local_identifiers
from ..predicates.coloring import coloring_predicate
from ..predicates.mis import DOMINATED, DOMINATOR, mis_predicate

ProcessId = Hashable


class WindowColoringProtocol(Protocol):
    """Randomized coloring reading a k-neighbor window per step.

    Parameters
    ----------
    palette_size:
        Colors {1..palette_size}; needs ≥ Δ+1 for arbitrary networks.
    k:
        Window width — the protocol is k-efficient by construction.
    """

    randomized = True

    def __init__(self, palette_size: int, k: int):
        if palette_size < 2:
            raise ValueError("palette must contain at least 2 colors")
        if k < 1:
            raise ValueError("window width k must be ≥ 1")
        self.palette = IntRange(1, palette_size)
        self.k = k
        self.name = f"COLORING-k{k}"

    @classmethod
    def for_network(cls, network: Network, k: int) -> "WindowColoringProtocol":
        return cls(network.max_degree + 1, k)

    # ------------------------------------------------------------------
    def variables(self, network: Network, p: ProcessId) -> Tuple[VariableSpec, ...]:
        degree = network.degree(p)
        if degree < 1:
            raise TopologyError("coloring requires every process to have a neighbor")
        return (
            comm("C", self.palette),
            internal("cur", IntRange(1, degree)),
        )

    def _window(self, ctx) -> List[int]:
        """Ports cur, cur+1, …, cur+k−1 (cyclically, deduplicated)."""
        degree = ctx.degree
        start = ctx.get("cur")
        width = min(self.k, degree)
        return [((start - 1 + i) % degree) + 1 for i in range(width)]

    def actions(self) -> Tuple[GuardedAction, ...]:
        def clash(ctx) -> bool:
            own = ctx.get("C")
            return any(ctx.read(port, "C") == own for port in self._window(ctx))

        def recolor(ctx) -> None:
            ctx.set("C", ctx.random_choice(self.palette))
            self._advance(ctx)

        def no_clash(ctx) -> bool:
            own = ctx.get("C")
            return all(ctx.read(port, "C") != own for port in self._window(ctx))

        def advance(ctx) -> None:
            self._advance(ctx)

        return (
            GuardedAction("recolor", clash, recolor),
            GuardedAction("advance", no_clash, advance),
        )

    def _advance(self, ctx) -> None:
        degree = ctx.degree
        width = min(self.k, degree)
        ctx.set("cur", ((ctx.get("cur") - 1 + width) % degree) + 1)

    def is_legitimate(self, network: Network, config: Configuration) -> bool:
        return coloring_predicate(network, config, var="C")


class WindowMISProtocol(Protocol):
    """MIS over a k-neighbor scanning window (deterministic).

    The window generalisation of protocol MIS: *yield* when any window
    port shows a smaller-colored Dominator (window frozen, exactly as
    Fig. 8\'s first action leaves ``cur`` in place — the pin that makes
    dominated processes stable); *claim* when every window port is
    dominated or larger-colored (advance); *patrol* otherwise.  k = 1
    recovers protocol MIS; k ≥ Δ is the full-read baseline's shape.
    Lemma 4's color-rank induction is insensitive to the window width,
    so the Δ·#C round bound still applies (tests check it).
    """

    randomized = False

    def __init__(self, network: Network, colors: Coloring, k: int):
        if k < 1:
            raise ValueError("window width k must be ≥ 1")
        assert_local_identifiers(network, colors)
        self.colors = dict(colors)
        self.k = k
        self.name = f"MIS-k{k}"
        self._color_domain = IntRange(
            min(self.colors.values()), max(self.colors.values())
        )

    def variables(self, network: Network, p: ProcessId) -> Tuple[VariableSpec, ...]:
        degree = network.degree(p)
        if degree < 1:
            raise TopologyError("MIS requires every process to have a neighbor")
        from ..core.variables import FiniteSet, const

        return (
            comm("S", FiniteSet((DOMINATOR, DOMINATED))),
            const("C", self._color_domain),
            internal("cur", IntRange(1, degree)),
        )

    def constant_values(self, network: Network, p: ProcessId):
        return {"C": self.colors[p]}

    def _window(self, ctx) -> List[int]:
        degree = ctx.degree
        start = ctx.get("cur")
        width = min(self.k, degree)
        return [((start - 1 + i) % degree) + 1 for i in range(width)]

    def _advance(self, ctx) -> None:
        degree = ctx.degree
        width = min(self.k, degree)
        ctx.set("cur", ((ctx.get("cur") - 1 + width) % degree) + 1)

    def actions(self) -> Tuple[GuardedAction, ...]:
        def yield_guard(ctx) -> bool:
            if ctx.get("S") != DOMINATOR:
                return False
            own = ctx.get("C")
            return any(
                ctx.read(port, "S") == DOMINATOR and ctx.read(port, "C") < own
                for port in self._window(ctx)
            )

        def yield_effect(ctx) -> None:
            ctx.set("S", DOMINATED)

        def claim_guard(ctx) -> bool:
            if ctx.get("S") != DOMINATED:
                return False
            own = ctx.get("C")
            return all(
                ctx.read(port, "S") == DOMINATED or own < ctx.read(port, "C")
                for port in self._window(ctx)
            )

        def claim_effect(ctx) -> None:
            ctx.set("S", DOMINATOR)
            self._advance(ctx)

        def patrol_guard(ctx) -> bool:
            return ctx.get("S") == DOMINATOR

        def patrol_effect(ctx) -> None:
            self._advance(ctx)

        return (
            GuardedAction("yield", yield_guard, yield_effect),
            GuardedAction("claim", claim_guard, claim_effect),
            GuardedAction("patrol", patrol_guard, patrol_effect),
        )

    def is_legitimate(self, network: Network, config: Configuration) -> bool:
        return mis_predicate(network, config, var="S")
