"""Δ-efficient baseline protocols (the traditional comparison points)."""

from .coloring_full import FullReadColoring
from .matching_full import FullReadMatching
from .mis_full import FullReadMIS

__all__ = ["FullReadColoring", "FullReadMIS", "FullReadMatching"]
