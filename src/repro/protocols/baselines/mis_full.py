"""Δ-efficient baseline MIS (Ikeda-Kamei-Kakugawa style).

The classical self-stabilizing maximal independent set protocol with
ordered identifiers (here: local-identifier colors), reading *all*
neighbors in every step:

* a Dominator with a smaller-colored Dominator neighbor steps down;
* a dominated process with no "blocking" neighbor (a Dominator, or a
  smaller-colored process that might still claim) steps up.

This is the comparison point for MIS's communication complexity: the
per-step read cost is Δ·(1 + log #C) bits instead of 1 + log #C.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from ...core.actions import GuardedAction
from ...core.exceptions import TopologyError
from ...core.protocol import Protocol
from ...core.state import Configuration
from ...core.variables import IntRange, VariableSpec, const, comm
from ...graphs.coloring import Coloring, assert_local_identifiers
from ...graphs.topology import Network
from ...predicates.mis import DOMINATED, DOMINATOR, mis_predicate
from ..mis import S_DOMAIN

ProcessId = Hashable


class FullReadMIS(Protocol):
    """Deterministic Δ-efficient MIS over a local-identifier coloring."""

    name = "MIS-full"
    randomized = False

    def __init__(self, network: Network, colors: Coloring):
        assert_local_identifiers(network, colors)
        self.colors: Dict[ProcessId, int] = dict(colors)
        self._color_domain = IntRange(
            min(self.colors.values()), max(self.colors.values())
        )

    def variables(self, network: Network, p: ProcessId) -> Tuple[VariableSpec, ...]:
        if network.degree(p) < 1:
            raise TopologyError("MIS requires every process to have a neighbor")
        return (comm("S", S_DOMAIN), const("C", self._color_domain))

    def constant_values(self, network: Network, p: ProcessId) -> Dict[str, int]:
        return {"C": self.colors[p]}

    def actions(self) -> Tuple[GuardedAction, ...]:
        def scan(ctx):
            # The traditional protocol reads the full neighborhood every
            # step; materialise the scan so the metrics charge it fully
            # (no short-circuit discount).
            return [
                (ctx.read(port, "S"), ctx.read(port, "C"))
                for port in range(1, ctx.degree + 1)
            ]

        def step_down_guard(ctx) -> bool:
            own_color = ctx.get("C")
            neighborhood = scan(ctx)
            if ctx.get("S") != DOMINATOR:
                return False
            return any(
                s == DOMINATOR and c < own_color for s, c in neighborhood
            )

        def step_down(ctx) -> None:
            ctx.set("S", DOMINATED)

        def step_up_guard(ctx) -> bool:
            # Step up unless some smaller-colored neighbor is a
            # Dominator — the all-neighbors analogue of MIS's claim rule
            # (∀q: S.q = dominated ∨ C.p ≺ C.q).
            own_color = ctx.get("C")
            neighborhood = scan(ctx)
            if ctx.get("S") != DOMINATED:
                return False
            return all(
                s == DOMINATED or own_color < c for s, c in neighborhood
            )

        def step_up(ctx) -> None:
            ctx.set("S", DOMINATOR)

        return (
            GuardedAction("step-down", step_down_guard, step_down),
            GuardedAction("step-up", step_up_guard, step_up),
        )

    def is_legitimate(self, network: Network, config: Configuration) -> bool:
        return mis_predicate(network, config, var="S")
