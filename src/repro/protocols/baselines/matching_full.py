"""Δ-efficient baseline maximal matching (Manne-Mjelde-Pilard-Tixeuil style).

The protocol MATCHING "derives from" (paper §5.3, [17]): the same
propose / accept / abandon engine but scanning the full neighborhood
every step instead of a round-robin pointer.  Proposals go only to
larger-colored free neighbors, so pointer cycles cannot form; the
married set grows monotonically to a maximal matching.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from ...core.actions import GuardedAction
from ...core.exceptions import TopologyError
from ...core.protocol import Protocol
from ...core.state import Configuration
from ...core.variables import BOOL, IntRange, VariableSpec, const, comm
from ...graphs.coloring import Coloring, assert_local_identifiers
from ...graphs.topology import Network
from ...predicates.matching import matching_predicate

ProcessId = Hashable


class FullReadMatching(Protocol):
    """Deterministic Δ-efficient maximal matching protocol."""

    name = "MATCHING-full"
    randomized = False

    def __init__(self, network: Network, colors: Coloring):
        assert_local_identifiers(network, colors)
        self.colors: Dict[ProcessId, int] = dict(colors)
        self._color_domain = IntRange(
            min(self.colors.values()), max(self.colors.values())
        )

    def variables(self, network: Network, p: ProcessId) -> Tuple[VariableSpec, ...]:
        degree = network.degree(p)
        if degree < 1:
            raise TopologyError("matching requires every process to have a neighbor")
        return (
            comm("M", BOOL),
            comm("PR", IntRange(0, degree)),
            const("C", self._color_domain),
        )

    def constant_values(self, network: Network, p: ProcessId) -> Dict[str, int]:
        return {"C": self.colors[p]}

    # ------------------------------------------------------------------
    @staticmethod
    def _points_back(ctx, port: int) -> bool:
        pr_q = ctx.read(port, "PR")
        if pr_q == 0:
            return False
        q = ctx.network.neighbor_at(ctx.pid, port)
        return ctx.network.neighbor_at(q, pr_q) == ctx.pid

    @classmethod
    def _married(cls, ctx) -> bool:
        pr = ctx.get("PR")
        return pr != 0 and cls._points_back(ctx, pr)

    def actions(self) -> Tuple[GuardedAction, ...]:
        points_back = self._points_back
        married = self._married

        def scan(ctx):
            """Full neighborhood read (charged to the metrics)."""
            return {
                port: (
                    ctx.read(port, "PR"),
                    ctx.read(port, "M"),
                    ctx.read(port, "C"),
                )
                for port in range(1, ctx.degree + 1)
            }

        def first_suitor(ctx) -> Optional[int]:
            """Smallest-colored neighbor whose PR points at us."""
            best = None
            best_color = None
            for port in range(1, ctx.degree + 1):
                if points_back(ctx, port):
                    color = ctx.read(port, "C")
                    if best_color is None or color < best_color:
                        best, best_color = port, color
            return best

        def first_candidate(ctx) -> Optional[int]:
            """Smallest-colored free, unmarried, larger-colored neighbor."""
            own_color = ctx.get("C")
            best = None
            best_color = None
            for port in range(1, ctx.degree + 1):
                pr_q = ctx.read(port, "PR")
                m_q = ctx.read(port, "M")
                c_q = ctx.read(port, "C")
                if pr_q == 0 and not m_q and own_color < c_q:
                    if best_color is None or c_q < best_color:
                        best, best_color = port, c_q
            return best

        # 1. publish marriage status
        def publish_guard(ctx) -> bool:
            scan(ctx)
            return ctx.get("M") != married(ctx)

        def publish_effect(ctx) -> None:
            ctx.set("M", married(ctx))

        # 2. abandon a dead-end proposal
        def abandon_guard(ctx) -> bool:
            scan(ctx)
            pr = ctx.get("PR")
            if pr == 0 or points_back(ctx, pr):
                return False
            return ctx.read(pr, "M") or ctx.read(pr, "C") < ctx.get("C")

        def abandon_effect(ctx) -> None:
            ctx.set("PR", 0)

        # 3. accept the best suitor
        def accept_guard(ctx) -> bool:
            scan(ctx)
            return ctx.get("PR") == 0 and first_suitor(ctx) is not None

        def accept_effect(ctx) -> None:
            suitor = first_suitor(ctx)
            assert suitor is not None
            ctx.set("PR", suitor)

        # 4. propose to the best candidate
        def propose_guard(ctx) -> bool:
            scan(ctx)
            return ctx.get("PR") == 0 and first_candidate(ctx) is not None

        def propose_effect(ctx) -> None:
            candidate = first_candidate(ctx)
            assert candidate is not None
            ctx.set("PR", candidate)

        return (
            GuardedAction("publish", publish_guard, publish_effect),
            GuardedAction("abandon", abandon_guard, abandon_effect),
            GuardedAction("accept", accept_guard, accept_effect),
            GuardedAction("propose", propose_guard, propose_effect),
        )

    def is_legitimate(self, network: Network, config: Configuration) -> bool:
        return matching_predicate(network, config)
