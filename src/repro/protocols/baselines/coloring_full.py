"""Δ-efficient baseline coloring (Gradinariu-Tixeuil style).

The traditional silent coloring protocol the paper contrasts with in
§3.2: every process scans *all* neighbors in each step and, when it
clashes with any of them, redraws from the colors currently free in its
neighborhood.  Communication complexity per step is Δ·log(Δ+1) bits —
the factor-Δ overhead COLORING removes.
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

from ...core.actions import GuardedAction
from ...core.exceptions import TopologyError
from ...core.protocol import Protocol
from ...core.state import Configuration
from ...core.variables import FiniteSet, IntRange, VariableSpec, comm
from ...graphs.topology import Network
from ...predicates.coloring import coloring_predicate

ProcessId = Hashable


class FullReadColoring(Protocol):
    """Randomized Δ-efficient coloring over palette {1..Δ+1}."""

    name = "COLORING-full"
    randomized = True

    def __init__(self, palette_size: int):
        if palette_size < 2:
            raise ValueError("palette must contain at least 2 colors")
        self.palette = IntRange(1, palette_size)

    @classmethod
    def for_network(cls, network: Network) -> "FullReadColoring":
        return cls(network.max_degree + 1)

    def variables(self, network: Network, p: ProcessId) -> Tuple[VariableSpec, ...]:
        if network.degree(p) < 1:
            raise TopologyError("coloring requires every process to have a neighbor")
        return (comm("C", self.palette),)

    def actions(self) -> Tuple[GuardedAction, ...]:
        def clash(ctx) -> bool:
            own = ctx.get("C")
            return any(
                ctx.read(port, "C") == own for port in range(1, ctx.degree + 1)
            )

        def recolor(ctx) -> None:
            # Coin toss before recoloring: under a synchronous daemon
            # two clashing neighbors may both hold a single free color
            # and would swap in lockstep forever; keeping the current
            # color with probability 1/2 breaks the symmetry w.p. 1.
            if ctx.random_int(0, 1) == 0:
                return
            taken = {ctx.read(port, "C") for port in range(1, ctx.degree + 1)}
            free: List[int] = [c for c in self.palette if c not in taken]
            # Palette has Δ+1 ≥ δ.p + 1 colors, so free is never empty.
            ctx.set("C", free[ctx.random_int(0, len(free) - 1)])

        return (GuardedAction("recolor", clash, recolor),)

    def is_legitimate(self, network: Network, config: Configuration) -> bool:
        return coloring_predicate(network, config, var="C")
