"""Protocol COLORING (paper Figure 7).

A 1-efficient randomized silent protocol that stabilizes to the vertex
coloring predicate with probability 1 in arbitrary anonymous networks::

    Communication Variable:  C.p ∈ {1 .. Δ+1}
    Internal Variable:       cur.p ∈ [1 .. δ.p]
    Actions:
      (C.p = C.(cur.p)) → C.p ← random({1..Δ+1}); cur.p ← (cur.p mod δ.p)+1
      (C.p ≠ C.(cur.p)) → cur.p ← (cur.p mod δ.p)+1

Each process checks one neighbor per step in round-robin order; on a
color clash it redraws uniformly from the Δ+1 palette.  Δ+1 colors are
the minimum for arbitrary networks (a Δ-clique needs them all).
"""

from __future__ import annotations

from typing import Hashable, Tuple

from ..core.actions import GuardedAction
from ..core.exceptions import TopologyError
from ..core.protocol import Protocol
from ..core.state import Configuration
from ..core.variables import IntRange, VariableSpec, comm, internal
from ..graphs.topology import Network
from ..predicates.coloring import coloring_predicate

ProcessId = Hashable


class ColoringProtocol(Protocol):
    """The paper's Protocol COLORING, parameterised by the palette size.

    Parameters
    ----------
    palette_size:
        Number of colors; defaults to Δ+1 when built via
        :meth:`for_network`.  The protocol is correct for any size
        ≥ Δ+1 (larger palettes converge faster).
    """

    name = "COLORING"
    randomized = True

    def __init__(self, palette_size: int):
        if palette_size < 2:
            raise ValueError("palette must contain at least 2 colors")
        self.palette = IntRange(1, palette_size)
        # Spec tuples are degree-determined; memoizing them makes
        # specs_of/arbitrary_configuration O(distinct degrees) instead
        # of one dataclass pair per process, and lets the column store
        # resolve codecs once per distinct tuple.
        self._specs_by_degree = {}

    @classmethod
    def for_network(cls, network: Network, extra_colors: int = 0) -> "ColoringProtocol":
        """The canonical Δ+1-color instance for ``network``."""
        return cls(network.max_degree + 1 + extra_colors)

    # ------------------------------------------------------------------
    def variables(self, network: Network, p: ProcessId) -> Tuple[VariableSpec, ...]:
        degree = network.degree(p)
        specs = self._specs_by_degree.get(degree)
        if specs is None:
            if degree < 1:
                raise TopologyError(
                    "COLORING requires every process to have a neighbor"
                )
            specs = self._specs_by_degree[degree] = (
                comm("C", self.palette),
                internal("cur", IntRange(1, degree)),
            )
        return specs

    def actions(self) -> Tuple[GuardedAction, ...]:
        def clash(ctx) -> bool:
            return ctx.get("C") == ctx.read(ctx.get("cur"), "C")

        def recolor(ctx) -> None:
            ctx.set("C", ctx.random_choice(self.palette))
            ctx.advance("cur")

        def no_clash(ctx) -> bool:
            return ctx.get("C") != ctx.read(ctx.get("cur"), "C")

        def advance(ctx) -> None:
            ctx.advance("cur")

        return (
            GuardedAction("recolor", clash, recolor),
            GuardedAction("advance", no_clash, advance),
        )

    def is_legitimate(self, network: Network, config: Configuration) -> bool:
        return coloring_predicate(network, config, var="C")

    # ------------------------------------------------------------------
    def color_of(self, config: Configuration, p: ProcessId) -> int:
        """The paper's output function ``color.p`` — the value of C.p."""
        return config.get(p, "C")


# ----------------------------------------------------------------------
# Vectorized kernel (engine="batch")
# ----------------------------------------------------------------------
from ..core.batchengine import BatchKernel, register_batch_kernel  # noqa: E402


@register_batch_kernel(ColoringProtocol)
class ColoringBatchKernel(BatchKernel):
    """Whole-column COLORING guards.

    Every process is always enabled and reads exactly the neighbor at
    ``cur``: a clash fires ``recolor`` (fresh palette draw, one per
    clashing process in selection order — the same draw sequence as the
    scalar effects), otherwise ``advance``; both rotate ``cur``.
    """

    rule_names = ("recolor", "advance")

    def __init__(self, protocol, store):
        super().__init__(protocol, store)
        self._c = store.slot("C")
        self._cur = store.slot("cur")
        self._cbits = store.reg_bits("C")

    def classify(self, idx):
        store = self.store
        o = store.ops
        cur = o.take(store.col(self._cur), idx)
        q = o.take2(store.nbr, idx, o.add(cur, -1))
        c = o.take(store.col(self._c), idx)
        clash = o.eq(c, o.take(store.col(self._c), q))
        codes = o.where(clash, 0, 1)
        bits = o.take(self._cbits, q)
        return codes, cur, bits, (cur, c, clash)

    def plan_writes(self, idx, codes, aux, rng):
        cur, c, clash = aux
        store = self.store
        o = store.ops
        new_cur = o.add(o.mod(cur, o.take(store.deg, idx)), 1)
        writes = [(self._cur, o.tolist(idx), o.tolist(new_cur))]
        comm = []
        rec_idx = o.compress_list(idx, clash)
        if rec_idx:
            sample = self.protocol.palette.sample
            new_c = []
            for i, old in zip(rec_idx, o.compress_list(c, clash)):
                color = sample(rng)
                new_c.append(color)
                if color != old:
                    comm.append(i)
            writes.append((self._c, rec_idx, new_c))
        return writes, comm

    # -- resident-mode extensions ---------------------------------------
    def plan_writes_resident(self, codes, aux, rng):
        """Whole-network resident step: ``cur`` rotates as one column
        replacement; only clashing processes pay a sparse write (palette
        draws in selection order, the same sequence ``plan_writes``
        produces for the full network)."""
        cur, _c, clash = aux
        store = self.store
        o = store.ops
        store.write_col(self._cur, o.add(o.mod(cur, store.deg), 1))
        rec_idx = o.compress_list(store.all_idx, clash)
        if rec_idx:
            sample = self.protocol.palette.sample
            store.write(self._c, rec_idx, [sample(rng) for _ in rec_idx])

    def silent_cols(self) -> bool:
        """Silence straight from the columns: COLORING is silent exactly
        when the coloring is proper — a clashing edge keeps ``recolor``
        reachable via the ``cur`` rotation, a proper coloring disables
        it everywhere (the property suite pins this equivalence against
        the exact scalar checker)."""
        store = self.store
        c = store.col(self._c)
        if store.backend == "numpy":
            np = store.ops.np
            clash = c[store.nbr] == c[:, None]
            valid = (np.arange(store.max_degree)[None, :]
                     < store.deg[:, None])
            return not bool((clash & valid).any())
        for i, nb in enumerate(store.nbr):
            ci = c[i]
            for j in nb:
                if c[j] == ci:
                    return False
        return True
