"""Layered protocol composition.

The paper's MIS and MATCHING assume a locally identified network and
note that the local coloring "allows to deduce a dag-orientation".  This
module realises the natural pipeline: run protocol COLORING to silence,
harvest the stabilized colors as the local-identifier constants, and
instantiate MIS or MATCHING on top — an end-to-end anonymous-network
construction using only the paper's own protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.scheduler import Scheduler
from ..core.simulator import Simulator
from ..graphs.coloring import Coloring, assert_local_identifiers
from ..graphs.topology import Network
from .coloring import ColoringProtocol
from .matching import MatchingProtocol
from .mis import MISProtocol


@dataclass
class ColoringStage:
    """Result of the coloring stage of the pipeline."""

    colors: Coloring
    rounds: int
    steps: int


def colors_from_coloring_protocol(
    network: Network,
    seed: int = 0,
    scheduler: Optional[Scheduler] = None,
    max_rounds: int = 50_000,
    extra_colors: int = 0,
) -> ColoringStage:
    """Run COLORING to silence and extract the stabilized colors."""
    protocol = ColoringProtocol.for_network(network, extra_colors=extra_colors)
    sim = Simulator(protocol, network, scheduler=scheduler, seed=seed)
    report = sim.run_until_silent(max_rounds=max_rounds)
    colors = {p: sim.config.get(p, "C") for p in network.processes}
    assert_local_identifiers(network, colors)
    return ColoringStage(colors=colors, rounds=report.rounds, steps=report.steps)


def mis_over_coloring(
    network: Network, seed: int = 0, scheduler: Optional[Scheduler] = None
) -> MISProtocol:
    """An MIS instance whose identifier colors come from COLORING."""
    stage = colors_from_coloring_protocol(network, seed=seed, scheduler=scheduler)
    return MISProtocol(network, stage.colors)


def matching_over_coloring(
    network: Network, seed: int = 0, scheduler: Optional[Scheduler] = None
) -> MatchingProtocol:
    """A MATCHING instance whose identifier colors come from COLORING."""
    stage = colors_from_coloring_protocol(network, seed=seed, scheduler=scheduler)
    return MatchingProtocol(network, stage.colors)
