"""Protocol MATCHING (paper Figure 10).

A 1-efficient deterministic silent protocol that stabilizes to the
maximal matching predicate in locally identified networks.  Derived
from Manne, Mjelde, Pilard & Tixeuil (Sirocco 2007) with the round-robin
``cur`` pointer supplying the 1-efficiency::

    Communication Variables:  M.p ∈ {true, false},  PR.p ∈ {0 .. δ.p}
    Communication Constant:   C.p (color)
    Internal Variable:        cur.p ∈ [1 .. δ.p]
    Predicate:  PRmarried(p) ≡ (PR.p = cur.p ∧ PR.(cur.p) = p)
    Actions (priority order):
      (PR.p ∉ {0, cur.p})                                  → PR.p ← cur.p
      (M.p ≠ PRmarried(p))                                 → M.p ← PRmarried(p)
      (PR.p = 0 ∧ PR.(cur.p) = p)                          → PR.p ← cur.p
      (PR.p = cur.p ∧ PR.(cur.p) ≠ p
         ∧ (M.(cur.p) ∨ C.(cur.p) ≺ C.p))                  → PR.p ← 0
      (PR.p = 0 ∧ PR.(cur.p) = 0 ∧ C.p ≺ C.(cur.p)
         ∧ ¬M.(cur.p))                                     → PR.p ← cur.p
      (PR.p = 0 ∧ (PR.(cur.p) ≠ 0 ∨ C.(cur.p) ≺ C.p
         ∨ M.(cur.p)))                                     → cur.p ← (cur.p mod δ.p)+1

``PR`` values are local port indices; "PR.(cur.p) = p" tests whether the
pointed neighbor's pointer leads back across the shared edge, which the
simulator resolves through the port maps of both endpoints.

Convergence: at most (Δ+1)·n + 2 rounds (Lemma 9) — the married set only
grows, and each maximal connected set of unmarried processes loses two
members every 2Δ+2 rounds (Lemma 8).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from ..core.actions import GuardedAction
from ..core.exceptions import TopologyError
from ..core.protocol import Protocol
from ..core.state import Configuration
from ..core.variables import BOOL, IntRange, VariableSpec, const, comm, internal
from ..graphs.coloring import Coloring, assert_local_identifiers
from ..graphs.topology import Network
from ..predicates.matching import matched_edges, matching_predicate

ProcessId = Hashable


class MatchingProtocol(Protocol):
    """The paper's Protocol MATCHING over a local-identifier coloring."""

    name = "MATCHING"
    randomized = False

    def __init__(self, network: Network, colors: Coloring):
        assert_local_identifiers(network, colors)
        self.colors: Dict[ProcessId, int] = dict(colors)
        self._color_domain = IntRange(
            min(self.colors.values()), max(self.colors.values())
        )
        # Spec tuples are degree-determined (the color constant's
        # per-process *value* lives in constant_values); memoized so
        # specs_of costs O(distinct degrees) dataclass builds.
        self._specs_by_degree: Dict[int, Tuple[VariableSpec, ...]] = {}

    # ------------------------------------------------------------------
    def variables(self, network: Network, p: ProcessId) -> Tuple[VariableSpec, ...]:
        degree = network.degree(p)
        specs = self._specs_by_degree.get(degree)
        if specs is None:
            if degree < 1:
                raise TopologyError(
                    "MATCHING requires every process to have a neighbor"
                )
            specs = self._specs_by_degree[degree] = (
                comm("M", BOOL),
                comm("PR", IntRange(0, degree)),
                const("C", self._color_domain),
                internal("cur", IntRange(1, degree)),
            )
        return specs

    def constant_values(self, network: Network, p: ProcessId) -> Dict[str, int]:
        return {"C": self.colors[p]}

    # ------------------------------------------------------------------
    @staticmethod
    def _points_back(ctx, port: int) -> bool:
        """PR.(port) = p — does the pointed neighbor's PR cross back?"""
        pr_q = ctx.read(port, "PR")
        if pr_q == 0:
            return False
        q = ctx.network.neighbor_at(ctx.pid, port)
        return ctx.network.neighbor_at(q, pr_q) == ctx.pid

    @classmethod
    def _pr_married(cls, ctx) -> bool:
        """PRmarried(p) ≡ PR.p = cur.p ∧ PR.(cur.p) = p."""
        cur = ctx.get("cur")
        if ctx.get("PR") != cur:
            return False
        return cls._points_back(ctx, cur)

    def actions(self) -> Tuple[GuardedAction, ...]:
        points_back = self._points_back
        pr_married = self._pr_married

        # 1. (PR.p ∉ {0, cur.p}) → PR.p ← cur.p
        def realign_guard(ctx) -> bool:
            return ctx.get("PR") not in (0, ctx.get("cur"))

        def realign_effect(ctx) -> None:
            ctx.set("PR", ctx.get("cur"))

        # 2. (M.p ≠ PRmarried(p)) → M.p ← PRmarried(p)
        def publish_guard(ctx) -> bool:
            return ctx.get("M") != pr_married(ctx)

        def publish_effect(ctx) -> None:
            ctx.set("M", pr_married(ctx))

        # 3. (PR.p = 0 ∧ PR.(cur.p) = p) → PR.p ← cur.p
        def accept_guard(ctx) -> bool:
            return ctx.get("PR") == 0 and points_back(ctx, ctx.get("cur"))

        def accept_effect(ctx) -> None:
            ctx.set("PR", ctx.get("cur"))

        # 4. (PR.p = cur.p ∧ PR.(cur.p) ≠ p ∧ (M.(cur.p) ∨ C.(cur.p) ≺ C.p))
        #        → PR.p ← 0
        def abandon_guard(ctx) -> bool:
            cur = ctx.get("cur")
            if ctx.get("PR") != cur or points_back(ctx, cur):
                return False
            return ctx.read(cur, "M") or ctx.read(cur, "C") < ctx.get("C")

        def abandon_effect(ctx) -> None:
            ctx.set("PR", 0)

        # 5. (PR.p = 0 ∧ PR.(cur.p) = 0 ∧ C.p ≺ C.(cur.p) ∧ ¬M.(cur.p))
        #        → PR.p ← cur.p
        def propose_guard(ctx) -> bool:
            cur = ctx.get("cur")
            return (
                ctx.get("PR") == 0
                and ctx.read(cur, "PR") == 0
                and ctx.get("C") < ctx.read(cur, "C")
                and not ctx.read(cur, "M")
            )

        def propose_effect(ctx) -> None:
            ctx.set("PR", ctx.get("cur"))

        # 6. (PR.p = 0 ∧ (PR.(cur.p) ≠ 0 ∨ C.(cur.p) ≺ C.p ∨ M.(cur.p)))
        #        → cur.p ← (cur.p mod δ.p)+1
        def seek_guard(ctx) -> bool:
            cur = ctx.get("cur")
            if ctx.get("PR") != 0:
                return False
            return (
                ctx.read(cur, "PR") != 0
                or ctx.read(cur, "C") < ctx.get("C")
                or ctx.read(cur, "M")
            )

        def seek_effect(ctx) -> None:
            ctx.advance("cur")

        return (
            GuardedAction("realign", realign_guard, realign_effect),
            GuardedAction("publish", publish_guard, publish_effect),
            GuardedAction("accept", accept_guard, accept_effect),
            GuardedAction("abandon", abandon_guard, abandon_effect),
            GuardedAction("propose", propose_guard, propose_effect),
            GuardedAction("seek", seek_guard, seek_effect),
        )

    def is_legitimate(self, network: Network, config: Configuration) -> bool:
        return matching_predicate(network, config)

    # ------------------------------------------------------------------
    def in_matching(
        self, network: Network, config: Configuration, p: ProcessId, q: ProcessId
    ) -> bool:
        """The paper's output ``inMM[q].p ∨ inMM[p].q`` for edge {p, q}."""
        return (p, q) in matched_edges(network, config) or (q, p) in matched_edges(
            network, config
        )

    def matching(self, network: Network, config: Configuration) -> List[Tuple]:
        return matched_edges(network, config)


# ----------------------------------------------------------------------
# Vectorized kernel (engine="batch")
# ----------------------------------------------------------------------
from ..core.batchengine import BatchKernel, register_batch_kernel  # noqa: E402


@register_batch_kernel(MatchingProtocol)
class MatchingBatchKernel(BatchKernel):
    """Whole-column MATCHING guards.

    The six-action cascade partitions on ``PR.p``: pointing elsewhere
    (``realign``, no reads), pointing at ``cur`` (``publish`` /
    ``abandon`` / disabled — registers charged in PR, M, C order), or
    null (``publish`` / ``accept`` / ``propose`` / ``seek`` / disabled
    — PR, C, M order), exactly the scalar guards' short-circuit walk.
    ``PR.(cur.p) = p`` resolves through both endpoints' port maps via
    the store's neighbor-index matrix.
    """

    rule_names = ("realign", "publish", "accept", "abandon", "propose", "seek")

    def __init__(self, protocol, store):
        super().__init__(protocol, store)
        self._m = store.slot("M")
        self._pr = store.slot("PR")
        self._c = store.slot("C")
        self._cur = store.slot("cur")
        self._prbits = store.reg_bits("PR")
        self._mbits = store.reg_bits("M")
        self._cbits = store.reg_bits("C")

    def classify(self, idx):
        store = self.store
        o = store.ops
        m = o.take(store.col(self._m), idx)
        pr = o.take(store.col(self._pr), idx)
        c = o.take(store.col(self._c), idx)
        cur = o.take(store.col(self._cur), idx)
        q = o.take2(store.nbr, idx, o.add(cur, -1))
        prq = o.take(store.col(self._pr), q)
        mq = o.eq(o.take(store.col(self._m), q), 1)
        cq = o.take(store.col(self._c), q)
        # PR.(cur.p) = p: q's pointed port leads back across the edge.
        # A null PR.q gathers the wrapped column harmlessly — masked out.
        back = o.take2(store.nbr, q, o.add(prq, -1))
        pb = o.and_(o.ne(prq, 0), o.eq(back, idx))

        case_a = o.and_(o.ne(pr, 0), o.ne(pr, cur))
        case_b = o.eq(pr, cur)
        # -- PR.p = cur.p: publish / (pointed-back: disabled) / abandon
        b_pub = o.ne(m, o.where(pb, 1, 0))
        abandons = o.or_(mq, o.lt(cq, c))
        codes_b = o.where(b_pub, 1, o.where(pb, -1, o.where(abandons, 3, -1)))
        read_m_b = o.and_(o.not_(b_pub), o.not_(pb))
        read_c_b = o.and_(read_m_b, o.not_(mq))
        # -- PR.p = 0: publish / accept / propose / seek / disabled
        c_pub = o.eq(m, 1)
        prq0 = o.eq(prq, 0)
        c_lt = o.lt(c, cq)
        cq_lt = o.lt(cq, c)
        inner = o.where(
            c_lt,
            o.where(mq, 5, 4),
            o.where(cq_lt, 5, o.where(mq, 5, -1)),
        )
        codes_c = o.where(
            c_pub, 1, o.where(pb, 2, o.where(o.not_(prq0), 5, inner))
        )
        read_pr_c = o.not_(c_pub)
        read_c_c = o.and_(read_pr_c, o.and_(o.not_(pb), prq0))
        read_m_c = o.and_(read_c_c, o.or_(c_lt, o.eq(cq, c)))

        codes = o.where(case_a, 0, o.where(case_b, codes_b, codes_c))
        has_read = o.where(case_a, False, o.where(case_b, True, read_pr_c))
        ports = o.where(has_read, cur, 0)
        prb = o.take(self._prbits, q)
        mb = o.take(self._mbits, q)
        cb = o.take(self._cbits, q)
        bits_b = o.where(
            read_c_b,
            o.add(o.add(prb, mb), cb),
            o.where(read_m_b, o.add(prb, mb), prb),
        )
        bits_c = o.where(
            read_m_c,
            o.add(o.add(prb, cb), mb),
            o.where(read_c_c, o.add(prb, cb), prb),
        )
        bits = o.where(
            case_a, 0.0, o.where(case_b, bits_b, o.where(read_pr_c, bits_c, 0.0))
        )
        return codes, ports, bits, (cur, pb, case_b)

    def plan_writes(self, idx, codes, aux, rng):
        cur, pb, case_b = aux
        store = self.store
        o = store.ops
        writes = []
        # realign/accept/propose point PR at cur; abandon nulls it.
        pr_cur = o.or_(o.eq(codes, 0), o.or_(o.eq(codes, 2), o.eq(codes, 4)))
        pr_any = o.or_(pr_cur, o.eq(codes, 3))
        pr_idx = o.compress_list(idx, pr_any)
        if pr_idx:
            vals = o.where(pr_cur, cur, 0)
            writes.append((self._pr, pr_idx, o.compress_list(vals, pr_any)))
        is_pub = o.eq(codes, 1)
        pub_idx = o.compress_list(idx, is_pub)
        if pub_idx:
            # M <- PRmarried(p) against the same pre-step columns.
            m_vals = o.where(o.and_(pb, case_b), 1, 0)
            writes.append((self._m, pub_idx, o.compress_list(m_vals, is_pub)))
        is_seek = o.eq(codes, 5)
        seek_idx = o.compress_list(idx, is_seek)
        if seek_idx:
            new_cur = o.add(o.mod(cur, o.take(store.deg, idx)), 1)
            writes.append((self._cur, seek_idx, o.compress_list(new_cur, is_seek)))
        # Every fired PR/M write lands a changed communication value.
        return writes, pr_idx + pub_idx
