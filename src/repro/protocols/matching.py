"""Protocol MATCHING (paper Figure 10).

A 1-efficient deterministic silent protocol that stabilizes to the
maximal matching predicate in locally identified networks.  Derived
from Manne, Mjelde, Pilard & Tixeuil (Sirocco 2007) with the round-robin
``cur`` pointer supplying the 1-efficiency::

    Communication Variables:  M.p ∈ {true, false},  PR.p ∈ {0 .. δ.p}
    Communication Constant:   C.p (color)
    Internal Variable:        cur.p ∈ [1 .. δ.p]
    Predicate:  PRmarried(p) ≡ (PR.p = cur.p ∧ PR.(cur.p) = p)
    Actions (priority order):
      (PR.p ∉ {0, cur.p})                                  → PR.p ← cur.p
      (M.p ≠ PRmarried(p))                                 → M.p ← PRmarried(p)
      (PR.p = 0 ∧ PR.(cur.p) = p)                          → PR.p ← cur.p
      (PR.p = cur.p ∧ PR.(cur.p) ≠ p
         ∧ (M.(cur.p) ∨ C.(cur.p) ≺ C.p))                  → PR.p ← 0
      (PR.p = 0 ∧ PR.(cur.p) = 0 ∧ C.p ≺ C.(cur.p)
         ∧ ¬M.(cur.p))                                     → PR.p ← cur.p
      (PR.p = 0 ∧ (PR.(cur.p) ≠ 0 ∨ C.(cur.p) ≺ C.p
         ∨ M.(cur.p)))                                     → cur.p ← (cur.p mod δ.p)+1

``PR`` values are local port indices; "PR.(cur.p) = p" tests whether the
pointed neighbor's pointer leads back across the shared edge, which the
simulator resolves through the port maps of both endpoints.

Convergence: at most (Δ+1)·n + 2 rounds (Lemma 9) — the married set only
grows, and each maximal connected set of unmarried processes loses two
members every 2Δ+2 rounds (Lemma 8).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from ..core.actions import GuardedAction
from ..core.exceptions import TopologyError
from ..core.protocol import Protocol
from ..core.state import Configuration
from ..core.variables import BOOL, IntRange, VariableSpec, const, comm, internal
from ..graphs.coloring import Coloring, assert_local_identifiers
from ..graphs.topology import Network
from ..predicates.matching import matched_edges, matching_predicate

ProcessId = Hashable


class MatchingProtocol(Protocol):
    """The paper's Protocol MATCHING over a local-identifier coloring."""

    name = "MATCHING"
    randomized = False

    def __init__(self, network: Network, colors: Coloring):
        assert_local_identifiers(network, colors)
        self.colors: Dict[ProcessId, int] = dict(colors)
        self._color_domain = IntRange(
            min(self.colors.values()), max(self.colors.values())
        )

    # ------------------------------------------------------------------
    def variables(self, network: Network, p: ProcessId) -> Tuple[VariableSpec, ...]:
        degree = network.degree(p)
        if degree < 1:
            raise TopologyError("MATCHING requires every process to have a neighbor")
        return (
            comm("M", BOOL),
            comm("PR", IntRange(0, degree)),
            const("C", self._color_domain),
            internal("cur", IntRange(1, degree)),
        )

    def constant_values(self, network: Network, p: ProcessId) -> Dict[str, int]:
        return {"C": self.colors[p]}

    # ------------------------------------------------------------------
    @staticmethod
    def _points_back(ctx, port: int) -> bool:
        """PR.(port) = p — does the pointed neighbor's PR cross back?"""
        pr_q = ctx.read(port, "PR")
        if pr_q == 0:
            return False
        q = ctx.network.neighbor_at(ctx.pid, port)
        return ctx.network.neighbor_at(q, pr_q) == ctx.pid

    @classmethod
    def _pr_married(cls, ctx) -> bool:
        """PRmarried(p) ≡ PR.p = cur.p ∧ PR.(cur.p) = p."""
        cur = ctx.get("cur")
        if ctx.get("PR") != cur:
            return False
        return cls._points_back(ctx, cur)

    def actions(self) -> Tuple[GuardedAction, ...]:
        points_back = self._points_back
        pr_married = self._pr_married

        # 1. (PR.p ∉ {0, cur.p}) → PR.p ← cur.p
        def realign_guard(ctx) -> bool:
            return ctx.get("PR") not in (0, ctx.get("cur"))

        def realign_effect(ctx) -> None:
            ctx.set("PR", ctx.get("cur"))

        # 2. (M.p ≠ PRmarried(p)) → M.p ← PRmarried(p)
        def publish_guard(ctx) -> bool:
            return ctx.get("M") != pr_married(ctx)

        def publish_effect(ctx) -> None:
            ctx.set("M", pr_married(ctx))

        # 3. (PR.p = 0 ∧ PR.(cur.p) = p) → PR.p ← cur.p
        def accept_guard(ctx) -> bool:
            return ctx.get("PR") == 0 and points_back(ctx, ctx.get("cur"))

        def accept_effect(ctx) -> None:
            ctx.set("PR", ctx.get("cur"))

        # 4. (PR.p = cur.p ∧ PR.(cur.p) ≠ p ∧ (M.(cur.p) ∨ C.(cur.p) ≺ C.p))
        #        → PR.p ← 0
        def abandon_guard(ctx) -> bool:
            cur = ctx.get("cur")
            if ctx.get("PR") != cur or points_back(ctx, cur):
                return False
            return ctx.read(cur, "M") or ctx.read(cur, "C") < ctx.get("C")

        def abandon_effect(ctx) -> None:
            ctx.set("PR", 0)

        # 5. (PR.p = 0 ∧ PR.(cur.p) = 0 ∧ C.p ≺ C.(cur.p) ∧ ¬M.(cur.p))
        #        → PR.p ← cur.p
        def propose_guard(ctx) -> bool:
            cur = ctx.get("cur")
            return (
                ctx.get("PR") == 0
                and ctx.read(cur, "PR") == 0
                and ctx.get("C") < ctx.read(cur, "C")
                and not ctx.read(cur, "M")
            )

        def propose_effect(ctx) -> None:
            ctx.set("PR", ctx.get("cur"))

        # 6. (PR.p = 0 ∧ (PR.(cur.p) ≠ 0 ∨ C.(cur.p) ≺ C.p ∨ M.(cur.p)))
        #        → cur.p ← (cur.p mod δ.p)+1
        def seek_guard(ctx) -> bool:
            cur = ctx.get("cur")
            if ctx.get("PR") != 0:
                return False
            return (
                ctx.read(cur, "PR") != 0
                or ctx.read(cur, "C") < ctx.get("C")
                or ctx.read(cur, "M")
            )

        def seek_effect(ctx) -> None:
            ctx.advance("cur")

        return (
            GuardedAction("realign", realign_guard, realign_effect),
            GuardedAction("publish", publish_guard, publish_effect),
            GuardedAction("accept", accept_guard, accept_effect),
            GuardedAction("abandon", abandon_guard, abandon_effect),
            GuardedAction("propose", propose_guard, propose_effect),
            GuardedAction("seek", seek_guard, seek_effect),
        )

    def is_legitimate(self, network: Network, config: Configuration) -> bool:
        return matching_predicate(network, config)

    # ------------------------------------------------------------------
    def in_matching(
        self, network: Network, config: Configuration, p: ProcessId, q: ProcessId
    ) -> bool:
        """The paper's output ``inMM[q].p ∨ inMM[p].q`` for edge {p, q}."""
        return (p, q) in matched_edges(network, config) or (q, p) in matched_edges(
            network, config
        )

    def matching(self, network: Network, config: Configuration) -> List[Tuple]:
        return matched_edges(network, config)
