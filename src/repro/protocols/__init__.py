"""The paper's 1-efficient protocols, their Δ-efficient baselines, and
layered composition helpers."""

from .baselines import FullReadColoring, FullReadMatching, FullReadMIS
from .coloring import ColoringProtocol
from .kefficient import WindowColoringProtocol, WindowMISProtocol
from .composite import (
    ColoringStage,
    colors_from_coloring_protocol,
    matching_over_coloring,
    mis_over_coloring,
)
from .matching import MatchingProtocol
from .mis import MISProtocol

__all__ = [
    "ColoringProtocol",
    "ColoringStage",
    "WindowColoringProtocol",
    "WindowMISProtocol",
    "FullReadColoring",
    "FullReadMIS",
    "FullReadMatching",
    "MISProtocol",
    "MatchingProtocol",
    "colors_from_coloring_protocol",
    "matching_over_coloring",
    "mis_over_coloring",
]
