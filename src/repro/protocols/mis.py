"""Protocol MIS (paper Figure 8).

A 1-efficient deterministic silent protocol that stabilizes to the
maximal independent set predicate in *locally identified* networks —
each process carries a communication constant color ``C.p`` distinct
from every neighbor's, totally ordered by ``≺``::

    Communication Variable:  S.p ∈ {Dominator, dominated}
    Communication Constant:  C.p (color)
    Internal Variable:       cur.p ∈ [1 .. δ.p]
    Actions (priority order):
      (S.(cur.p)=Dominator ∧ C.(cur.p) ≺ C.p ∧ S.p=Dominator)
          → S.p ← dominated
      ((S.(cur.p)=dominated ∨ C.p ≺ C.(cur.p)) ∧ S.p=dominated)
          → S.p ← Dominator; cur.p ← (cur.p mod δ.p)+1
      (S.p=Dominator)
          → cur.p ← (cur.p mod δ.p)+1

Convergence: at most Δ·#C rounds (Lemma 4), by induction over the color
ranks — the colors' order induces a dag (Theorem 4) along which
decisions become final bottom-up.
"""

from __future__ import annotations

from typing import Dict, Hashable, Set, Tuple

from ..core.actions import GuardedAction
from ..core.exceptions import TopologyError
from ..core.protocol import Protocol
from ..core.state import Configuration
from ..core.variables import FiniteSet, IntRange, VariableSpec, const, comm, internal
from ..graphs.coloring import Coloring, assert_local_identifiers
from ..graphs.topology import Network
from ..predicates.mis import DOMINATED, DOMINATOR, mis_predicate

ProcessId = Hashable

S_DOMAIN = FiniteSet((DOMINATOR, DOMINATED))


class MISProtocol(Protocol):
    """The paper's Protocol MIS over a given local-identifier coloring."""

    name = "MIS"
    randomized = False

    def __init__(self, network: Network, colors: Coloring):
        assert_local_identifiers(network, colors)
        self.colors: Dict[ProcessId, int] = dict(colors)
        self._color_domain = IntRange(
            min(self.colors.values()), max(self.colors.values())
        )
        # Spec tuples are degree-determined (the color constant's
        # per-process *value* lives in constant_values); memoized so
        # specs_of costs O(distinct degrees) dataclass builds.
        self._specs_by_degree: Dict[int, Tuple[VariableSpec, ...]] = {}

    # ------------------------------------------------------------------
    def variables(self, network: Network, p: ProcessId) -> Tuple[VariableSpec, ...]:
        degree = network.degree(p)
        specs = self._specs_by_degree.get(degree)
        if specs is None:
            if degree < 1:
                raise TopologyError(
                    "MIS requires every process to have a neighbor"
                )
            specs = self._specs_by_degree[degree] = (
                comm("S", S_DOMAIN),
                const("C", self._color_domain),
                internal("cur", IntRange(1, degree)),
            )
        return specs

    def constant_values(self, network: Network, p: ProcessId) -> Dict[str, int]:
        return {"C": self.colors[p]}

    def actions(self) -> Tuple[GuardedAction, ...]:
        def yield_guard(ctx) -> bool:
            if ctx.get("S") != DOMINATOR:
                return False
            port = ctx.get("cur")
            return (
                ctx.read(port, "S") == DOMINATOR
                and ctx.read(port, "C") < ctx.get("C")
            )

        def yield_effect(ctx) -> None:
            ctx.set("S", DOMINATED)

        def claim_guard(ctx) -> bool:
            if ctx.get("S") != DOMINATED:
                return False
            port = ctx.get("cur")
            return (
                ctx.read(port, "S") == DOMINATED
                or ctx.get("C") < ctx.read(port, "C")
            )

        def claim_effect(ctx) -> None:
            ctx.set("S", DOMINATOR)
            ctx.advance("cur")

        def patrol_guard(ctx) -> bool:
            return ctx.get("S") == DOMINATOR

        def patrol_effect(ctx) -> None:
            ctx.advance("cur")

        return (
            GuardedAction("yield", yield_guard, yield_effect),
            GuardedAction("claim", claim_guard, claim_effect),
            GuardedAction("patrol", patrol_guard, patrol_effect),
        )

    def is_legitimate(self, network: Network, config: Configuration) -> bool:
        return mis_predicate(network, config, var="S")

    # ------------------------------------------------------------------
    def in_mis(self, config: Configuration, p: ProcessId) -> bool:
        """The paper's output function ``inMIS.p``."""
        return config.get(p, "S") == DOMINATOR

    def independent_set(self, network: Network, config: Configuration) -> Set[ProcessId]:
        return {p for p in network.processes if self.in_mis(config, p)}


# ----------------------------------------------------------------------
# Vectorized kernel (engine="batch")
# ----------------------------------------------------------------------
from ..core.batchengine import BatchKernel, register_batch_kernel  # noqa: E402


@register_batch_kernel(MISProtocol)
class MISBatchKernel(BatchKernel):
    """Whole-column MIS guards.

    Mirrors the scalar cascade's short-circuits exactly: the neighbor's
    ``S`` is always read, its color only when ``S.(cur.p)=Dominator``
    (both the yield comparison and the claim disjunction stop there
    otherwise), which fixes the charged bits per branch.
    """

    rule_names = ("yield", "claim", "patrol")

    def __init__(self, protocol, store):
        super().__init__(protocol, store)
        self._s = store.slot("S")
        self._c = store.slot("C")
        self._cur = store.slot("cur")
        self._dom = store.encode(self._s, DOMINATOR)
        self._dominated = store.encode(self._s, DOMINATED)
        self._sbits = store.reg_bits("S")
        self._cbits = store.reg_bits("C")

    def classify(self, idx):
        store = self.store
        o = store.ops
        s = o.take(store.col(self._s), idx)
        c = o.take(store.col(self._c), idx)
        cur = o.take(store.col(self._cur), idx)
        q = o.take2(store.nbr, idx, o.add(cur, -1))
        sq_dom = o.eq(o.take(store.col(self._s), q), self._dom)
        cq = o.take(store.col(self._c), q)
        yields = o.and_(sq_dom, o.lt(cq, c))
        claims = o.or_(o.not_(sq_dom), o.lt(c, cq))
        codes = o.where(
            o.eq(s, self._dom),
            o.where(yields, 0, 2),
            o.where(claims, 1, -1),
        )
        sb = o.take(self._sbits, q)
        bits = o.where(sq_dom, o.add(sb, o.take(self._cbits, q)), sb)
        return codes, cur, bits, cur

    def plan_writes(self, idx, codes, aux, rng):
        cur = aux
        store = self.store
        o = store.ops
        writes = []
        y_idx = o.compress_list(idx, o.eq(codes, 0))
        if y_idx:
            writes.append((self._s, y_idx, [self._dominated] * len(y_idx)))
        is_claim = o.eq(codes, 1)
        c_idx = o.compress_list(idx, is_claim)
        if c_idx:
            writes.append((self._s, c_idx, [self._dom] * len(c_idx)))
        moves = o.or_(is_claim, o.eq(codes, 2))
        m_idx = o.compress_list(idx, moves)
        if m_idx:
            new_cur = o.add(o.mod(cur, o.take(store.deg, idx)), 1)
            writes.append((self._cur, m_idx, o.compress_list(new_cur, moves)))
        return writes, y_idx + c_idx
