"""Recovery measurement under repeated transient faults.

Quantifies what self-stabilization buys in operational terms:

* :func:`measure_recovery` — inject one fault into a stabilized system
  and report the rounds until silence returns;
* :func:`availability_experiment` — inject faults periodically and
  measure the fraction of steps the system spent legitimate, the
  steady-state availability figure a deployment would care about.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.protocol import Protocol
from ..core.scheduler import Scheduler
from ..core.simulator import Simulator
from .injection import corrupt_fraction

FaultFn = Callable[[Simulator, random.Random], object]


@dataclass
class RecoveryReport:
    """Outcome of a single fault / recovery cycle."""

    victims: int
    disturbed: bool
    rounds_to_recover: int
    steps_to_recover: int


def measure_recovery(
    sim: Simulator,
    fault: FaultFn,
    rng: random.Random,
    max_rounds: int = 50_000,
) -> RecoveryReport:
    """Stabilize, inject ``fault``, and time re-stabilization."""
    sim.run_until_silent(max_rounds=max_rounds)
    victims = fault(sim, rng)
    disturbed = not sim.is_silent()
    round_before = sim.round_tracker.completed_rounds
    step_before = sim.step_index
    report = sim.run_until_silent(max_rounds=max_rounds)
    return RecoveryReport(
        victims=len(victims) if isinstance(victims, list) else -1,
        disturbed=disturbed,
        rounds_to_recover=report.rounds - round_before,
        steps_to_recover=report.steps - step_before,
    )


@dataclass
class AvailabilityReport:
    """Outcome of a long run with periodic faults."""

    total_steps: int
    legitimate_steps: int
    faults_injected: int
    recoveries: List[int] = field(default_factory=list)

    @property
    def availability(self) -> float:
        """Fraction of steps spent in a legitimate configuration."""
        if self.total_steps == 0:
            return 1.0
        return self.legitimate_steps / self.total_steps

    @property
    def mean_recovery_rounds(self) -> float:
        if not self.recoveries:
            return 0.0
        return sum(self.recoveries) / len(self.recoveries)


def availability_experiment(
    protocol: Protocol,
    network,
    fault_period_rounds: int = 20,
    fault_fraction: float = 0.2,
    total_rounds: int = 200,
    scheduler: Optional[Scheduler] = None,
    seed: int = 0,
) -> AvailabilityReport:
    """Run ``total_rounds`` with a fault every ``fault_period_rounds``.

    Tracks per-step legitimacy, so the availability figure reflects both
    how often faults strike and how quickly the protocol cleans up.
    """
    rng = random.Random(seed ^ 0x5EED)
    sim = Simulator(protocol, network, scheduler=scheduler, seed=seed)
    report = AvailabilityReport(0, 0, 0)

    recovering_since: Optional[int] = None
    next_fault = fault_period_rounds
    while sim.round_tracker.completed_rounds < total_rounds:
        record = sim.step()
        report.total_steps += 1
        legitimate = sim.is_legitimate()
        if legitimate:
            report.legitimate_steps += 1
            if recovering_since is not None:
                report.recoveries.append(
                    sim.round_tracker.completed_rounds - recovering_since
                )
                recovering_since = None
        if record.closed_round and sim.round_tracker.completed_rounds >= next_fault:
            corrupt_fraction(sim, fault_fraction, rng)
            report.faults_injected += 1
            next_fault += fault_period_rounds
            if not sim.is_legitimate() and recovering_since is None:
                recovering_since = sim.round_tracker.completed_rounds
    return report
