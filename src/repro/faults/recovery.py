"""Recovery measurement under repeated transient faults.

Quantifies what self-stabilization buys in operational terms:

* :func:`measure_recovery` — inject one fault into a stabilized system
  and report the rounds until silence returns;
* :func:`availability_experiment` — inject faults periodically and
  measure the fraction of steps the system spent legitimate, the
  steady-state availability figure a deployment would care about.

Both are thin wrappers over the scenario subsystem
(:mod:`repro.scenarios`): the fault schedules are canned scenarios,
the measurements are the scenario runtime's recovery/availability
trackers, and the same numbers stream through the tiered metrics
collector for spec-driven runs (``ExperimentSpec(scenario=...)``, the
``availability`` CLI subcommand).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.protocol import Protocol
from ..core.scheduler import Scheduler
from ..core.simulator import Simulator

# NOTE: repro.scenarios is imported lazily inside the wrappers — the
# scenario event DSL itself builds on repro.faults.injection, so a
# module-level import here would be circular.

FaultFn = Callable[[Simulator, random.Random], object]


@dataclass
class RecoveryReport:
    """Outcome of a single fault / recovery cycle."""

    victims: int
    disturbed: bool
    rounds_to_recover: int
    steps_to_recover: int
    #: neighbor-read bits spent between the fault and re-silence
    post_fault_bits: float = 0.0


def measure_recovery(
    sim: Simulator,
    fault: FaultFn,
    rng: random.Random,
    max_rounds: int = 50_000,
) -> RecoveryReport:
    """Stabilize, inject ``fault``, and time re-stabilization.

    Implemented as a one-event scenario (``after_silence`` →
    ``fault``) installed on the live simulator: the scenario runtime
    measures the recovery cycle, so the numbers here are the same ones
    a spec-driven ``single-fault`` scenario reports.  ``fault`` keeps
    its historical callable signature and is handed the caller's
    ``rng`` (not the scenario stream).
    """
    from ..scenarios import Callback, Scenario, ScenarioEvent, after_silence

    outcome: dict = {}

    def apply_fault(s: Simulator, _scenario_rng) -> None:
        outcome["report"] = fault(s, rng)

    scenario = Scenario(
        "recovery-probe",
        events=(ScenarioEvent(after_silence(), Callback(apply_fault)),),
    )
    sim.install_scenario(scenario)
    runtime = sim.scenario_runtime

    sim.run_until_silent(max_rounds=max_rounds)
    # The after-silence event fires at the next round boundary; step
    # through it (no-op steps while silent are harmless).
    while not runtime.exhausted:
        sim.run_rounds(1)
    victims = outcome.get("report")
    disturbed = not sim.is_silent()
    if disturbed:
        sim.run_until_silent(max_rounds=max_rounds)
    rounds, steps, bits = (
        runtime.silence_recoveries[-1]
        if runtime.silence_recoveries else (0, 0, 0.0)
    )
    return RecoveryReport(
        victims=len(victims) if hasattr(victims, "__len__") else -1,
        disturbed=disturbed,
        rounds_to_recover=rounds,
        steps_to_recover=steps,
        post_fault_bits=bits,
    )


@dataclass
class AvailabilityReport:
    """Outcome of a long run with periodic faults."""

    total_steps: int
    legitimate_steps: int
    faults_injected: int
    recoveries: List[int] = field(default_factory=list)

    @property
    def availability(self) -> float:
        """Fraction of steps spent in a legitimate configuration."""
        if self.total_steps == 0:
            return 1.0
        return self.legitimate_steps / self.total_steps

    @property
    def mean_recovery_rounds(self) -> float:
        if not self.recoveries:
            return 0.0
        return sum(self.recoveries) / len(self.recoveries)


def availability_experiment(
    protocol: Protocol,
    network,
    fault_period_rounds: int = 20,
    fault_fraction: float = 0.2,
    total_rounds: int = 200,
    scheduler: Optional[Scheduler] = None,
    seed: int = 0,
) -> AvailabilityReport:
    """Run ``total_rounds`` with a fault every ``fault_period_rounds``.

    A thin wrapper over the canned ``periodic-faults`` scenario: the
    scenario runtime tracks per-step legitimacy, so the availability
    figure reflects both how often faults strike and how quickly the
    protocol cleans up.  Spec-driven runs get the identical numbers via
    ``ExperimentSpec(scenario="periodic-faults", ...)``.
    """
    from ..scenarios.library import build_scenario

    scenario = build_scenario("periodic-faults", {
        "period_rounds": fault_period_rounds,
        "fraction": fault_fraction,
        "total_rounds": total_rounds,
    })
    sim = Simulator(
        protocol, network, scheduler=scheduler, seed=seed, scenario=scenario
    )
    sim.run_rounds(total_rounds)
    runtime = sim.scenario_runtime
    return AvailabilityReport(
        total_steps=runtime.observed_steps,
        legitimate_steps=runtime.legitimate_steps,
        faults_injected=len(runtime.applied),
        recoveries=list(runtime.legit_recoveries),
    )
