"""Transient fault injection.

Self-stabilization's fault model is brutal and simple: a transient
fault writes *arbitrary values* into the variables of affected
processes (communication constants excluded — they model read-only
hardware like a burned-in color).  This module provides composable
fault shapes over a live :class:`~repro.core.simulator.Simulator`:

* :func:`corrupt_processes` — arbitrary values at chosen victims;
* :func:`corrupt_fraction` — a random fraction of the network;
* :func:`corrupt_comm_only` / :func:`corrupt_internal_only` — split
  corruption along the paper's variable-kind distinction (useful for
  testing that internal-pointer corruption alone cannot break a silent
  configuration's *communication* fixed point);
* :func:`adversarial_reset` — set every process to one fixed state
  (e.g. "everyone thinks it is a Dominator"), the worst symmetric case.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence

from ..core.simulator import Simulator

ProcessId = Hashable


def _writable_specs(sim: Simulator, p: ProcessId, kinds: Sequence[str]):
    return [s for s in sim.specs_of[p] if s.kind in kinds]


def corrupt_processes(
    sim: Simulator,
    victims: Iterable[ProcessId],
    rng: random.Random,
    kinds: Sequence[str] = ("comm", "internal"),
) -> List[ProcessId]:
    """Write arbitrary in-domain values into each victim's variables.

    Writes go through the configuration's per-process state view (one
    pid lookup per victim; on the flat indexed backend the view writes
    straight into the victim's row, which pooled step contexts alias —
    no cache to refresh).
    """
    hit = []
    for p in victims:
        state = sim.config.state_of(p)
        for spec in _writable_specs(sim, p, kinds):
            state[spec.name] = spec.domain.sample(rng)
        hit.append(p)
    # The writes bypassed Simulator.step, so the enabled-set engine must
    # be told which processes (and observers thereof) to re-examine.
    sim.invalidate_enabled(hit)
    return hit


def corrupt_fraction(
    sim: Simulator,
    fraction: float,
    rng: random.Random,
    kinds: Sequence[str] = ("comm", "internal"),
) -> List[ProcessId]:
    """Corrupt a uniformly random ⌈fraction·n⌉ subset of processes."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    processes = list(sim.network.processes)
    count = max(1, round(fraction * len(processes))) if fraction > 0 else 0
    victims = rng.sample(processes, min(count, len(processes)))
    return corrupt_processes(sim, victims, rng, kinds)


def corrupt_comm_only(sim: Simulator, victims, rng: random.Random):
    """Corrupt only neighbor-visible state (communication variables)."""
    return corrupt_processes(sim, victims, rng, kinds=("comm",))


def corrupt_internal_only(sim: Simulator, victims, rng: random.Random):
    """Corrupt only private state (round-robin pointers etc.)."""
    return corrupt_processes(sim, victims, rng, kinds=("internal",))


def adversarial_reset(
    sim: Simulator, state: Dict[str, Any], victims: Optional[Iterable[ProcessId]] = None
) -> List[ProcessId]:
    """Force one fixed state onto every victim (default: all processes).

    Values are clamped per process: a variable absent from ``state`` is
    left untouched, and out-of-domain values raise.
    """
    hit = []
    chosen = list(victims) if victims is not None else list(sim.network.processes)
    for p in chosen:
        target = sim.config.state_of(p)
        for spec in _writable_specs(sim, p, ("comm", "internal")):
            if spec.name not in state:
                continue
            value = state[spec.name]
            if value not in spec.domain:
                # Per-process domains differ (cur ranges over 1..δ.p);
                # clamp pointer-like values rather than failing.
                if hasattr(spec.domain, "lo") and isinstance(value, int):
                    value = max(spec.domain.lo, min(spec.domain.hi, value))
                else:
                    raise ValueError(
                        f"value {value!r} invalid for {spec.name}.{p!r}"
                    )
            target[spec.name] = value
        hit.append(p)
    sim.invalidate_enabled(hit)
    return hit
