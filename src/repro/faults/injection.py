"""Transient fault injection.

Self-stabilization's fault model is brutal and simple: a transient
fault writes *arbitrary values* into the variables of affected
processes (communication constants excluded — they model read-only
hardware like a burned-in color).  This module provides composable
fault shapes over a live :class:`~repro.core.simulator.Simulator`:

* :func:`corrupt_processes` — arbitrary values at chosen victims;
* :func:`corrupt_fraction` — a random fraction of the network;
* :func:`corrupt_comm_only` / :func:`corrupt_internal_only` — split
  corruption along the paper's variable-kind distinction (useful for
  testing that internal-pointer corruption alone cannot break a silent
  configuration's *communication* fixed point);
* :func:`adversarial_reset` — set every process to one fixed state
  (e.g. "everyone thinks it is a Dominator"), the worst symmetric case.

Every injector returns a :class:`FaultReport` describing exactly what
was applied — the victims actually written, the variable kinds hit,
and the variables written per victim — and logs it on the simulator
(:attr:`Simulator.fault_log
<repro.core.simulator.Simulator.fault_log>`), where the trace recorder
picks it up as an audit record.  Writes go through the configuration's
indexed state views and always end in ``Simulator.invalidate_enabled``
for the touched processes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.simulator import Simulator

ProcessId = Hashable


@dataclass(frozen=True)
class FaultReport:
    """What one fault injection actually did.

    ``victims`` lists only the processes that had at least one variable
    written (a targeted process with no writable variable of the
    requested kinds is *not* a victim); ``kinds`` is the union of
    variable kinds actually written, and ``vars_written`` maps each
    victim to the variable names that changed hands.  The report
    behaves like a sized iterable of victims, so legacy callers that
    did ``len(corrupt_fraction(...))`` keep working.
    """

    #: injector kind ("corrupt" | "reset")
    kind: str
    #: processes actually written, in application order
    victims: Tuple[ProcessId, ...]
    #: variable kinds actually written ("comm" / "internal")
    kinds: Tuple[str, ...]
    #: victim -> names of the variables written
    vars_written: Mapping[ProcessId, Tuple[str, ...]] = field(
        default_factory=dict
    )
    #: ``Simulator.step_index`` at injection time (the step boundary
    #: the fault preceded)
    step: int = 0

    def __len__(self) -> int:
        return len(self.victims)

    def __iter__(self) -> Iterator[ProcessId]:
        return iter(self.victims)

    def __bool__(self) -> bool:
        return bool(self.victims)


def _writable_specs(sim: Simulator, p: ProcessId, kinds: Sequence[str]):
    return [s for s in sim.specs_of[p] if s.kind in kinds]


def _finish(
    sim: Simulator,
    kind: str,
    writes: Dict[ProcessId, Tuple[str, ...]],
    kinds_hit: set,
) -> FaultReport:
    """Build the report, log it on the simulator, invalidate the engine."""
    report = FaultReport(
        kind=kind,
        victims=tuple(writes),
        kinds=tuple(sorted(kinds_hit)),
        vars_written=dict(writes),
        step=sim.step_index,
    )
    if report.victims:
        sim.invalidate_enabled(list(report.victims))
        sim.note_fault(report)
    return report


def corrupt_processes(
    sim: Simulator,
    victims: Iterable[ProcessId],
    rng: random.Random,
    kinds: Sequence[str] = ("comm", "internal"),
) -> FaultReport:
    """Write arbitrary in-domain values into each victim's variables.

    Writes go through the configuration's per-process state view (one
    pid lookup per victim; on the flat indexed backend the view writes
    straight into the victim's row, which pooled step contexts alias —
    no cache to refresh).  Returns the :class:`FaultReport` of what was
    actually written.
    """
    writes: Dict[ProcessId, Tuple[str, ...]] = {}
    kinds_hit: set = set()
    for p in victims:
        state = sim.config.state_of(p)
        written = []
        for spec in _writable_specs(sim, p, kinds):
            state[spec.name] = spec.domain.sample(rng)
            written.append(spec.name)
            kinds_hit.add(spec.kind)
        if written:
            writes[p] = tuple(written)
    # The writes bypassed Simulator.step, so the enabled-set engine must
    # be told which processes (and observers thereof) to re-examine.
    return _finish(sim, "corrupt", writes, kinds_hit)


def corrupt_fraction(
    sim: Simulator,
    fraction: float,
    rng: random.Random,
    kinds: Sequence[str] = ("comm", "internal"),
) -> FaultReport:
    """Corrupt a uniformly random ⌈fraction·n⌉ subset of processes."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    processes = list(sim.network.processes)
    count = max(1, round(fraction * len(processes))) if fraction > 0 else 0
    victims = rng.sample(processes, min(count, len(processes)))
    return corrupt_processes(sim, victims, rng, kinds)


def corrupt_comm_only(sim: Simulator, victims, rng: random.Random) -> FaultReport:
    """Corrupt only neighbor-visible state (communication variables)."""
    return corrupt_processes(sim, victims, rng, kinds=("comm",))


def corrupt_internal_only(sim: Simulator, victims, rng: random.Random) -> FaultReport:
    """Corrupt only private state (round-robin pointers etc.)."""
    return corrupt_processes(sim, victims, rng, kinds=("internal",))


def adversarial_reset(
    sim: Simulator,
    state: Dict[str, Any],
    victims: Optional[Iterable[ProcessId]] = None,
) -> FaultReport:
    """Force one fixed state onto every victim (default: all processes).

    Values are clamped per process: a variable absent from ``state`` is
    left untouched, and out-of-domain values raise.  Returns the
    :class:`FaultReport` of what was actually written.
    """
    writes: Dict[ProcessId, Tuple[str, ...]] = {}
    kinds_hit: set = set()
    chosen = list(victims) if victims is not None else list(sim.network.processes)
    for p in chosen:
        target = sim.config.state_of(p)
        written = []
        for spec in _writable_specs(sim, p, ("comm", "internal")):
            if spec.name not in state:
                continue
            value = state[spec.name]
            if value not in spec.domain:
                # Per-process domains differ (cur ranges over 1..δ.p);
                # clamp pointer-like values rather than failing.
                if hasattr(spec.domain, "lo") and isinstance(value, int):
                    value = max(spec.domain.lo, min(spec.domain.hi, value))
                else:
                    raise ValueError(
                        f"value {value!r} invalid for {spec.name}.{p!r}"
                    )
            target[spec.name] = value
            written.append(spec.name)
            kinds_hit.add(spec.kind)
        if written:
            writes[p] = tuple(written)
    return _finish(sim, "reset", writes, kinds_hit)
