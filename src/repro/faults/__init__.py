"""Transient fault injection and recovery measurement."""

from .injection import (
    FaultReport,
    adversarial_reset,
    corrupt_comm_only,
    corrupt_fraction,
    corrupt_internal_only,
    corrupt_processes,
)
from .recovery import (
    AvailabilityReport,
    RecoveryReport,
    availability_experiment,
    measure_recovery,
)

__all__ = [
    "AvailabilityReport",
    "FaultReport",
    "RecoveryReport",
    "adversarial_reset",
    "availability_experiment",
    "corrupt_comm_only",
    "corrupt_fraction",
    "corrupt_internal_only",
    "corrupt_processes",
    "measure_recovery",
]
