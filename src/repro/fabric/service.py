"""Live results service: the warehouse over HTTP while runs are hot.

:class:`ResultService` serves a :class:`~repro.results.ResultStore`
read-only over plain HTTP — stdlib ``http.server``, no framework, no
new dependencies.  Every request opens a fresh WAL *reader* connection
against the store file, so a campaign (serial or fabric) can keep
writing while dashboards poll: readers see every committed trial and
none of the in-flight one, and aggregates grow monotonically.

Endpoints (all ``GET``):

============ =========================================================
``/``         endpoint index
``/health``   liveness + store totals
``/runs``     stored runs with provenance and trial counts
``/query``    grouped statistics (``metrics``, ``group_by``, ``where``,
              ``run`` parameters — same vocabulary as ``repro query``)
``/report``   rendered table: a named ``recipe`` or ad-hoc axes
``/compare``  two runs diffed cell-by-cell (``runs=a,b``,
              ``threshold``)
``/progress`` live trial deltas + fabric heartbeat fan-in (what
              ``repro top <url>`` polls)
``/metrics``  the process telemetry registry in Prometheus text
              exposition format (v0.0.4)
============ =========================================================

Responses negotiate format: ``?format=json|markdown|csv`` wins, else
an ``Accept: text/markdown`` / ``text/csv`` header, else JSON (CSV is
honored by ``/query``, ``/runs`` and ``/report``; ``/progress`` is
always JSON and ``/metrics`` always Prometheus text).  Bad parameters
are 400 with a JSON error body; an unreadable store is 503 — the
service stays up while a store is being moved or pruned.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..obs.prom import render_prometheus
from ..obs.registry import TELEMETRY
from ..results.diff import diff_runs_detailed
from ..results.params import coerce_scalar, parse_where, split_csv
from ..results.report import (
    REPORT_RECIPES,
    csv_text,
    query_csv,
    query_table,
    recipe_table,
)
from ..results.store import (
    DEFAULT_GROUP_BY,
    DEFAULT_METRICS,
    ResultStore,
)

#: endpoint -> one-line description, served at ``/``.
ENDPOINTS = {
    "/": "this index",
    "/health": "liveness and store totals",
    "/runs": "stored runs with provenance and trial counts",
    "/query": "grouped statistics (metrics, group_by, where, run)",
    "/report": "rendered table (recipe=NAME, or metrics/group_by/where)",
    "/compare": "diff two runs (runs=a,b, threshold, metrics, group_by)",
    "/progress": "live trial deltas + fabric heartbeat fan-in (run, "
                 "plan_dir)",
    "/metrics": "process telemetry in Prometheus text format",
}


def _pick_format(params: Dict[str, List[str]], accept: str) -> str:
    """``json``, ``markdown`` or ``csv`` — param beats Accept header."""
    wanted = params.get("format", [None])[-1]
    if wanted is not None:
        if wanted in ("json",):
            return "json"
        if wanted in ("markdown", "md"):
            return "markdown"
        if wanted in ("csv",):
            return "csv"
        raise ValueError(
            f"unknown format {wanted!r}; use json, markdown or csv")
    accept = accept or ""
    if "text/markdown" in accept:
        return "markdown"
    if "text/csv" in accept:
        return "csv"
    return "json"


def _one(params: Dict[str, List[str]], name: str,
         default: Optional[str] = None) -> Optional[str]:
    """Last value of a query parameter (repeats override, curl-style)."""
    values = params.get(name)
    return values[-1] if values else default


def _csv(params: Dict[str, List[str]], name: str) -> Optional[List[str]]:
    """CSV parameter, or None when absent (callers fall to defaults)."""
    raw = _one(params, name)
    return split_csv(raw) if raw is not None else None


def _groups_payload(groups, group_by, metrics) -> Dict[str, Any]:
    return {
        "group_by": list(group_by),
        "metrics": list(metrics),
        "groups": [
            {"group": g.group, "count": g.count,
             "aggregates": {m: agg.to_dict()
                            for m, agg in g.aggregates.items()}}
            for g in groups
        ],
    }


class _Handler(BaseHTTPRequestHandler):
    """One request: open the store, answer, close — no shared state."""

    server_version = "repro-fabric/1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: N802 (stdlib name)
        if not getattr(self.server, "quiet", True):
            super().log_message(fmt, *args)

    def _send(self, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_json(self, payload: Any, status: int = 200) -> None:
        self._send(status, json.dumps(payload, indent=2) + "\n",
                   "application/json")

    def _send_markdown(self, text: str, status: int = 200) -> None:
        if not text.endswith("\n"):
            text += "\n"
        self._send(status, text, "text/markdown")

    def _send_csv(self, text: str, status: int = 200) -> None:
        self._send(status, text, "text/csv")

    # -- dispatch ------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib name)
        url = urlsplit(self.path)
        params = parse_qs(url.query, keep_blank_values=True)
        path = url.path.rstrip("/") or "/"
        if TELEMETRY.enabled:
            TELEMETRY.counter("service.requests", endpoint=path).inc()
        try:
            fmt = _pick_format(params, self.headers.get("Accept", ""))
            handler = {
                "/": self._handle_index,
                "/health": self._handle_health,
                "/runs": self._handle_runs,
                "/query": self._handle_query,
                "/report": self._handle_report,
                "/compare": self._handle_compare,
                "/progress": self._handle_progress,
                "/metrics": self._handle_metrics,
            }.get(path)
            if handler is None:
                self._send_json({"error": f"no such endpoint {url.path!r}",
                                 "endpoints": sorted(ENDPOINTS)}, status=404)
                return
            handler(params, fmt)
        except ValueError as exc:
            # Caller mistake: bad run id, unknown recipe/column/format.
            self._send_json({"error": str(exc)}, status=400)
        except OSError as exc:
            # Store trouble is the server's, not the caller's.
            self._send_json({"error": f"store unavailable: {exc}"},
                            status=503)

    def _store(self) -> ResultStore:
        # A fresh connection per request: WAL readers pick up everything
        # committed so far, which is what makes aggregates monotone
        # while a campaign is still writing.
        try:
            return ResultStore(self.server.store_path, create=False)
        except ValueError as exc:
            raise OSError(str(exc))

    # -- endpoints -----------------------------------------------------
    def _handle_index(self, params, fmt) -> None:
        if fmt == "markdown":
            lines = ["# repro results service", ""]
            lines += [f"- `{path}` — {text}"
                      for path, text in sorted(ENDPOINTS.items())]
            self._send_markdown("\n".join(lines))
        else:
            self._send_json({"service": "repro results",
                             "store": self.server.store_path,
                             "endpoints": ENDPOINTS})

    def _handle_health(self, params, fmt) -> None:
        with self._store() as store:
            runs = store.runs()
            payload = {"ok": True, "store": self.server.store_path,
                       "runs": len(runs),
                       "trials": sum(r.trials for r in runs)}
        if fmt == "markdown":
            self._send_markdown(
                f"ok: {payload['runs']} runs, {payload['trials']} trials")
        else:
            self._send_json(payload)

    def _handle_runs(self, params, fmt) -> None:
        with self._store() as store:
            runs = [asdict(r) for r in store.runs()]
        if fmt == "markdown":
            lines = [f"- `{r['run_id']}` — {r['trials']} trials"
                     + (f" ({r['label']})" if r["label"] else "")
                     for r in runs]
            self._send_markdown("\n".join(lines) if lines else "(no runs)")
        elif fmt == "csv":
            headers = (list(runs[0]) if runs
                       else ["run_id", "label", "trials"])
            self._send_csv(csv_text(
                headers, [[r[h] for h in headers] for r in runs]))
        else:
            self._send_json({"runs": runs})

    def _query_args(self, params) -> Tuple[List[str], Dict[str, Any],
                                           List[str], Optional[str]]:
        metrics = _csv(params, "metrics") or list(DEFAULT_METRICS)
        group_by = _csv(params, "group_by") or list(DEFAULT_GROUP_BY)
        where = parse_where(params.get("where", []))
        run = _one(params, "run")
        return metrics, where, group_by, run

    def _handle_query(self, params, fmt) -> None:
        metrics, where, group_by, run = self._query_args(params)
        with self._store() as store:
            groups = store.query(metrics=metrics, where=where,
                                 group_by=group_by, run_id=run)
            payload = _groups_payload(groups, group_by, metrics)
            payload["run"] = run
        if fmt == "markdown":
            self._send_markdown(query_table(
                groups, group_by, metrics, title="query", markdown=True))
        elif fmt == "csv":
            self._send_csv(query_csv(groups, group_by, metrics))
        else:
            self._send_json(payload)

    def _handle_report(self, params, fmt) -> None:
        recipe = _one(params, "recipe")
        run = _one(params, "run")
        with self._store() as store:
            if recipe is not None:
                if fmt == "markdown":
                    self._send_markdown(recipe_table(
                        store, recipe, run_id=run, markdown=True))
                    return
                spec = REPORT_RECIPES.get(recipe)
                if spec is None:
                    raise ValueError(
                        f"unknown recipe {recipe!r}; known: "
                        f"{sorted(REPORT_RECIPES)}")
                groups = store.query(metrics=spec.metrics,
                                     where=dict(spec.where),
                                     group_by=spec.group_by, run_id=run)
                if fmt == "csv":
                    self._send_csv(query_csv(
                        groups, spec.group_by, spec.metrics))
                    return
                payload = _groups_payload(groups, spec.group_by,
                                          spec.metrics)
                payload.update({"recipe": recipe, "title": spec.title,
                                "run": run})
                self._send_json(payload)
                return
            metrics, where, group_by, run = self._query_args(params)
            groups = store.query(metrics=metrics, where=where,
                                 group_by=group_by, run_id=run)
        if fmt == "markdown":
            self._send_markdown(query_table(
                groups, group_by, metrics, title="report", markdown=True))
        elif fmt == "csv":
            self._send_csv(query_csv(groups, group_by, metrics))
        else:
            payload = _groups_payload(groups, group_by, metrics)
            payload["run"] = run
            self._send_json(payload)

    def _handle_progress(self, params, fmt) -> None:
        # Deliberate local import: repro.obs.progress imports the
        # heartbeat module from this package, so a module-level import
        # here would bite its own tail during ``import repro.obs``.
        from ..obs.progress import fabric_section

        run = _one(params, "run")
        with self._store() as store:
            resolved = run if run is not None else store.latest_run_id()
            count = (store.trial_count(resolved)
                     if resolved is not None else 0)
            telemetry = (store.telemetry_snapshots(resolved)
                         if resolved is not None else [])
        delta = (self.server.progress.update(resolved, count)
                 if resolved is not None else None)
        plan_dir = _one(params, "plan_dir") or self.server.plan_dir
        if not plan_dir:
            # Fabric coordinators keep their working files next to the
            # store by default; pick that up without configuration.
            candidate = self.server.store_path + ".fabric"
            plan_dir = candidate if os.path.isdir(candidate) else None
        self._send_json({
            "store": self.server.store_path,
            "run": resolved,
            "trials": count,
            "delta": delta,
            "fabric": fabric_section(plan_dir),
            "telemetry": telemetry[-1] if telemetry else None,
        })

    def _handle_metrics(self, params, fmt) -> None:
        # Always Prometheus text, never negotiated — scrapers send
        # Accept headers of their own.  Store totals are refreshed as
        # gauges at scrape time so even an otherwise-idle process
        # exposes live numbers.
        try:
            with self._store() as store:
                runs = store.runs()
            TELEMETRY.gauge("store.runs").set(len(runs))
            TELEMETRY.gauge("store.trials").set(
                sum(r.trials for r in runs))
        except OSError:
            pass  # the registry is still worth exposing
        # _send appends "; charset=utf-8", completing the official
        # exposition content type.
        self._send(200, render_prometheus(TELEMETRY),
                   "text/plain; version=0.0.4")

    def _handle_compare(self, params, fmt) -> None:
        runs = _csv(params, "runs") or []
        if len(runs) != 2:
            raise ValueError("compare needs runs=<a>,<b> (exactly two)")
        metrics = _csv(params, "metrics")
        group_by = _csv(params, "group_by")
        threshold_raw = _one(params, "threshold")
        threshold = (float(coerce_scalar(threshold_raw))
                     if threshold_raw is not None else 0.10)
        where = parse_where(params.get("where", []))
        kwargs: Dict[str, Any] = {"where": where, "threshold": threshold}
        if metrics is not None:
            kwargs["metrics"] = metrics
        if group_by is not None:
            kwargs["group_by"] = group_by
        with self._store() as store:
            rows, only_a, only_b = diff_runs_detailed(
                store, runs[0], runs[1], **kwargs)
        regressed = any(r.regressed for r in rows)
        if fmt == "markdown":
            lines = [f"# compare `{runs[0]}` vs `{runs[1]}`", ""]
            lines += [f"- {row.describe()}" for row in rows]
            for missing, side in ((only_a, runs[0]), (only_b, runs[1])):
                lines += [f"- {g}: only in `{side}`" for g in missing]
            lines += ["", "REGRESSED" if regressed else "ok"]
            self._send_markdown("\n".join(lines))
        else:
            self._send_json({
                "runs": runs, "threshold": threshold,
                "regressed": regressed,
                "rows": [asdict(row) for row in rows],
                "only_a": only_a, "only_b": only_b,
            })


class ResultService:
    """A results store served over HTTP (see module docs).

    ``port=0`` binds an ephemeral port (read it back from ``.port``
    after construction) — the test-friendly default.  Use as a context
    manager, or :meth:`start`/:meth:`close` around a background
    thread, or :meth:`serve_forever` to occupy the calling thread
    (what ``repro serve`` does).
    """

    def __init__(self, store_path: str, host: str = "127.0.0.1",
                 port: int = 0, quiet: bool = True,
                 plan_dir: Optional[str] = None):
        # Deliberate local import (see _handle_progress).
        from ..obs.progress import ProgressTracker

        # Fail fast on a missing store, before binding a socket.
        ResultStore(store_path, create=False).close()
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.store_path = store_path
        self._server.quiet = quiet
        # ``/progress`` deltas need server-side memory: the trials
        # table stores no timestamps, so rates come from two counts
        # observed by this process.
        self._server.progress = ProgressTracker()
        # Explicit plan dir for heartbeat fan-in; None falls back to
        # ``<store>.fabric`` (the coordinator's default) per request.
        self._server.plan_dir = plan_dir
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should hit."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ResultService":
        """Serve from a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._server.serve_forever()

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ResultService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
