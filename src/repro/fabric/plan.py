"""Shard planning: split one campaign grid into worker-sized pieces.

A fabric run starts from an ordered spec list (a
:class:`~repro.api.Campaign`) and partitions it into *shards* — one
unit of work per worker process.  Two strategies:

* ``round-robin`` — spec *i* goes to shard ``i % shards``; balanced by
  construction and stable under grid reordering-free edits;
* ``hash`` — spec *i* goes to ``sha256(key) % shards``; a spec lands
  on the same shard no matter how the grid around it changes, so
  partially-complete shard stores stay valid when a campaign grows.

Either way the shards are disjoint and cover the grid exactly — the
zero-duplicate-keys invariant starts here and the store's
``(run_id, key)`` primary key enforces it the rest of the way.

A :class:`ShardTask` is the file-based handoff unit: everything one
worker needs (spec dicts, per-shard store path, heartbeat path, run
id) as one JSON document.  The coordinator writes these for its local
subprocesses, and the same files drive remote hosts —
``repro fabric plan`` writes them, each host runs
``repro fabric worker --shard-file ...``, and ``repro ingest`` merges
the shard stores back.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..api.spec import ExperimentSpec

#: Spec-to-shard assignment strategies understood by :func:`partition`.
PARTITION_STRATEGIES = ("hash", "round-robin")


def shard_of(key: str, shards: int) -> int:
    """The hash-strategy shard of one spec key (stable across runs)."""
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "big") % shards


def partition(
    specs: Sequence[ExperimentSpec],
    shards: int,
    strategy: str = "hash",
) -> List[List[ExperimentSpec]]:
    """Split ``specs`` into ``shards`` disjoint, covering lists.

    Empty shards are kept (callers drop them when building tasks) so
    shard indexes are stable regardless of how keys distribute.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    if strategy not in PARTITION_STRATEGIES:
        raise ValueError(f"unknown partition strategy {strategy!r}; "
                         f"known: {PARTITION_STRATEGIES}")
    out: List[List[ExperimentSpec]] = [[] for _ in range(shards)]
    for i, spec in enumerate(specs):
        if strategy == "round-robin":
            out[i % shards].append(spec)
        else:
            out[shard_of(spec.key(), shards)].append(spec)
    return out


@dataclass(frozen=True)
class ShardTask:
    """One worker's worth of a fabric run, as plain JSON-able data.

    ``chaos_exit_after`` is a failure-injection hook for tests and the
    CI fabric smoke: the worker hard-exits (``os._exit``, no cleanup —
    indistinguishable from a crashed host) after writing that many
    fresh trials.  The coordinator strips it when it requeues a shard,
    so an injected death is recovered exactly like a real one.
    """

    index: int
    run_id: str
    store_path: str
    heartbeat_path: str
    specs: Tuple[Dict[str, Any], ...]
    heartbeat_interval_s: float = 0.5
    chaos_exit_after: Optional[int] = None

    def experiment_specs(self) -> List[ExperimentSpec]:
        """The shard's spec dicts, rebuilt into live specs."""
        return [ExperimentSpec.from_dict(d) for d in self.specs]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "run_id": self.run_id,
            "store_path": self.store_path,
            "heartbeat_path": self.heartbeat_path,
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "chaos_exit_after": self.chaos_exit_after,
            "specs": [dict(d) for d in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardTask":
        return cls(
            index=int(data["index"]),
            run_id=data["run_id"],
            store_path=data["store_path"],
            heartbeat_path=data["heartbeat_path"],
            specs=tuple(dict(d) for d in data["specs"]),
            heartbeat_interval_s=float(data.get("heartbeat_interval_s", 0.5)),
            chaos_exit_after=data.get("chaos_exit_after"),
        )

    def write(self, path: Union[str, os.PathLike]) -> str:
        """Serialize to a shard file (the worker handoff document)."""
        path = os.fspath(path)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @classmethod
    def read(cls, path: Union[str, os.PathLike]) -> "ShardTask":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def without_chaos(self) -> "ShardTask":
        """A copy with the failure-injection hook disarmed (requeue)."""
        return replace(self, chaos_exit_after=None)


def shard_file_path(workdir: str, index: int) -> str:
    """Canonical shard-file location inside a fabric workdir."""
    return os.path.join(workdir, f"shard-{index}.json")


def build_plan(
    specs: Sequence[ExperimentSpec],
    shards: int,
    workdir: Union[str, os.PathLike],
    run_id: str,
    strategy: str = "hash",
    heartbeat_interval_s: float = 0.5,
) -> List[ShardTask]:
    """Partition ``specs`` and lay out one :class:`ShardTask` per
    non-empty shard under ``workdir`` (created if missing).

    Paths are absolute so shard files stay valid from any working
    directory (and from other hosts sharing the filesystem).
    """
    workdir = os.path.abspath(os.fspath(workdir))
    os.makedirs(workdir, exist_ok=True)
    tasks: List[ShardTask] = []
    for index, shard_specs in enumerate(partition(specs, shards, strategy)):
        if not shard_specs:
            continue
        tasks.append(ShardTask(
            index=index,
            run_id=run_id,
            store_path=os.path.join(workdir, f"shard-{index}.sqlite"),
            heartbeat_path=os.path.join(workdir, f"heartbeat-{index}.json"),
            specs=tuple(spec.to_dict() for spec in shard_specs),
            heartbeat_interval_s=heartbeat_interval_s,
        ))
    return tasks
