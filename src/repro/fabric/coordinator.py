"""The fabric coordinator: shard, dispatch, watch, requeue, merge.

One :class:`Coordinator` turns a :class:`~repro.api.Campaign` into a
sharded multi-process run with crash recovery:

1. **Claim** — open the canonical store, and (on resume) drop every
   spec whose key it already holds (:meth:`ResultStore.pending_keys`).
2. **Plan** — partition the remaining specs into shards
   (:mod:`repro.fabric.plan`) and write one shard file each.
3. **Dispatch** — keep at most ``workers`` worker subprocesses alive
   (``python -m repro.fabric.worker``), each streaming trials into its
   per-shard store and heartbeating.
4. **Watch** — a worker that exits with work left undone, or goes
   quiet past ``heartbeat_timeout_s`` (killed, wedged, host gone), is
   *requeued*: its shard file is rewritten (chaos hooks stripped) and
   relaunched with linear backoff, at most ``max_retries`` extra
   times.  The relaunched worker resumes from its shard store, so
   completed trials are never re-run.
5. **Merge** — per-shard stores stream into the canonical store
   through :meth:`ResultStore.ingest_store` (the same ingest path
   ``repro ingest`` uses); the ``(run_id, key)`` primary key makes the
   merge idempotent and duplicate-free.

Because every spec carries its own seed, a fabric run is trial-for-
trial identical to a serial run of the same grid — same keys, same
measures — no matter how shards, deaths, and requeues interleave.
That equivalence is regression-tested (``tests/test_fabric.py``).
"""

from __future__ import annotations

import glob
import os
import shutil
import subprocess
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..obs.registry import TELEMETRY
from ..results.store import ResultStore
from .heartbeat import read_heartbeat
from .plan import ShardTask, build_plan, shard_file_path
from .worker import CHAOS_EXIT_CODE


@dataclass
class FabricOutcome:
    """What a fabric run produced, and how it got there."""

    run_id: str
    store_path: str
    #: specs in the campaign grid
    total: int
    #: fresh trials executed by workers during this run
    executed: int
    #: keys already in the canonical store when the run started
    resumed: int
    #: worker relaunches after a death or heartbeat stall
    requeued: int
    shards: int
    workers: int
    #: keys still absent after retries were exhausted
    missing: List[str] = field(default_factory=list)
    wall_time_s: float = 0.0
    #: heartbeat stalls the watch loop killed (requeue causes)
    stalls: int = 0
    #: stale heartbeat files removed after a clean finish — a finished
    #: campaign must not read as a live one to ``/progress``/``repro top``
    heartbeats_cleaned: int = 0

    @property
    def ok(self) -> bool:
        """Whether every spec in the grid has a stored trial."""
        return not self.missing

    def describe(self) -> str:
        """One summary line for logs and the CLI."""
        tail = "ok" if self.ok else f"{len(self.missing)} MISSING"
        line = (f"fabric run {self.run_id!r}: {self.executed} executed, "
                f"{self.resumed} resumed, {self.requeued} requeued over "
                f"{self.shards} shards x {self.workers} workers "
                f"in {self.wall_time_s:.1f}s -> {self.store_path} [{tail}]")
        if self.heartbeats_cleaned:
            line += f" ({self.heartbeats_cleaned} stale heartbeats cleaned)"
        return line


class _ShardState:
    """Coordinator-side bookkeeping for one shard."""

    def __init__(self, task: ShardTask, shard_file: str, log_path: str):
        self.task = task
        self.shard_file = shard_file
        self.log_path = log_path
        #: spec keys this shard owns (precomputed once)
        self.keys = [spec.key() for spec in task.experiment_specs()]
        self.attempts = 0
        self.proc: Optional[subprocess.Popen] = None
        self.log_fh = None
        self.launched_at = 0.0  # monotonic
        self.next_launch_at = 0.0  # monotonic; backoff gate
        self.done = False
        self.failed = False

    def close_log(self) -> None:
        if self.log_fh is not None:
            self.log_fh.close()
            self.log_fh = None


class Coordinator:
    """Sharded campaign execution over worker subprocesses (module docs)."""

    def __init__(
        self,
        campaign,
        store: Union[str, os.PathLike],
        run_id: str = "campaign",
        label: Optional[str] = None,
        workers: int = 4,
        shards: Optional[int] = None,
        strategy: str = "hash",
        workdir: Optional[Union[str, os.PathLike]] = None,
        resume: bool = True,
        heartbeat_timeout_s: float = 15.0,
        heartbeat_interval_s: float = 0.5,
        max_retries: int = 2,
        retry_backoff_s: float = 0.5,
        poll_interval_s: float = 0.05,
        keep_shards: bool = False,
        chaos_kills: int = 0,
        progress: Optional[Callable[[str], None]] = None,
    ):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.campaign = campaign
        self.store_path = os.path.abspath(os.fspath(store))
        self.run_id = run_id
        self.label = label
        self.workers = workers
        #: more shards than workers = finer-grained recovery units
        self.shards = shards if shards is not None else workers
        if self.shards < 1:
            raise ValueError(f"need at least one shard, got {self.shards}")
        self.strategy = strategy
        #: default next to the store so interrupted runs resume in place
        self.workdir = os.path.abspath(os.fspath(
            workdir if workdir is not None else self.store_path + ".fabric"
        ))
        self.resume = resume
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.poll_interval_s = poll_interval_s
        self.keep_shards = keep_shards
        self.chaos_kills = chaos_kills
        self._progress = progress
        self._requeued = 0
        self._stalls = 0

    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)

    def run(self) -> FabricOutcome:
        """Execute the campaign through the fabric; see module docs."""
        t0 = time.perf_counter()
        self._requeued = 0
        self._stalls = 0
        all_keys = [spec.key() for spec in self.campaign.specs]
        with ResultStore(self.store_path) as store:
            run_id = store.begin_run(
                run_id=self.run_id, label=self.label,
                meta={"fabric": {
                    "workers": self.workers, "shards": self.shards,
                    "strategy": self.strategy,
                }},
            )
            if not self.resume:
                # Start over: a re-run must not shadow-mix with stale
                # rows, in the canonical store or the shard stores.
                store._conn.execute(
                    "DELETE FROM trials WHERE run_id = ?", (run_id,))
                store._conn.commit()
                shutil.rmtree(self.workdir, ignore_errors=True)
            pending_keys = set(store.pending_keys(run_id, all_keys))
            pending = [s for s in self.campaign.specs
                       if s.key() in pending_keys]
            resumed = len(all_keys) - len(pending)
            if pending:
                states = self._plan(pending, run_id)
                self._log(f"fabric {run_id!r}: {len(pending)} specs over "
                          f"{len(states)} shards on {self.workers} workers "
                          f"({self.strategy}); {resumed} resumed")
                self._supervise(states)
                self._merge(store, states, run_id)
            else:
                states = []
                self._log(f"fabric {run_id!r}: nothing to do "
                          f"({resumed} resumed)")
            completed = store.completed_keys(run_id)
            missing = [k for k in all_keys if k not in completed]
            wall = time.perf_counter() - t0
            store.finish_run(run_id, wall)
            executed = len(all_keys) - resumed - len(missing)
            # Campaign-level telemetry snapshot, next to the trials it
            # describes (the warehouse `telemetry` table).
            store.record_telemetry(run_id, {
                "total": len(all_keys),
                "executed": executed,
                "resumed": resumed,
                "missing": len(missing),
                "requeued": self._requeued,
                "stalls": self._stalls,
                "shards": len(states) if states else 0,
                "workers": self.workers,
                "wall_time_s": round(wall, 3),
                "trials_per_s": (round(executed / wall, 3)
                                 if wall > 0 else None),
            }, source="fabric")
        outcome = FabricOutcome(
            run_id=run_id,
            store_path=self.store_path,
            total=len(all_keys),
            executed=executed,
            resumed=resumed,
            requeued=self._requeued,
            shards=len(states) if states else 0,
            workers=self.workers,
            missing=missing,
            wall_time_s=wall,
            stalls=self._stalls,
        )
        if outcome.ok:
            # A clean finish must not leave heartbeat files behind: a
            # dashboard pointed at the plan dir would keep reporting a
            # "running" campaign forever (kept-shard runs and
            # `fabric plan` dirs outlive the rmtree below).
            outcome.heartbeats_cleaned = self._clean_heartbeats()
            if not self.keep_shards:
                shutil.rmtree(self.workdir, ignore_errors=True)
        self._log(outcome.describe())
        return outcome

    def _clean_heartbeats(self) -> int:
        """Remove every heartbeat file in the workdir; returns count."""
        cleaned = 0
        pattern = os.path.join(self.workdir, "heartbeat-*.json")
        for path in glob.glob(pattern):
            try:
                os.remove(path)
                cleaned += 1
            except OSError:
                pass
        return cleaned

    # ------------------------------------------------------------------
    def _plan(self, pending, run_id: str) -> List[_ShardState]:
        tasks = build_plan(
            pending, self.shards, self.workdir, run_id,
            strategy=self.strategy,
            heartbeat_interval_s=self.heartbeat_interval_s,
        )
        states = []
        armed = 0
        for task in tasks:
            if armed < self.chaos_kills:
                # Failure injection: this worker will hard-exit after
                # its first fresh trial (first attempt only — requeue
                # rewrites the shard file without the hook).
                task = replace(task, chaos_exit_after=1)
                armed += 1
            shard_file = shard_file_path(self.workdir, task.index)
            task.write(shard_file)
            states.append(_ShardState(
                task, shard_file,
                os.path.join(self.workdir, f"shard-{task.index}.log"),
            ))
        return states

    def _launch(self, state: _ShardState) -> None:
        env = os.environ.copy()
        # Workers must import repro regardless of the parent's cwd or
        # install state: prepend this tree's src root.
        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        state.log_fh = open(state.log_path, "a", encoding="utf-8")
        state.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.fabric.worker",
             "--shard-file", state.shard_file, "--quiet"],
            stdout=state.log_fh, stderr=subprocess.STDOUT, env=env,
        )
        state.attempts += 1
        state.launched_at = time.monotonic()
        self._log(f"shard {state.task.index}: launched "
                  f"(attempt {state.attempts}, pid {state.proc.pid})")

    def _shard_remaining(self, state: _ShardState) -> List[str]:
        """Keys of ``state``'s shard not yet committed to its store."""
        if not os.path.exists(state.task.store_path):
            return list(state.keys)
        try:
            with ResultStore(state.task.store_path) as shard_store:
                return shard_store.pending_keys(state.task.run_id,
                                                state.keys)
        except ValueError:
            # A store file the dying worker never finished creating.
            return list(state.keys)

    def _stalled(self, state: _ShardState, now: float) -> bool:
        """Alive but silent past the heartbeat timeout?"""
        if now - state.launched_at <= self.heartbeat_timeout_s:
            return False  # startup grace: first beat needs import time
        heartbeat = read_heartbeat(state.task.heartbeat_path)
        return (heartbeat is None
                or heartbeat.age_s() > self.heartbeat_timeout_s)

    def _supervise(self, states: List[_ShardState]) -> None:
        """The dispatch/watch/requeue loop (at most ``workers`` alive)."""
        waiting: List[_ShardState] = list(states)
        active: List[_ShardState] = []
        try:
            while waiting or active:
                now = time.monotonic()
                for state in list(waiting):
                    if len(active) >= self.workers:
                        break
                    if state.next_launch_at > now:
                        continue
                    waiting.remove(state)
                    self._launch(state)
                    active.append(state)
                for state in list(active):
                    returncode = state.proc.poll()
                    if returncode is None:
                        if not self._stalled(state, now):
                            continue
                        self._log(f"shard {state.task.index}: stalled "
                                  f"(no heartbeat for "
                                  f">{self.heartbeat_timeout_s:.0f}s), "
                                  f"killing pid {state.proc.pid}")
                        self._stalls += 1
                        if TELEMETRY.enabled:
                            TELEMETRY.counter("fabric.stalls").inc()
                        state.proc.kill()
                        returncode = state.proc.wait()
                    active.remove(state)
                    state.close_log()
                    remaining = self._shard_remaining(state)
                    if not remaining:
                        state.done = True
                        self._log(f"shard {state.task.index}: complete "
                                  f"({len(state.keys)} trials)")
                        continue
                    if state.attempts > self.max_retries:
                        state.failed = True
                        self._log(f"shard {state.task.index}: giving up "
                                  f"after {state.attempts} attempts "
                                  f"({len(remaining)} keys missing, "
                                  f"exit {returncode})")
                        continue
                    self._requeued += 1
                    if TELEMETRY.enabled:
                        TELEMETRY.counter("fabric.requeues").inc()
                    state.task = state.task.without_chaos()
                    state.task.write(state.shard_file)
                    state.next_launch_at = (
                        time.monotonic()
                        + self.retry_backoff_s * state.attempts)
                    cause = ("chaos kill"
                             if returncode == CHAOS_EXIT_CODE else
                             f"exit {returncode}")
                    self._log(f"shard {state.task.index}: worker died "
                              f"({cause}) with {len(remaining)} keys left; "
                              f"requeued with backoff")
                    waiting.append(state)
                if waiting or active:
                    time.sleep(self.poll_interval_s)
        finally:
            # Never leave orphans: a coordinator crash or Ctrl-C must
            # not strand worker processes.
            for state in active:
                if state.proc is not None and state.proc.poll() is None:
                    state.proc.kill()
                    state.proc.wait()
                state.close_log()

    def _merge(self, store: ResultStore, states: Sequence[_ShardState],
               run_id: str) -> None:
        """Stream every shard store into the canonical run."""
        for state in states:
            if not os.path.exists(state.task.store_path):
                continue
            try:
                _run, count = store.ingest_store(
                    state.task.store_path, src_run_id=run_id,
                    run_id=run_id, label=self.label,
                )
            except ValueError:
                continue  # unreadable partial store; its keys re-run later
            self._log(f"shard {state.task.index}: merged {count} trials "
                      f"into {os.path.basename(self.store_path)}")


def run_fabric(campaign, store, **kwargs: Any) -> FabricOutcome:
    """Run ``campaign`` through a :class:`Coordinator` (one call)."""
    return Coordinator(campaign, store, **kwargs).run()
