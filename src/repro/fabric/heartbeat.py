"""Worker heartbeats: liveness and progress as one small file.

A fabric worker owns one heartbeat file (named in its
:class:`~repro.fabric.plan.ShardTask`) and rewrites it atomically —
temp file + ``os.replace`` — after every finished trial and on a
timer, so a reader never sees a torn write and a worker stuck inside
one long trial still looks alive.  The coordinator reads these files
to decide three things: is the worker making progress, has it finished
(``status="done"``), and has it gone quiet longer than the heartbeat
timeout (stall → kill → requeue).

Files, not sockets, on purpose: the same mechanism works for local
subprocesses and for remote hosts sharing a filesystem, and a
heartbeat that outlives its worker is exactly the evidence the
coordinator needs.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Union

#: Heartbeat lifecycle states a worker reports.
HEARTBEAT_STATUSES = ("running", "done", "failed")


@dataclass(frozen=True)
class Heartbeat:
    """One worker's most recent sign of life."""

    shard: int
    pid: int
    completed: int
    total: int
    status: str  # "running" | "done" | "failed"
    updated_at: float  # epoch seconds (time.time)
    error: Optional[str] = None
    #: telemetry fold-ins (PR 10) — optional so heartbeat files written
    #: by older workers (and files read by older coordinators) keep
    #: round-tripping: fresh-trial throughput since the worker started,
    #: and the store-commit latency of the most recent trial.
    trials_per_s: Optional[float] = None
    commit_s: Optional[float] = None

    def age_s(self, now: Optional[float] = None) -> float:
        """Seconds since the worker last wrote this heartbeat."""
        now = time.time() if now is None else now
        return now - self.updated_at

    @property
    def done(self) -> bool:
        """Whether the worker reported an orderly finish."""
        return self.status == "done"

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "shard": self.shard,
            "pid": self.pid,
            "completed": self.completed,
            "total": self.total,
            "status": self.status,
            "updated_at": self.updated_at,
            "error": self.error,
        }
        # Telemetry fields only appear once the worker has measured
        # something — files stay byte-compatible with pre-telemetry
        # readers that index strictly by the core keys.
        if self.trials_per_s is not None:
            out["trials_per_s"] = self.trials_per_s
        if self.commit_s is not None:
            out["commit_s"] = self.commit_s
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Heartbeat":
        return cls(
            shard=int(data["shard"]),
            pid=int(data["pid"]),
            completed=int(data["completed"]),
            total=int(data["total"]),
            status=data["status"],
            updated_at=float(data["updated_at"]),
            error=data.get("error"),
            trials_per_s=data.get("trials_per_s"),
            commit_s=data.get("commit_s"),
        )


def write_heartbeat(path: Union[str, os.PathLike],
                    heartbeat: Heartbeat) -> None:
    """Atomically replace the heartbeat file (write temp, rename).

    ``os.replace`` is atomic on POSIX and Windows, so a coordinator
    polling mid-write reads the previous complete heartbeat, never a
    truncated one.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(heartbeat.to_dict(), fh)
    os.replace(tmp, path)


def read_heartbeat(path: Union[str, os.PathLike]) -> Optional[Heartbeat]:
    """The current heartbeat, or None when missing/unreadable.

    Tolerant by design: a worker that died before its first beat, or a
    file caught in an unexpected state, reads as "no heartbeat" — the
    coordinator treats that like a stale one once the grace period
    passes.
    """
    try:
        with open(os.fspath(path), "r", encoding="utf-8") as fh:
            return Heartbeat.from_dict(json.load(fh))
    except (OSError, ValueError, KeyError, TypeError):
        return None
