"""The fabric worker: one process, one shard, one per-shard store.

A worker's whole life::

    task = ShardTask.read(shard_file)
    claim  = specs whose keys the shard store does not hold  (resume)
    for spec in claim: result = spec.run(); sink.write(...)  (commit-per-trial)
    heartbeat after every trial + on a timer                 (liveness)

Work claiming is the store's resume surface: the ``(run_id, key)``
rows already committed in the per-shard store are skipped, so a
requeued worker (after a crash, a kill, or a host reboot) re-runs only
what is missing — claim-by-key dedup, no coordination protocol needed.
Each trial commits individually through a
:class:`~repro.results.SqliteSink` (WAL journal), so death at any
instant loses at most the in-flight trial.

Runnable three ways, all equivalent: in-process
(:func:`run_shard`, what the tests use), ``repro fabric worker
--shard-file F`` (the CLI), or ``python -m repro.fabric.worker
--shard-file F`` (what the coordinator spawns, and the entry point for
remote hosts handed a shard file).
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time
from typing import Dict, List, Optional

from ..obs.registry import TELEMETRY
from .heartbeat import Heartbeat, write_heartbeat
from .plan import ShardTask

#: Exit code of a chaos-injected hard death (``chaos_exit_after``).
CHAOS_EXIT_CODE = 23


def run_shard(task: ShardTask, progress=None) -> Dict[str, int]:
    """Run one shard to completion; returns ``{completed, written, total}``.

    ``completed`` counts every key present in the shard store when the
    worker finishes (resumed + fresh); ``written`` counts only the
    trials this invocation executed.  ``progress`` is an optional
    ``(spec, result)`` callback, mirroring :meth:`Campaign.run`.
    """
    from ..results.sinks import SqliteSink

    specs = task.experiment_specs()
    total = len(specs)
    sink = SqliteSink(task.store_path, run_id=task.run_id,
                      label=f"shard-{task.index}")
    try:
        claimed = set(sink.completed())  # claim-by-key: skip stored work
        counts = {"completed": sum(1 for s in specs if s.key() in claimed),
                  "written": 0}
        # Telemetry folded into the heartbeat payload: fresh-trial
        # throughput since the worker started and the latest commit
        # latency.  Measured unconditionally — the heartbeat is the
        # fabric's progress channel regardless of the obs registry.
        t_start = time.perf_counter()
        rates: Dict[str, Optional[float]] = {"trials_per_s": None,
                                             "commit_s": None}

        def beat(status: str, error: Optional[str] = None) -> None:
            write_heartbeat(task.heartbeat_path, Heartbeat(
                shard=task.index, pid=os.getpid(),
                completed=counts["completed"], total=total,
                status=status, updated_at=time.time(), error=error,
                trials_per_s=rates["trials_per_s"],
                commit_s=rates["commit_s"],
            ))

        # A timer thread keeps the heartbeat fresh through trials that
        # run longer than the heartbeat timeout — a slow trial must not
        # read as a dead worker.
        stop = threading.Event()

        def pulse() -> None:
            while not stop.wait(task.heartbeat_interval_s):
                beat("running")

        beat("running")
        pulser = threading.Thread(target=pulse, daemon=True)
        pulser.start()
        try:
            for spec in specs:
                key = spec.key()
                if key in claimed:
                    continue
                trial_t0 = time.perf_counter()
                result = spec.run()
                commit_t0 = time.perf_counter()
                sink.write(key, spec, result)
                commit_t1 = time.perf_counter()
                counts["completed"] += 1
                counts["written"] += 1
                rates["commit_s"] = round(commit_t1 - commit_t0, 6)
                elapsed = commit_t1 - t_start
                if elapsed > 0:
                    rates["trials_per_s"] = round(
                        counts["written"] / elapsed, 3)
                if TELEMETRY.enabled:
                    TELEMETRY.counter("fabric.trials").inc()
                    TELEMETRY.histogram("fabric.trial_wall_s").observe(
                        commit_t0 - trial_t0)
                    TELEMETRY.histogram("fabric.commit_s").observe(
                        commit_t1 - commit_t0)
                beat("running")
                if progress is not None:
                    progress(spec, result)
                if (task.chaos_exit_after is not None
                        and counts["written"] >= task.chaos_exit_after):
                    # Failure injection: die like a crashed host — no
                    # sink close, no "done" beat, no exception path.
                    os._exit(CHAOS_EXIT_CODE)
        except Exception as exc:
            stop.set()
            beat("failed", error=f"{type(exc).__name__}: {exc}")
            raise
        stop.set()
        beat("done")
        return {"completed": counts["completed"],
                "written": counts["written"], "total": total}
    finally:
        sink.close()


def run_worker_file(shard_file: str, quiet: bool = False,
                    profile: Optional[str] = None) -> int:
    """CLI/process entry: run the shard described by ``shard_file``.

    ``profile`` enables cProfile around the whole shard; the .pstats
    dump lands at ``<profile>.shard-<index>.pstats`` so a multi-worker
    fabric run yields one distinguishable profile per worker.
    """
    try:
        task = ShardTask.read(shard_file)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"cannot read shard file {shard_file!r}: {exc}",
              file=sys.stderr)
        return 2
    profiler = None
    if profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        summary = run_shard(task)
    except Exception as exc:
        print(f"shard {task.index} failed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 1
    finally:
        if profiler is not None:
            profiler.disable()
            dump = f"{profile}.shard-{task.index}.pstats"
            profiler.dump_stats(dump)
            if not quiet:
                print(f"profile written to {dump}", file=sys.stderr)
    if not quiet:
        print(f"shard {task.index}: {summary['written']} executed, "
              f"{summary['completed'] - summary['written']} resumed, "
              f"{summary['total']} total -> {task.store_path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.fabric.worker`` — the spawn/remote entry."""
    parser = argparse.ArgumentParser(
        description="Run one fabric shard from its handoff file.")
    parser.add_argument("--shard-file", required=True,
                        help="ShardTask JSON written by the coordinator "
                             "or `repro fabric plan`")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the completion summary line")
    parser.add_argument("--profile", metavar="PATH",
                        help="cProfile the shard; dump to "
                             "PATH.shard-<index>.pstats")
    args = parser.parse_args(argv)
    return run_worker_file(args.shard_file, quiet=args.quiet,
                           profile=args.profile)


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
