"""Campaign fabric: sharded distributed execution + live results.

The fabric turns one :class:`~repro.api.Campaign` into many worker
processes and back into one canonical results store:

* :mod:`~repro.fabric.plan` — partition a spec grid into
  :class:`ShardTask` handoff files (``hash`` or ``round-robin``);
* :mod:`~repro.fabric.worker` — one process per shard, claim-by-key
  resume, commit-per-trial, heartbeats;
* :mod:`~repro.fabric.coordinator` — dispatch, stall detection,
  bounded requeue, merge via the store's ingest path;
* :mod:`~repro.fabric.service` — the store over HTTP
  (``/runs /query /report /compare``) while campaigns still write.

Entry points: :func:`run_fabric` (or ``repro fabric run``) for a
local sharded run, ``repro fabric plan`` + ``repro fabric worker``
for multi-host runs over a shared filesystem, and
:class:`ResultService` / ``repro serve`` for the live view.  The
invariant the whole package is built around: a fabric run is
trial-for-trial identical to the serial run of the same campaign.
See ``docs/fabric.md``.
"""

from .coordinator import Coordinator, FabricOutcome, run_fabric
from .heartbeat import (
    HEARTBEAT_STATUSES,
    Heartbeat,
    read_heartbeat,
    write_heartbeat,
)
from .plan import (
    PARTITION_STRATEGIES,
    ShardTask,
    build_plan,
    partition,
    shard_file_path,
    shard_of,
)
from .service import ENDPOINTS, ResultService
from .worker import CHAOS_EXIT_CODE, run_shard, run_worker_file

__all__ = [
    "CHAOS_EXIT_CODE",
    "Coordinator",
    "ENDPOINTS",
    "FabricOutcome",
    "HEARTBEAT_STATUSES",
    "Heartbeat",
    "PARTITION_STRATEGIES",
    "ResultService",
    "ShardTask",
    "build_plan",
    "partition",
    "read_heartbeat",
    "run_fabric",
    "run_shard",
    "run_worker_file",
    "shard_file_path",
    "shard_of",
    "write_heartbeat",
]
