"""repro — reproduction of *Communication Efficiency in Self-Stabilizing
Silent Protocols* (Devismes, Masuzawa, Tixeuil; ICDCS 2009).

Declarative quickstart — experiments are data (names + parameters),
resolved through registries, runnable in parallel and resumable::

    from repro import Campaign, ExperimentSpec

    result = ExperimentSpec(
        protocol="coloring", topology="ring",
        topology_params={"n": 12}, seed=1,
    ).run()
    assert result.silent and result.k_efficiency == 1  # ≤1 read/step

    outcome = Campaign.grid(
        protocols=["coloring", "mis", "matching"],
        topologies=[("ring", {"n": 24}), ("grid", {"rows": 5, "cols": 5})],
        schedulers=["synchronous", "central", "locally-central"],
        seeds=range(32),
    ).run(jsonl_path="results.jsonl", workers=8)

Imperative core (what the declarative layer builds for you)::

    from repro import ColoringProtocol, Simulator, ring

    net = ring(12)
    sim = Simulator(ColoringProtocol.for_network(net), net, seed=1)
    report = sim.run_until_silent()
    assert report.stabilized
    assert sim.metrics.observed_k_efficiency() == 1   # reads ≤1 neighbor/step
"""

from .api import (
    Campaign,
    CampaignOutcome,
    ExperimentSpec,
    engine_registry,
    iter_campaign_results,
    load_campaign_results,
    protocol_registry,
    register_engine,
    register_protocol,
    register_scenario,
    register_scheduler,
    register_topology,
    scenario_registry,
    scheduler_registry,
    topology_registry,
)
from .fabric import Coordinator, FabricOutcome, ResultService, run_fabric
from .results import (
    Aggregate,
    JsonlSink,
    ResultStore,
    Sink,
    SqliteSink,
    diff_bench,
    diff_runs,
    summarize,
)
from .scenarios import Scenario
from .core import (
    BoundedFairScheduler,
    CentralScheduler,
    Configuration,
    ConvergenceError,
    EnabledSetEngine,
    GuardedAction,
    IncrementalEngine,
    Protocol,
    RandomSubsetScheduler,
    RoundRobinScheduler,
    ScanEngine,
    Scheduler,
    Simulator,
    StabilizationReport,
    SynchronousScheduler,
    is_silent,
    make_engine,
    make_scheduler,
    silence_witness,
)
from .graphs import (
    Network,
    caterpillar,
    chain,
    clique,
    figure9_path,
    figure11_graph,
    greedy_coloring,
    grid,
    hypercube,
    network_from_edges,
    random_connected,
    random_regular,
    random_tree,
    ring,
    star,
    theorem1_chain,
    theorem1_gadget,
    theorem2_gadget,
    theorem2_network,
    torus,
)
from .predicates import (
    coloring_predicate,
    matched_edges,
    matching_predicate,
    mis_predicate,
)
from .protocols import (
    ColoringProtocol,
    FullReadColoring,
    FullReadMIS,
    FullReadMatching,
    MISProtocol,
    MatchingProtocol,
    matching_over_coloring,
    mis_over_coloring,
)

__version__ = "1.0.0"

__all__ = [
    "Aggregate",
    "BoundedFairScheduler",
    "Campaign",
    "CampaignOutcome",
    "CentralScheduler",
    "ColoringProtocol",
    "Configuration",
    "Coordinator",
    "ExperimentSpec",
    "ConvergenceError",
    "EnabledSetEngine",
    "FabricOutcome",
    "FullReadColoring",
    "FullReadMIS",
    "FullReadMatching",
    "GuardedAction",
    "IncrementalEngine",
    "JsonlSink",
    "MISProtocol",
    "MatchingProtocol",
    "Network",
    "Protocol",
    "RandomSubsetScheduler",
    "ResultService",
    "ResultStore",
    "RoundRobinScheduler",
    "ScanEngine",
    "Scenario",
    "Scheduler",
    "Simulator",
    "Sink",
    "SqliteSink",
    "StabilizationReport",
    "SynchronousScheduler",
    "__version__",
    "caterpillar",
    "chain",
    "clique",
    "coloring_predicate",
    "diff_bench",
    "diff_runs",
    "engine_registry",
    "figure11_graph",
    "figure9_path",
    "greedy_coloring",
    "grid",
    "hypercube",
    "is_silent",
    "iter_campaign_results",
    "load_campaign_results",
    "make_engine",
    "make_scheduler",
    "matched_edges",
    "protocol_registry",
    "register_engine",
    "register_protocol",
    "register_scenario",
    "register_scheduler",
    "register_topology",
    "scenario_registry",
    "scheduler_registry",
    "topology_registry",
    "matching_over_coloring",
    "matching_predicate",
    "mis_over_coloring",
    "mis_predicate",
    "network_from_edges",
    "random_connected",
    "random_regular",
    "random_tree",
    "ring",
    "run_fabric",
    "silence_witness",
    "star",
    "summarize",
    "theorem1_chain",
    "theorem1_gadget",
    "theorem2_gadget",
    "theorem2_network",
    "torus",
]
