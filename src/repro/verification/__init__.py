"""Exhaustive small-model verification of stabilization claims."""

from .exhaustive import (
    ClosureReport,
    ConvergenceReport,
    enumerate_configurations,
    exact_worst_case_rounds,
    verify_closure,
    verify_convergence_round_robin,
)

__all__ = [
    "ClosureReport",
    "ConvergenceReport",
    "enumerate_configurations",
    "exact_worst_case_rounds",
    "verify_closure",
    "verify_convergence_round_robin",
]
