"""Exhaustive small-model verification.

Simulation samples behaviours; for *small* networks we can do better and
check self-stabilization claims over the **entire configuration space**:

* :func:`verify_closure` — Lemma-1-style closure: from every legitimate
  configuration, every single-process step stays legitimate.
* :func:`verify_convergence_round_robin` — from **every** configuration,
  the round-robin fair schedule reaches a silent configuration (and
  reports the exact worst-case step count).  For deterministic
  protocols this explores one trajectory per start; for randomized
  protocols every random draw is branched nondeterministically and the
  check requires that *some* branch reaches silence from every
  configuration while silent configurations have no escaping branch —
  the reachability core of probabilistic stabilization ("converges with
  probability 1" needs, additionally, that the adversary cannot starve
  the good branches; see the paper's Lemma 2 for that argument).
* :func:`exact_worst_case_rounds` — the exact worst-case convergence
  rounds over all initial configurations, the tightness probe for the
  Lemma 4 / Lemma 9 bounds.

Costs are exponential in network size; guard with ``max_configs``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Set, Tuple

from ..core.actions import first_enabled
from ..core.context import StepContext
from ..core.exceptions import ConvergenceError
from ..core.protocol import Protocol
from ..core.silence import is_silent
from ..core.state import Configuration
from ..graphs.topology import Network

ProcessId = Hashable
CanonicalState = Tuple[Tuple[str, Tuple[Tuple[str, object], ...]], ...]


def _canonical(config: Configuration, processes) -> CanonicalState:
    return tuple(
        (repr(p), tuple(sorted(config.state_of(p).items()))) for p in processes
    )


def enumerate_configurations(
    protocol: Protocol, network: Network, max_configs: int = 500_000
) -> Iterator[Configuration]:
    """Every configuration of the protocol (constants pinned)."""
    specs_of = protocol.specs_of(network)
    processes = network.processes
    choices = []
    total = 1
    for p in processes:
        consts = protocol.constant_values(network, p)
        states = []
        names = [s.name for s in specs_of[p]]
        domains = [
            [consts[s.name]] if s.kind == "const" else list(s.domain)
            for s in specs_of[p]
        ]
        for combo in itertools.product(*domains):
            states.append(dict(zip(names, combo)))
        choices.append(states)
        total *= len(states)
        if total > max_configs:
            raise ConvergenceError(
                f"configuration space exceeds max_configs={max_configs}"
            )
    for assignment in itertools.product(*choices):
        yield Configuration(dict(zip(processes, assignment)))


class _Stepper:
    """Single-process successor computation with randomness branching."""

    def __init__(self, protocol: Protocol, network: Network):
        self.protocol = protocol
        self.network = network
        self.specs_of = protocol.specs_of(network)
        self.actions = protocol.actions()

    def successors(self, config: Configuration, p: ProcessId) -> List[Configuration]:
        """All γ' reachable when exactly ``p`` executes one step.

        Deterministic actions yield one successor; a random draw
        branches over every value of the drawn domain.  A disabled
        process yields the unchanged configuration.
        """
        ctx = StepContext(p, self.network, config, self.specs_of, rng=None)
        action = first_enabled(self.actions, ctx)
        if action is None:
            return [config.copy()]

        # Try deterministic execution first.
        try:
            action.effect(ctx)
        except Exception:
            # Randomized effect: branch over the drawn domain by
            # re-executing with each forced value.
            return self._branch_effect(config, p, action)
        successor = config.copy()
        for name, value in ctx.writes.items():
            successor.set(p, name, value)
        return [successor]

    def _branch_effect(self, config, p, action) -> List[Configuration]:
        branches = []
        spec_domains = self._drawable_domains(p)
        for domain in spec_domains:
            for value in domain:
                ctx = StepContext(
                    p, self.network, config, self.specs_of,
                    rng=_ForcedRng(value),
                )
                if first_enabled(self.actions, ctx) is not action:
                    continue
                try:
                    action.effect(ctx)
                except Exception:
                    continue
                successor = config.copy()
                for name, val in ctx.writes.items():
                    successor.set(p, name, val)
                branches.append(successor)
            if branches:
                return branches
        raise ConvergenceError("could not branch a randomized effect")

    def _drawable_domains(self, p):
        # The protocols here draw only from their own comm domains.
        return [
            spec.domain for spec in self.specs_of[p] if spec.kind == "comm"
        ]


class _ForcedRng:
    """rng stub returning a predetermined value for one draw.

    Only the :class:`IntRange` sampling path is supported — the package's
    randomized draws are all palette draws over integer ranges.  A
    protocol drawing from a :class:`FiniteSet` would need the
    ``randrange`` path; raising keeps that case loud instead of wrong.
    """

    def __init__(self, value):
        self._value = value

    def randrange(self, n):
        raise NotImplementedError(
            "branching over FiniteSet draws is not implemented"
        )

    def randint(self, lo, hi):
        if not (lo <= self._value <= hi):
            raise ValueError("forced value out of range")
        return self._value


@dataclass
class ClosureReport:
    """Outcome of exhaustive closure verification."""

    legitimate_configs: int
    violations: List[Tuple[CanonicalState, str]]

    @property
    def holds(self) -> bool:
        return not self.violations


def verify_closure(
    protocol: Protocol, network: Network, max_configs: int = 200_000
) -> ClosureReport:
    """Check the predicate is closed under every single-process step."""
    stepper = _Stepper(protocol, network)
    processes = network.processes
    count = 0
    violations: List[Tuple[CanonicalState, str]] = []
    for config in enumerate_configurations(protocol, network, max_configs):
        if not protocol.is_legitimate(network, config):
            continue
        count += 1
        for p in processes:
            for successor in stepper.successors(config, p):
                if not protocol.is_legitimate(network, successor):
                    violations.append((_canonical(config, processes), repr(p)))
    return ClosureReport(legitimate_configs=count, violations=violations)


@dataclass
class ConvergenceReport:
    """Outcome of exhaustive convergence verification."""

    configs_checked: int
    worst_steps: int
    all_converged: bool
    #: a non-converging start (canonical form), if any
    counterexample: Optional[CanonicalState] = None


def verify_convergence_round_robin(
    protocol: Protocol,
    network: Network,
    max_configs: int = 100_000,
    state_budget: int = 250_000,
) -> ConvergenceReport:
    """From every configuration, silence is reached under round-robin.

    Deterministic protocols have a single trajectory per start, so this
    is an exact "converges from everywhere" proof with the exact
    worst-case step count.  Randomized protocols branch at every random
    draw; a bounded BFS over (configuration, schedule position) states
    then certifies that silence is *reachable* from every start — the
    reachability core of "stabilizes with probability 1" (the fair-coin
    argument of the paper's Lemma 2 upgrades reachability to
    probability 1).  ``worst_steps`` reports the shortest-path depth of
    the worst start.
    """
    from collections import deque

    stepper = _Stepper(protocol, network)
    processes = network.processes
    n = len(processes)
    worst = 0
    checked = 0
    for start in enumerate_configurations(protocol, network, max_configs):
        checked += 1
        if is_silent(protocol, network, start):
            continue
        queue = deque([(start, 0, 0)])  # (config, schedule position, depth)
        visited: Set[Tuple[CanonicalState, int]] = {
            (_canonical(start, processes), 0)
        }
        reached: Optional[int] = None
        while queue:
            config, pos, depth = queue.popleft()
            p = processes[pos]
            for successor in stepper.successors(config, p):
                if is_silent(protocol, network, successor):
                    reached = depth + 1
                    break
                key = (_canonical(successor, processes), (pos + 1) % n)
                if key in visited:
                    continue
                visited.add(key)
                if len(visited) > state_budget:
                    raise ConvergenceError(
                        "state budget exhausted during convergence check"
                    )
                queue.append((successor, (pos + 1) % n, depth + 1))
            if reached is not None:
                break
        if reached is None:
            return ConvergenceReport(
                configs_checked=checked,
                worst_steps=worst,
                all_converged=False,
                counterexample=_canonical(start, processes),
            )
        worst = max(worst, reached)
    return ConvergenceReport(
        configs_checked=checked, worst_steps=worst, all_converged=True
    )


def exact_worst_case_rounds(
    protocol: Protocol, network: Network, max_configs: int = 100_000
) -> int:
    """Exact worst-case rounds to silence under the round-robin daemon.

    One round-robin sweep over n processes = one round, so worst-case
    rounds = ⌈worst steps / n⌉.
    """
    report = verify_convergence_round_robin(protocol, network, max_configs)
    if not report.all_converged:
        raise ConvergenceError("protocol does not converge from every start")
    n = network.n
    return -(-report.worst_steps // n)
