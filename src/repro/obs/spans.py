"""Span tracer: wall-time records for named operations.

A span is one timed region — ``with obs.span("engine.run_steps",
n=10_000):`` — whose record lands in a bounded ring buffer when the
block exits: name, start timestamp, wall seconds, plus any fields
attached at entry or via :meth:`Span.note` (step counts, activation
totals, materialize events).  The ring is a ``deque(maxlen=...)`` so a
long campaign keeps the most recent spans and never grows without
bound; :meth:`SpanTracer.export_jsonl` appends the buffer to a JSONL
file for offline inspection.

When the registry is disabled, :meth:`Telemetry.span
<repro.obs.registry.Telemetry.span>` returns the shared ``NULL_SPAN``
— a singleton whose enter/exit/note do nothing — so instrumented code
pays no allocation and no clock read.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Dict, List


class Span:
    """One in-flight timed region (created by :meth:`SpanTracer.start`)."""

    __slots__ = ("name", "fields", "_tracer", "_t0", "wall_s")

    def __init__(self, tracer: "SpanTracer", name: str,
                 fields: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.fields = fields
        self._t0 = 0.0
        self.wall_s = 0.0

    def note(self, **fields: Any) -> "Span":
        """Attach (or overwrite) fields mid-span."""
        self.fields.update(fields)
        return self

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.wall_s = time.perf_counter() - self._t0
        self._tracer._record(self)


class _NullSpan:
    """The shared disabled-path span: every method is a no-op."""

    __slots__ = ()

    def note(self, **fields: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


#: singleton handed out whenever the registry is disabled.
NULL_SPAN = _NullSpan()


class SpanTracer:
    """Bounded ring buffer of completed span records."""

    def __init__(self, capacity: int = 4096):
        self.capacity = int(capacity)
        self._ring: deque = deque(maxlen=self.capacity)
        self._lock = threading.Lock()

    def start(self, name: str, fields: Dict[str, Any]) -> Span:
        return Span(self, name, fields)

    def add(self, name: str, wall_s: float, **fields: Any) -> None:
        """Record an already-timed span (hot loops time themselves and
        report once at the span boundary)."""
        rec = {"name": name, "t": time.time(), "wall_s": wall_s}
        if fields:
            rec.update(fields)
        with self._lock:
            self._ring.append(rec)

    def _record(self, span: Span) -> None:
        rec = {"name": span.name, "t": time.time(),
               "wall_s": span.wall_s}
        if span.fields:
            rec.update(span.fields)
        with self._lock:
            self._ring.append(rec)

    def records(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(r) for r in self._ring]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def export_jsonl(self, path: str) -> int:
        """Append every buffered record to ``path``; returns the count."""
        records = self.records()
        with open(path, "a", encoding="utf-8") as fh:
            for rec in records:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        return len(records)
