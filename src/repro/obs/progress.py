"""Live-progress assembly: store deltas plus heartbeat fan-in.

The pieces ``/progress`` (``repro serve``) and ``repro top`` share:

* :func:`read_heartbeats` / :func:`heartbeat_rows` — scan a fabric
  plan dir for ``heartbeat-*.json`` files and fold each into one
  JSON-clean row (shard, pid, completed/total, status, age, rate);
* :func:`fabric_summary` — aggregate those rows into the dashboard
  numbers (workers alive, trials/s, ETA, stall count);
* :class:`ProgressTracker` — remembers the last observed trial count
  per run so successive polls report *deltas* and a poll-window rate
  (the store keeps no per-trial timestamps; the tracker turns two
  monotone counts into a rate);
* :func:`fetch_progress` — a stdlib HTTP GET of a running service's
  ``/progress`` endpoint, for ``repro top <url>``.

Heartbeat reading is tolerant the same way the coordinator is: a
missing or torn file is simply not a row.  A worker whose heartbeat is
older than the stall timeout is flagged ``stalled`` but still listed —
exactly the evidence ``repro top`` exists to surface.
"""

from __future__ import annotations

import glob
import json
import os
import threading
import time
import urllib.request
from typing import Any, Dict, List, Optional

from ..fabric.heartbeat import Heartbeat, read_heartbeat

#: heartbeats older than this read as stalled (mirrors the
#: coordinator's default ``heartbeat_timeout_s``).
DEFAULT_STALL_TIMEOUT_S = 10.0


def read_heartbeats(plan_dir: str) -> List[Heartbeat]:
    """Every parseable ``heartbeat-*.json`` under ``plan_dir``,
    ordered by shard index."""
    beats = []
    for path in sorted(glob.glob(os.path.join(plan_dir, "heartbeat-*.json"))):
        hb = read_heartbeat(path)
        if hb is not None:
            beats.append(hb)
    return sorted(beats, key=lambda hb: hb.shard)


def heartbeat_rows(
    heartbeats: List[Heartbeat],
    now: Optional[float] = None,
    stall_timeout_s: float = DEFAULT_STALL_TIMEOUT_S,
) -> List[Dict[str, Any]]:
    """Heartbeats as JSON-clean dashboard rows (age + stall flag added).

    A finished worker ("done"/"failed") is never stalled — its
    heartbeat legitimately stops aging forward.
    """
    now = time.time() if now is None else now
    rows = []
    for hb in heartbeats:
        age = hb.age_s(now)
        rows.append({
            "shard": hb.shard,
            "pid": hb.pid,
            "completed": hb.completed,
            "total": hb.total,
            "status": hb.status,
            "age_s": round(age, 3),
            "stalled": hb.status == "running" and age > stall_timeout_s,
            "trials_per_s": hb.trials_per_s,
            "commit_s": hb.commit_s,
            "error": hb.error,
        })
    return rows


def fabric_summary(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate worker rows into the one-line campaign picture."""
    completed = sum(r["completed"] for r in rows)
    total = sum(r["total"] for r in rows)
    running = [r for r in rows if r["status"] == "running"]
    rate = sum(r["trials_per_s"] or 0.0 for r in running)
    remaining = max(0, total - completed)
    eta_s: Optional[float] = None
    if remaining == 0:
        eta_s = 0.0
    elif rate > 0:
        eta_s = remaining / rate
    return {
        "workers": len(rows),
        "running": len(running),
        "done": sum(1 for r in rows if r["status"] == "done"),
        "failed": sum(1 for r in rows if r["status"] == "failed"),
        "stalled": sum(1 for r in rows if r["stalled"]),
        "completed": completed,
        "total": total,
        "trials_per_s": round(rate, 3),
        "eta_s": None if eta_s is None else round(eta_s, 1),
    }


def fabric_section(
    plan_dir: Optional[str],
    stall_timeout_s: float = DEFAULT_STALL_TIMEOUT_S,
    now: Optional[float] = None,
) -> Optional[Dict[str, Any]]:
    """The ``fabric`` block of a ``/progress`` payload, or None when
    there is no plan dir (or no heartbeats yet)."""
    if not plan_dir or not os.path.isdir(plan_dir):
        return None
    rows = heartbeat_rows(read_heartbeats(plan_dir), now=now,
                          stall_timeout_s=stall_timeout_s)
    if not rows:
        return None
    return {
        "plan_dir": os.path.abspath(plan_dir),
        "workers": rows,
        "summary": fabric_summary(rows),
    }


class ProgressTracker:
    """Turns successive trial counts into deltas and a window rate.

    Thread-safe (the HTTP service polls from handler threads).  The
    first observation of a run has no window, so its delta is the full
    count and the rate is None.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._last: Dict[str, Any] = {}

    def update(self, run_id: str, count: int,
               now: Optional[float] = None) -> Dict[str, Any]:
        now = time.time() if now is None else now
        with self._lock:
            prev = self._last.get(run_id)
            self._last[run_id] = (count, now)
        if prev is None:
            return {"trials": count, "interval_s": None, "trials_per_s": None}
        prev_count, prev_t = prev
        interval = now - prev_t
        delta = count - prev_count
        rate = round(delta / interval, 3) if interval > 0 else None
        return {"trials": delta, "interval_s": round(interval, 3),
                "trials_per_s": rate}


def fetch_progress(url: str, timeout: float = 5.0) -> Dict[str, Any]:
    """GET a service's ``/progress`` (``url`` may be the service root)."""
    url = url.rstrip("/")
    if not url.endswith("/progress"):
        url = url + "/progress"
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))
