"""``repro top`` — a refreshing one-screen view of a running campaign.

Point it at either side of the fabric:

* a **plan dir** (the ``<store>.fabric`` workdir, or a ``repro fabric
  plan`` output dir) — frames are built straight from the heartbeat
  files, no service required;
* a **service URL** (a running ``repro serve``) — frames come from its
  ``/progress`` endpoint, which adds store-side trial deltas.

Each frame is one screen: the campaign headline (trials done/total,
aggregate trials/s, ETA), one row per worker (shard, pid, progress,
status, heartbeat age, rate), and the stall count.  ``--once`` prints
a single frame and exits — that is also what the tests and the CI
smoke lane drive.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional

from .progress import (
    DEFAULT_STALL_TIMEOUT_S,
    fabric_section,
    fetch_progress,
)

#: ANSI "clear screen, home cursor" used between live frames.
_CLEAR = "\x1b[2J\x1b[H"


def _fmt_eta(eta_s: Optional[float]) -> str:
    if eta_s is None:
        return "?"
    if eta_s >= 3600:
        return f"{eta_s / 3600:.1f}h"
    if eta_s >= 60:
        return f"{eta_s / 60:.1f}m"
    return f"{eta_s:.1f}s"


def render_top(progress: Dict[str, Any], source: str = "") -> str:
    """One dashboard frame from a ``/progress``-shaped payload."""
    lines: List[str] = []
    title = "repro top"
    if source:
        title += f" — {source}"
    lines.append(title)

    run = progress.get("run")
    trials = progress.get("trials")
    if run is not None and trials is not None:
        head = f"run {run!r}: {trials} trials in store"
        delta = progress.get("delta") or {}
        if delta.get("trials_per_s") is not None:
            head += (f"  (+{delta['trials']} in {delta['interval_s']}s, "
                     f"{delta['trials_per_s']}/s)")
        lines.append(head)

    fabric = progress.get("fabric")
    if not fabric:
        lines.append("no live fabric heartbeats")
        return "\n".join(lines) + "\n"

    s = fabric["summary"]
    pct = (100.0 * s["completed"] / s["total"]) if s["total"] else 100.0
    lines.append(
        f"fabric: {s['completed']}/{s['total']} trials ({pct:.0f}%)  "
        f"rate {s['trials_per_s']}/s  eta {_fmt_eta(s['eta_s'])}"
    )
    lines.append(
        f"workers: {s['workers']} ({s['running']} running, {s['done']} done, "
        f"{s['failed']} failed)  stalls: {s['stalled']}"
    )
    header = (f"  {'shard':>5}  {'pid':>7}  {'progress':>10}  "
              f"{'status':<8}  {'age':>6}  {'trials/s':>8}")
    lines.append(header)
    for row in fabric["workers"]:
        rate = row.get("trials_per_s")
        mark = " STALLED" if row.get("stalled") else ""
        lines.append(
            f"  {row['shard']:>5}  {row['pid']:>7}  "
            f"{row['completed']}/{row['total']:<4}".ljust(30)[:30]
            + f"  {row['status']:<8}  {row['age_s']:>5.1f}s  "
            + (f"{rate:>8.2f}" if rate is not None else f"{'-':>8}")
            + mark
        )
        if row.get("error"):
            lines.append(f"         error: {row['error']}")
    return "\n".join(lines) + "\n"


def top_frame(
    target: str,
    stall_timeout_s: float = DEFAULT_STALL_TIMEOUT_S,
) -> Dict[str, Any]:
    """One ``/progress``-shaped payload from a plan dir or service URL."""
    if target.startswith(("http://", "https://")):
        return fetch_progress(target)
    section = fabric_section(target, stall_timeout_s=stall_timeout_s)
    return {"run": None, "trials": None, "delta": None, "fabric": section}


def run_top(
    target: str,
    interval_s: float = 2.0,
    iterations: Optional[int] = None,
    clear: bool = True,
    stall_timeout_s: float = DEFAULT_STALL_TIMEOUT_S,
    out=None,
) -> int:
    """Drive the dashboard loop (``iterations=None`` → until Ctrl-C).

    Returns 0 normally; 1 when the target never produced a frame
    (bad dir / unreachable service on the first poll).
    """
    out = sys.stdout if out is None else out
    shown = 0
    try:
        while iterations is None or shown < iterations:
            try:
                frame = top_frame(target, stall_timeout_s=stall_timeout_s)
            except OSError as exc:
                if shown == 0:
                    print(f"repro top: cannot reach {target!r}: {exc}",
                          file=sys.stderr)
                    return 1
                raise
            text = render_top(frame, source=target)
            if clear and shown:
                out.write(_CLEAR)
            out.write(text)
            out.flush()
            shown += 1
            if iterations is not None and shown >= iterations:
                break
            time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0
