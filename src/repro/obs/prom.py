"""Prometheus text exposition (format version 0.0.4) of the registry.

One function, :func:`render_prometheus`, turns a
:class:`~repro.obs.registry.Telemetry` into the plain-text format a
Prometheus scraper (or ``curl``) expects::

    # TYPE repro_sim_steps_total counter
    repro_sim_steps_total 1234
    # TYPE repro_trial_wall_s histogram
    repro_trial_wall_s_bucket{le="0.001"} 3
    ...
    repro_trial_wall_s_bucket{le="+Inf"} 9
    repro_trial_wall_s_sum 0.412
    repro_trial_wall_s_count 9

Metric names are sanitized (``.`` and anything non-alphanumeric
becomes ``_``) and prefixed ``repro_``; counters gain the conventional
``_total`` suffix.  Served by ``repro serve`` at ``/metrics``.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Tuple

from .registry import Telemetry

#: MIME type of exposition format 0.0.4 (what /metrics serves).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str) -> str:
    """``engine.run_steps`` -> ``repro_engine_run_steps``."""
    flat = _SANITIZE.sub("_", name).strip("_")
    return f"repro_{flat}"


def _render_labels(labels: Iterable[Tuple[str, str]],
                   extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        '{}="{}"'.format(k, str(v).replace("\\", r"\\").replace('"', r"\""))
        for k, v in pairs
    )
    return "{" + body + "}"


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


def render_prometheus(telemetry: Telemetry) -> str:
    """The full registry in exposition format 0.0.4 (trailing newline)."""
    counters, gauges, histograms = telemetry.instruments()
    lines: List[str] = []
    typed: set = set()

    def header(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for c in sorted(counters, key=lambda i: (i.name, i.labels)):
        name = metric_name(c.name)
        if not name.endswith("_total"):
            name += "_total"
        header(name, "counter")
        lines.append(f"{name}{_render_labels(c.labels)} {_fmt_value(c.value)}")

    for g in sorted(gauges, key=lambda i: (i.name, i.labels)):
        name = metric_name(g.name)
        header(name, "gauge")
        lines.append(f"{name}{_render_labels(g.labels)} {_fmt_value(g.value)}")

    for h in sorted(histograms, key=lambda i: (i.name, i.labels)):
        name = metric_name(h.name)
        header(name, "histogram")
        cumulative = 0
        for bound, count in zip(h.buckets, h.counts):
            cumulative += count
            le = _render_labels(h.labels, (("le", _fmt_value(float(bound))),))
            lines.append(f"{name}_bucket{le} {cumulative}")
        cumulative += h.counts[-1]
        le = _render_labels(h.labels, (("le", "+Inf"),))
        lines.append(f"{name}_bucket{le} {cumulative}")
        lab = _render_labels(h.labels)
        lines.append(f"{name}_sum{lab} {repr(h.sum)}")
        lines.append(f"{name}_count{lab} {h.count}")

    return "\n".join(lines) + "\n" if lines else ""
