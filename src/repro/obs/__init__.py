"""repro.obs — the telemetry spine: counters, spans, live progress.

One process-local registry (:data:`TELEMETRY`), off by default, with a
near-free disabled path so the engines' hot loops can stay
instrumented permanently:

* **Counters / gauges / histograms** — fixed handles, allocation-free
  updates, one ``enabled`` branch per event batch at the call sites
  (:mod:`repro.obs.registry`).
* **Spans** — ``with obs.span("engine.run_steps", n=k):`` records wall
  time plus step/activation/materialize counts to a bounded ring
  buffer, exportable as JSONL (:mod:`repro.obs.spans`).
* **Prometheus exposition** — :func:`render_prometheus` serves the
  registry at ``/metrics`` in text format 0.0.4
  (:mod:`repro.obs.prom`).
* **Live progress** — heartbeat fan-in and store deltas behind
  ``/progress`` and ``repro top`` (:mod:`repro.obs.progress`,
  :mod:`repro.obs.top`).

Quickstart::

    from repro import obs

    obs.enable()                      # or REPRO_OBS=1 in the environment
    obs.counter("demo.events").inc(3)
    with obs.span("demo.work", n=10):
        pass
    text = obs.render_prometheus()    # what /metrics serves
    obs.disable(); obs.reset()

Telemetry never reads or writes simulation state or RNG streams, so
traces are byte-identical with the registry on or off.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .prom import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from .prom import render_prometheus as _render
from .registry import (
    DEFAULT_BUCKETS,
    TELEMETRY,
    Counter,
    Gauge,
    Histogram,
    Telemetry,
)
from .spans import NULL_SPAN, Span, SpanTracer

__all__ = [
    "TELEMETRY", "Telemetry", "Counter", "Gauge", "Histogram",
    "Span", "SpanTracer", "NULL_SPAN", "DEFAULT_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "enable", "disable", "enabled", "reset",
    "counter", "gauge", "histogram", "span", "spans",
    "export_spans_jsonl", "snapshot", "render_prometheus",
]


# ----------------------------------------------------------------------
# Module-level convenience API over the singleton
# ----------------------------------------------------------------------
def enable() -> Telemetry:
    """Switch the process registry on (idempotent)."""
    return TELEMETRY.enable()


def disable() -> Telemetry:
    """Switch the process registry off (instrument values persist)."""
    return TELEMETRY.disable()


def enabled() -> bool:
    """Whether the process registry is currently recording."""
    return TELEMETRY.enabled


def reset() -> None:
    """Drop every instrument and span record."""
    TELEMETRY.reset()


def counter(name: str, **labels: Any) -> Counter:
    return TELEMETRY.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    return TELEMETRY.gauge(name, **labels)


def histogram(name: str, buckets=None, **labels: Any) -> Histogram:
    return TELEMETRY.histogram(name, buckets=buckets, **labels)


def span(name: str, **fields: Any):
    return TELEMETRY.span(name, **fields)


def spans() -> List[Dict[str, Any]]:
    return TELEMETRY.spans()


def export_spans_jsonl(path: str) -> int:
    return TELEMETRY.export_spans_jsonl(path)


def snapshot() -> Dict[str, Any]:
    return TELEMETRY.snapshot()


def render_prometheus() -> str:
    return _render(TELEMETRY)
