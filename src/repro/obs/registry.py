"""Process-local telemetry registry: counters, gauges, histograms.

One :class:`Telemetry` instance (the module singleton ``TELEMETRY``)
holds every instrument the process creates.  The registry is **off by
default** and the contract with the hot loops is strict:

* instrument handles are plain objects fetched once (at ``__init__``
  time in the engines) — ``inc``/``set``/``observe`` never allocate;
* call sites guard recording behind a single attribute read
  (``if TELEMETRY.enabled:``), so a disabled registry costs one branch
  per *event batch* (a fused span, a flush), not per step;
* recording never touches simulation state or RNG streams — traces
  are byte-identical with telemetry on or off (regression-tested).

Enable programmatically (:func:`Telemetry.enable`) or for a whole
process tree with ``REPRO_OBS=1`` in the environment (fabric workers
inherit it).  Instruments accept optional labels::

    TELEMETRY.counter("fabric.requeues").inc()
    TELEMETRY.gauge("engine.enabled_set").set(17)
    TELEMETRY.histogram("trial.wall_s").observe(0.042)
    TELEMETRY.counter("service.requests", endpoint="/query").inc()

Snapshots (:meth:`Telemetry.snapshot`) are JSON-clean dicts; the
Prometheus text exposition lives in :mod:`repro.obs.prom`.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: default histogram bucket upper bounds (seconds-flavored, fixed).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotone counter.  ``inc`` is allocation-free."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value.  ``set``/``inc`` are allocation-free."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        self.value += n


class Histogram:
    """A fixed-bucket histogram (cumulative counts at exposition time).

    Buckets are upper bounds fixed at construction; ``observe`` is a
    bisect plus two scalar updates — no allocation, no resizing.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, labels: _LabelKey = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        # one slot per bound plus the +Inf overflow slot
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1


class Telemetry:
    """The process-local instrument registry (see module docs).

    ``enabled`` is a plain attribute — reading it is the entire cost of
    the disabled path at a call site.  Instrument creation is
    thread-safe and idempotent: the same (kind, name, labels) triple
    always returns the same object, so handles can be fetched eagerly
    and shared.
    """

    def __init__(self, enabled: bool = False, span_capacity: int = 4096):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, _LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, _LabelKey], Histogram] = {}
        from .spans import SpanTracer  # local import: spans need no registry

        self.tracer = SpanTracer(capacity=span_capacity)

    # ------------------------------------------------------------------
    # Switches
    # ------------------------------------------------------------------
    def enable(self) -> "Telemetry":
        self.enabled = True
        return self

    def disable(self) -> "Telemetry":
        self.enabled = False
        return self

    def reset(self) -> None:
        """Drop every instrument and span record (tests, fresh runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        self.tracer.clear()

    # ------------------------------------------------------------------
    # Instruments (get-or-create; stable handles)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            with self._lock:
                inst = self._counters.setdefault(key, Counter(*key))
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            with self._lock:
                inst = self._gauges.setdefault(key, Gauge(*key))
        return inst

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  **labels: Any) -> Histogram:
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            with self._lock:
                inst = self._histograms.setdefault(
                    key, Histogram(*key, buckets=buckets or DEFAULT_BUCKETS)
                )
        return inst

    # ------------------------------------------------------------------
    # Spans (delegates to the tracer; null span when disabled)
    # ------------------------------------------------------------------
    def span(self, name: str, **fields: Any):
        """A context manager timing one named operation.

        Disabled registries hand back a shared no-op span — no
        allocation, no clock reads — so ``with obs.span(...):`` is safe
        on warm paths.
        """
        if not self.enabled:
            from .spans import NULL_SPAN

            return NULL_SPAN
        return self.tracer.start(name, fields)

    def record_span(self, name: str, wall_s: float, **fields: Any) -> None:
        """Record an already-timed span (no-op while disabled)."""
        if self.enabled:
            self.tracer.add(name, wall_s, **fields)

    def spans(self) -> List[Dict[str, Any]]:
        """Completed span records, oldest first (bounded ring)."""
        return self.tracer.records()

    def export_spans_jsonl(self, path: str) -> int:
        """Append every buffered span record to ``path`` as JSON lines;
        returns the number written."""
        return self.tracer.export_jsonl(path)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-clean dump of every instrument (labels folded into
        the key as ``name{k=v,...}``)."""

        def keyed(name: str, labels: _LabelKey) -> str:
            if not labels:
                return name
            inner = ",".join(f"{k}={v}" for k, v in labels)
            return f"{name}{{{inner}}}"

        with self._lock:
            counters = {keyed(c.name, c.labels): c.value
                        for c in self._counters.values()}
            gauges = {keyed(g.name, g.labels): g.value
                      for g in self._gauges.values()}
            histograms = {
                keyed(h.name, h.labels): {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for h in self._histograms.values()
            }
        return {
            "enabled": self.enabled,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def instruments(self):
        """(counters, gauges, histograms) lists — exposition helper."""
        with self._lock:
            return (list(self._counters.values()),
                    list(self._gauges.values()),
                    list(self._histograms.values()))


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "").strip() not in ("", "0", "false")


#: the module-level singleton every layer shares.
TELEMETRY = Telemetry(enabled=_env_enabled())
