"""Command-line interface.

Examples::

    python -m repro run coloring --topology ring --n 16
    python -m repro run mis --topology gnp --n 30 --seed 4 --render
    python -m repro stability matching --topology chain --n 12
    python -m repro demo thm1-splice
    python -m repro availability coloring --topology grid --n 25
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .analysis import (
    matching_round_bound,
    matching_stability_bound,
    measure_stability,
    mis_round_bound,
    mis_stability_bound,
)
from .core import Simulator, make_scheduler
from .faults import availability_experiment
from .graphs import (
    Network,
    chain,
    clique,
    greedy_coloring,
    grid,
    random_connected,
    random_regular,
    random_tree,
    ring,
    star,
    torus,
)
from .impossibility import (
    theorem1_gadget_demo,
    theorem1_overlay_demo,
    theorem1_splice_demo,
    theorem2_demo,
    theorem2_gadget_demo,
)
from .protocols import (
    ColoringProtocol,
    FullReadColoring,
    FullReadMIS,
    FullReadMatching,
    MISProtocol,
    MatchingProtocol,
)
from .viz import render_coloring, render_matching, render_mis

DEMOS: Dict[str, Callable] = {
    "thm1-overlay": theorem1_overlay_demo,
    "thm1-splice": theorem1_splice_demo,
    "thm1-gadget": lambda: theorem1_gadget_demo(3),
    "thm2": theorem2_demo,
    "thm2-gadget": lambda: theorem2_gadget_demo(3),
}


def build_topology(args) -> Network:
    n = args.n
    makers: Dict[str, Callable[[], Network]] = {
        "chain": lambda: chain(n),
        "ring": lambda: ring(n),
        "star": lambda: star(max(1, n - 1)),
        "clique": lambda: clique(n),
        "grid": lambda: grid(*_near_square(n)),
        "torus": lambda: torus(*_near_square(max(n, 9))),
        "tree": lambda: random_tree(n, seed=args.seed),
        "gnp": lambda: random_connected(n, args.p, seed=args.seed),
        "regular": lambda: random_regular(n if n % 2 == 0 else n + 1, 3,
                                          seed=args.seed),
    }
    try:
        return makers[args.topology]()
    except KeyError:
        raise SystemExit(f"unknown topology {args.topology!r}; "
                         f"known: {sorted(makers)}")


def _near_square(n: int):
    import math

    rows = max(1, int(math.isqrt(n)))
    cols = max(1, (n + rows - 1) // rows)
    return rows, cols


def build_protocol(name: str, network: Network):
    colors = greedy_coloring(network)
    makers = {
        "coloring": lambda: ColoringProtocol.for_network(network),
        "mis": lambda: MISProtocol(network, colors),
        "matching": lambda: MatchingProtocol(network, colors),
        "coloring-full": lambda: FullReadColoring.for_network(network),
        "mis-full": lambda: FullReadMIS(network, colors),
        "matching-full": lambda: FullReadMatching(network, colors),
    }
    try:
        return makers[name]()
    except KeyError:
        raise SystemExit(f"unknown protocol {name!r}; known: {sorted(makers)}")


def _render(protocol_name: str, network, config) -> str:
    if protocol_name.startswith("coloring"):
        return render_coloring(network, config)
    if protocol_name.startswith("mis"):
        return render_mis(network, config)
    return render_matching(network, config)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_run(args) -> int:
    network = build_topology(args)
    protocol = build_protocol(args.protocol, network)
    scheduler = make_scheduler(args.scheduler) if args.scheduler else None
    sim = Simulator(protocol, network, scheduler=scheduler, seed=args.seed)
    report = sim.run_until_silent(max_rounds=args.max_rounds)
    print(f"{protocol.name} on {args.topology} "
          f"(n={network.n}, m={network.m}, Δ={network.max_degree})")
    print(f"  stabilized={report.stabilized} rounds={report.rounds} "
          f"steps={report.steps}")
    print(f"  k-efficiency={sim.metrics.observed_k_efficiency()} "
          f"max-bits/step={sim.metrics.max_bits_in_step:.2f}")
    if args.protocol == "mis":
        print(f"  Lemma 4 round bound: "
              f"{mis_round_bound(network, greedy_coloring(network))}")
    if args.protocol == "matching":
        print(f"  Lemma 9 round bound: {matching_round_bound(network)}")
    if args.render:
        print(_render(args.protocol, network, sim.config))
    return 0


def cmd_stability(args) -> int:
    network = build_topology(args)
    protocol = build_protocol(args.protocol, network)
    m = measure_stability(protocol, network, seed=args.seed,
                          suffix_rounds=args.suffix_rounds)
    print(f"{protocol.name}: {m.x}/{network.n} processes are "
          f"eventually-{m.k}-stable "
          f"(silence after {m.rounds_to_silence} rounds)")
    if args.protocol == "mis":
        bound, exact = mis_stability_bound(network)
        print(f"  Theorem 6 bound ⌊(L_max+1)/2⌋ = {bound}"
              f"{'' if exact else ' (heuristic L_max)'}")
    if args.protocol == "matching":
        print(f"  Theorem 8 bound 2⌈m/(2Δ-1)⌉ = "
              f"{matching_stability_bound(network)}")
    return 0


def cmd_demo(args) -> int:
    try:
        demo = DEMOS[args.name]()
    except KeyError:
        raise SystemExit(f"unknown demo {args.name!r}; known: {sorted(DEMOS)}")
    report = demo.verify(rounds=args.rounds, seed=args.seed)
    print(f"{demo.name}: trap edge {demo.trap_edge}")
    print(f"  silent={report.silent} legitimate={report.legitimate} "
          f"comm-changed={report.comm_changed}")
    print(f"  demonstrates impossibility: "
          f"{report.demonstrates_impossibility}")
    return 0 if report.demonstrates_impossibility else 1


def cmd_availability(args) -> int:
    network = build_topology(args)
    protocol = build_protocol(args.protocol, network)
    report = availability_experiment(
        protocol,
        network,
        fault_period_rounds=args.fault_period,
        fault_fraction=args.fault_fraction,
        total_rounds=args.total_rounds,
        seed=args.seed,
    )
    print(f"{protocol.name}: {report.faults_injected} faults over "
          f"{args.total_rounds} rounds")
    print(f"  availability: {report.availability:.1%} "
          f"(mean recovery {report.mean_recovery_rounds:.1f} rounds)")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Self-stabilizing silent protocols "
                    "(Devismes-Masuzawa-Tixeuil, ICDCS 2009)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("protocol", help="coloring | mis | matching | *-full")
        p.add_argument("--topology", default="ring")
        p.add_argument("--n", type=int, default=12)
        p.add_argument("--p", type=float, default=0.25,
                       help="edge probability for gnp")
        p.add_argument("--seed", type=int, default=0)

    run = sub.add_parser("run", help="run a protocol to silence")
    add_common(run)
    run.add_argument("--scheduler", default=None,
                     help="synchronous | central | random-subset | "
                          "round-robin | bounded-fair")
    run.add_argument("--max-rounds", type=int, default=100_000)
    run.add_argument("--render", action="store_true")
    run.set_defaults(fn=cmd_run)

    stab = sub.add_parser("stability", help="measure ♦-(x,1)-stability")
    add_common(stab)
    stab.add_argument("--suffix-rounds", type=int, default=30)
    stab.set_defaults(fn=cmd_stability)

    demo = sub.add_parser("demo", help="run an impossibility demonstration")
    demo.add_argument("name", help=" | ".join(sorted(DEMOS)))
    demo.add_argument("--rounds", type=int, default=25)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(fn=cmd_demo)

    avail = sub.add_parser("availability",
                           help="periodic faults, measure availability")
    add_common(avail)
    avail.add_argument("--fault-period", type=int, default=20)
    avail.add_argument("--fault-fraction", type=float, default=0.2)
    avail.add_argument("--total-rounds", type=int, default=150)
    avail.set_defaults(fn=cmd_availability)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
