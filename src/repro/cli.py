"""Command-line interface.

Examples::

    python -m repro run coloring --topology ring --n 16
    python -m repro run mis --topology gnp --n 30 --seed 4 --render
    python -m repro run mis --topology ring --n 16 \\
        --scenario single-fault:fraction=0.5
    python -m repro stability matching --topology chain --n 12
    python -m repro demo thm1-splice
    python -m repro availability coloring --topology grid --n 25
    python -m repro campaign --protocols coloring mis matching \\
        --topologies ring:n=24 grid:rows=5,cols=5 gnp:n=30,p=0.2 \\
        --schedulers synchronous central locally-central \\
        --seeds 8 --workers 4 --out results.jsonl
    python -m repro campaign --from-json campaign.json --out results.jsonl
    python -m repro campaign --protocols coloring --topologies ring:n=16 \\
        --seeds 16 --out results.sqlite --sink sqlite
    python -m repro ingest results.jsonl shard-0.sqlite --store results.sqlite
    python -m repro query --store results.sqlite --group-by protocol,topology \\
        --metrics rounds,total_bits --where scheduler=synchronous
    python -m repro report --store results.sqlite
    python -m repro report --store results.sqlite --recipe paper-overhead
    python -m repro compare --store results.sqlite --runs run-a run-b
    python -m repro compare --bench BENCH_3.baseline.json BENCH_3.json --mode full
    python -m repro compare --bench-store bench.sqlite --mode tiny
    python -m repro fabric run --protocols coloring mis --topologies ring:n=16 \\
        --seeds 25 --workers 4 --shards 8 --store results.sqlite
    python -m repro serve --store results.sqlite --port 8349
    python -m repro prune --store results.sqlite --older-than 30
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable, Dict, List, Optional, Tuple

from .analysis import (
    matching_round_bound,
    matching_stability_bound,
    measure_stability,
    mis_round_bound,
    mis_stability_bound,
)
from .api import (
    Campaign,
    ExperimentSpec,
    drive_simulator,
    engine_registry,
    protocol_registry,
    scenario_registry,
    scheduler_registry,
    topology_registry,
)
from .api.campaign import iter_campaign_results
from .core.metrics import METRICS_TIERS
from .experiments import format_table
from .graphs import Network, greedy_coloring
from .obs.registry import TELEMETRY
from .results import (
    DEFAULT_GROUP_BY,
    DEFAULT_METRICS,
    REPORT_RECIPES,
    ResultStore,
    SINK_KINDS,
    campaign_summary_table,
    coerce_scalar,
    diff_bench,
    diff_runs_detailed,
    parse_where,
    query_csv,
    query_table,
    recipe_table,
    split_csv,
)
from .impossibility import (
    theorem1_gadget_demo,
    theorem1_overlay_demo,
    theorem1_splice_demo,
    theorem2_demo,
    theorem2_gadget_demo,
)
from .viz import render_coloring, render_matching, render_mis

DEMOS: Dict[str, Callable] = {
    "thm1-overlay": theorem1_overlay_demo,
    "thm1-splice": theorem1_splice_demo,
    "thm1-gadget": lambda: theorem1_gadget_demo(3),
    "thm2": theorem2_demo,
    "thm2-gadget": lambda: theorem2_gadget_demo(3),
}


def topology_params_from_args(args) -> Dict[str, Any]:
    """Translate the CLI's ``--n``-centric vocabulary into registry params."""
    n = args.n
    makers: Dict[str, Callable[[], Dict[str, Any]]] = {
        "chain": lambda: {"n": n},
        "ring": lambda: {"n": n},
        "star": lambda: {"leaves": max(1, n - 1)},
        "clique": lambda: {"n": n},
        "grid": lambda: dict(zip(("rows", "cols"), _near_square(n))),
        "torus": lambda: dict(zip(("rows", "cols"), _near_square(max(n, 9)))),
        "tree": lambda: {"n": n, "seed": args.seed},
        "gnp": lambda: {"n": n, "p": args.p, "seed": args.seed},
        "regular": lambda: {"n": n if n % 2 == 0 else n + 1, "d": 3,
                            "seed": args.seed},
        "sparse": lambda: {"n": n, "seed": args.seed},
    }
    try:
        return makers[args.topology]()
    except KeyError:
        raise SystemExit(f"unknown topology {args.topology!r}; "
                         f"known: {sorted(makers)}")


def scenario_from_args(args) -> Tuple[Optional[str], Dict[str, Any]]:
    """Parse ``--scenario name:key=value,...`` into registry terms."""
    entry = getattr(args, "scenario", None)
    if not entry:
        return None, {}
    name, params = parse_component(entry)
    if name not in scenario_registry:
        raise SystemExit(f"unknown scenario {name!r}; "
                         f"known: {scenario_registry.names()}")
    return name, params


def spec_from_args(args, max_rounds: int = 50_000) -> ExperimentSpec:
    if args.protocol not in protocol_registry:
        raise SystemExit(f"unknown protocol {args.protocol!r}; "
                         f"known: {protocol_registry.names()}")
    scheduler = getattr(args, "scheduler", None)
    if scheduler is not None and scheduler not in scheduler_registry:
        raise SystemExit(f"unknown scheduler {scheduler!r}; "
                         f"known: {scheduler_registry.names()}")
    scenario, scenario_params = scenario_from_args(args)
    try:
        return ExperimentSpec(
            protocol=args.protocol,
            topology=args.topology,
            topology_params=topology_params_from_args(args),
            scheduler=getattr(args, "scheduler", None) or "synchronous",
            seed=args.seed,
            max_rounds=max_rounds,
            engine=getattr(args, "engine", None) or "incremental",
            metrics=getattr(args, "metrics", None) or "full",
            scenario=scenario,
            scenario_params=scenario_params,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def build_topology(args) -> Network:
    try:
        return topology_registry.build(
            args.topology, **topology_params_from_args(args)
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def _near_square(n: int):
    import math

    rows = max(1, int(math.isqrt(n)))
    cols = max(1, (n + rows - 1) // rows)
    return rows, cols


def build_protocol(name: str, network: Network):
    try:
        return protocol_registry.build(name, network)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _render(protocol_name: str, network, config) -> str:
    if "coloring" in protocol_name:
        return render_coloring(network, config)
    if "mis" in protocol_name:
        return render_mis(network, config)
    return render_matching(network, config)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_run(args) -> int:
    spec = spec_from_args(args, max_rounds=args.max_rounds)
    if getattr(args, "telemetry", False) or getattr(args, "spans_out", None):
        args.telemetry = True
        TELEMETRY.enable()
    sim = spec.build_simulator()
    profile_path = getattr(args, "profile", None)
    if profile_path:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            report = drive_simulator(sim, max_rounds=args.max_rounds)
        finally:
            profiler.disable()
            profiler.dump_stats(profile_path)
            print(f"cProfile stats written to {profile_path} "
                  f"(inspect with python -m pstats)")
    else:
        import time as _time

        t0 = _time.perf_counter()
        report = drive_simulator(sim, max_rounds=args.max_rounds)
        TELEMETRY.record_span(
            "cli.run", _time.perf_counter() - t0,
            protocol=args.protocol, n=sim.network.n,
            steps=report.steps, rounds=report.rounds,
        )
    # Read protocol/network after the run: churn may have replaced them.
    protocol, network = sim.protocol, sim.network
    print(f"{protocol.name} on {args.topology} "
          f"(n={network.n}, m={network.m}, Δ={network.max_degree})")
    print(f"  stabilized={report.stabilized} rounds={report.rounds} "
          f"steps={report.steps}")
    print(f"  k-efficiency={sim.metrics.observed_k_efficiency()} "
          f"max-bits/step={sim.metrics.max_bits_in_step:.2f}")
    runtime = sim.scenario_runtime
    if runtime is not None:
        metrics = sim.metrics
        print(f"  scenario {spec.scenario!r}: "
              f"{len(runtime.applied)} events applied, "
              f"{metrics.faults_injected} faults, "
              f"mean recovery {metrics.mean_recovery_rounds:.1f} rounds, "
              f"post-fault bits {metrics.post_fault_bits:.1f}")
        for applied in runtime.applied:
            print(f"    @step {applied.step} (round {applied.round}): "
                  f"{applied.description}")
    if args.protocol == "mis":
        print(f"  Lemma 4 round bound: "
              f"{mis_round_bound(network, greedy_coloring(network))}")
    if args.protocol == "matching":
        print(f"  Lemma 9 round bound: {matching_round_bound(network)}")
    if args.render:
        print(_render(args.protocol, network, sim.config))
    if getattr(args, "telemetry", False):
        snap = TELEMETRY.snapshot()
        counters = ", ".join(f"{name}={value}" for name, value
                             in sorted(snap["counters"].items()) if value)
        print(f"  telemetry: {counters or '(no events)'}")
        spans_out = getattr(args, "spans_out", None)
        if spans_out:
            written = TELEMETRY.export_spans_jsonl(spans_out)
            print(f"  {written} span records -> {spans_out}")
    return 0


def cmd_stability(args) -> int:
    network = build_topology(args)
    protocol = build_protocol(args.protocol, network)
    m = measure_stability(protocol, network, seed=args.seed,
                          suffix_rounds=args.suffix_rounds)
    print(f"{protocol.name}: {m.x}/{network.n} processes are "
          f"eventually-{m.k}-stable "
          f"(silence after {m.rounds_to_silence} rounds)")
    if args.protocol == "mis":
        bound, exact = mis_stability_bound(network)
        print(f"  Theorem 6 bound ⌊(L_max+1)/2⌋ = {bound}"
              f"{'' if exact else ' (heuristic L_max)'}")
    if args.protocol == "matching":
        print(f"  Theorem 8 bound 2⌈m/(2Δ-1)⌉ = "
              f"{matching_stability_bound(network)}")
    return 0


def cmd_demo(args) -> int:
    try:
        demo = DEMOS[args.name]()
    except KeyError:
        raise SystemExit(f"unknown demo {args.name!r}; known: {sorted(DEMOS)}")
    report = demo.verify(rounds=args.rounds, seed=args.seed)
    print(f"{demo.name}: trap edge {demo.trap_edge}")
    print(f"  silent={report.silent} legitimate={report.legitimate} "
          f"comm-changed={report.comm_changed}")
    print(f"  demonstrates impossibility: "
          f"{report.demonstrates_impossibility}")
    return 0 if report.demonstrates_impossibility else 1


def cmd_availability(args) -> int:
    """Periodic-fault availability, as a spec-driven scenario run."""
    spec = spec_from_args(args).variant(
        scenario="periodic-faults",
        scenario_params={
            "period_rounds": args.fault_period,
            "fraction": args.fault_fraction,
            "total_rounds": args.total_rounds,
        },
    )
    result = spec.run()
    print(f"{result.protocol}: {result.faults_injected} faults over "
          f"{args.total_rounds} rounds  [spec key {spec.key()}]")
    print(f"  availability: {result.availability:.1%} "
          f"(mean recovery {result.mean_recovery_rounds:.1f} rounds, "
          f"post-fault bits {result.post_fault_bits:.1f})")
    return 0


def _coerce(text: str):
    """Parse a CLI parameter value: int, float, bool, or string."""
    # Shared with the fabric HTTP service — same coercion both ways in.
    return coerce_scalar(text)


def parse_component(entry: str) -> Tuple[str, Dict[str, Any]]:
    """Parse ``"gnp:n=30,p=0.2"`` into ``("gnp", {"n": 30, "p": 0.2})``."""
    name, _, tail = entry.partition(":")
    params: Dict[str, Any] = {}
    if tail:
        for pair in tail.split(","):
            key, sep, value = pair.partition("=")
            if not sep or not key:
                raise SystemExit(
                    f"bad component {entry!r}: expected name:key=value,..."
                )
            params[key.strip()] = _coerce(value.strip())
    return name.strip(), params


def _campaign_from_args(args) -> Campaign:
    """Build the campaign a grid-shaped command describes.

    Shared by ``repro campaign`` and ``repro fabric run / plan`` so the
    grid vocabulary (axis flags, ``--from-json``, overrides) means the
    same thing everywhere.
    """
    if args.from_json:
        try:
            campaign = Campaign.from_json_file(args.from_json)
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(f"cannot load campaign {args.from_json!r}: {exc}")
        overrides = {}
        if args.engine:
            overrides["engine"] = args.engine
        if args.metrics:
            overrides["metrics"] = args.metrics
        if getattr(args, "scenario", None):
            name, params = scenario_from_args(args)
            overrides["scenario"] = name
            overrides["scenario_params"] = params
        if overrides:
            campaign = Campaign(
                spec.variant(**overrides) for spec in campaign.specs
            )
        return campaign
    scenario, scenario_params = scenario_from_args(args)
    return Campaign.grid(
        protocols=[parse_component(p) for p in args.protocols],
        topologies=[parse_component(t) for t in args.topologies],
        schedulers=[parse_component(s) for s in args.schedulers],
        seeds=range(args.seeds),
        max_rounds=args.max_rounds,
        engine=args.engine or "incremental",
        metrics=args.metrics or "full",
        scenario=scenario,
        scenario_params=scenario_params,
    )


def cmd_campaign(args) -> int:
    campaign = _campaign_from_args(args)
    if args.fabric:
        # Same grid, fabric execution: sharded worker processes with
        # crash recovery, merged into a sqlite store (--out).
        if not args.out:
            raise SystemExit("--fabric needs --out STORE.sqlite")
        from .fabric import run_fabric

        outcome = run_fabric(
            campaign, args.out,
            run_id=args.run or "campaign",
            workers=args.workers or 4,
            shards=args.shards,
            resume=not args.no_resume,
            progress=None if args.quiet else (lambda m: print(f"  {m}")),
        )
        print(outcome.describe())
        with _open_store(args.out) as store:
            print(campaign_summary_table(store.iter_results(outcome.run_id)))
        return 0 if outcome.ok else 1
    print(f"campaign: {len(campaign)} specs "
          f"({'process pool of ' + str(args.workers) if args.workers >= 2 else 'serial'})")

    def narrate(spec, result):
        if not args.quiet:
            print(f"  {spec.key()}: rounds={result.rounds} "
                  f"steps={result.steps} k-eff={result.k_efficiency} "
                  f"stabilized={result.legitimate and result.silent}")

    profile_path = getattr(args, "profile", None)
    profiler = None
    if profile_path:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        outcome = campaign.run(
            out=args.out,
            sink=args.sink,
            workers=args.workers,
            resume=not args.no_resume,
            progress=narrate,
            run_id=args.run,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(profile_path)
            print(f"cProfile stats written to {profile_path} "
                  f"(inspect with python -m pstats)")

    print(f"done: {outcome.executed} executed, {outcome.skipped} resumed"
          + (f" -> {args.out}" if args.out else ""))
    # The same renderer `repro report` applies to a stored run, so a
    # warehouse-backed report reproduces this table exactly.
    print(campaign_summary_table(outcome))
    return 0 if all(r.legitimate and r.silent for r in outcome.results) else 1


# ----------------------------------------------------------------------
# Results warehouse subcommands (ingest / query / report / compare)
# ----------------------------------------------------------------------
def _split_csv(text: str) -> List[str]:
    """Parse a ``--group-by``/``--metrics`` comma list."""
    return split_csv(text)


def _parse_where(entries: List[str]) -> Dict[str, Any]:
    """Parse ``--where col=value ...`` filters (values coerced)."""
    try:
        return parse_where(entries)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _is_sqlite_file(path: str) -> bool:
    """Sniff the SQLite magic header (how ingest autodetects sources)."""
    try:
        with open(path, "rb") as fh:
            return fh.read(16) == b"SQLite format 3\x00"
    except OSError:
        return False


def cmd_ingest(args) -> int:
    """Bulk-load campaign sinks — JSONL files or other stores — into a
    results store.  This is also the fabric's multi-host merge path:
    each host's shard store ingests into the canonical one."""
    try:
        store = ResultStore(args.store)
    except ValueError as exc:  # e.g. --store pointed at a JSONL file
        raise SystemExit(str(exc))
    with store:
        for source in args.sources:
            try:
                if _is_sqlite_file(source):
                    run_id, count = store.ingest_store(
                        source, src_run_id=args.from_run,
                        run_id=args.run, label=args.label,
                    )
                else:
                    run_id, count = store.ingest_jsonl(
                        source, run_id=args.run, label=args.label
                    )
            except (OSError, ValueError) as exc:
                raise SystemExit(f"cannot ingest {source!r}: {exc}")
            print(f"ingested {count} trials from {source} "
                  f"into run {run_id!r} of {args.store}")
            # Without an explicit --run, later sources join the first
            # one's fresh run instead of scattering over several.
            args.run = args.run or run_id
    return 0


def _open_store(path) -> ResultStore:
    """Open an existing store for reading (typos must not create one)."""
    try:
        return ResultStore(path, create=False)
    except ValueError as exc:
        raise SystemExit(str(exc))


def cmd_query(args) -> int:
    """Grouped statistics (mean/median/CI95) over a stored run."""
    group_by = _split_csv(args.group_by)
    metrics = _split_csv(args.metrics)
    with _open_store(args.store) as store:
        try:
            groups = store.query(
                metrics=metrics,
                where=_parse_where(args.where),
                group_by=group_by,
                run_id=args.run,
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
        if args.json:
            print(json.dumps([
                {"group": g.group, "count": g.count,
                 "metrics": {m: agg.to_dict()
                             for m, agg in g.aggregates.items()}}
                for g in groups
            ], indent=2, sort_keys=True))
        elif args.csv:
            # Same renderer the service's ?format=csv uses — full
            # precision, proper quoting.
            print(query_csv(groups, group_by, metrics), end="")
        else:
            print(query_table(
                groups, group_by, metrics,
                title=f"query ({len(groups)} groups)",
                markdown=args.markdown, precision=args.precision,
            ))
    return 0


def cmd_report(args) -> int:
    """The campaign summary table, from a store run or a JSONL sink."""
    if args.list_recipes:
        for name in sorted(REPORT_RECIPES):
            print(REPORT_RECIPES[name].describe())
        return 0
    if args.jsonl:
        try:
            print(campaign_summary_table(iter_campaign_results(args.jsonl),
                                         markdown=args.markdown))
        except OSError as exc:
            raise SystemExit(f"cannot read sink {args.jsonl!r}: {exc}")
        return 0
    if not args.store:
        raise SystemExit("report needs --store (or --jsonl)")
    with _open_store(args.store) as store:
        if args.list_runs:
            rows = [[r.run_id, r.label or "-", r.created_at,
                     r.git_rev or "-", r.trials,
                     r.wall_time_s if r.wall_time_s is not None else "-"]
                    for r in store.runs()]
            print(format_table(
                ["run", "label", "created", "git", "trials", "wall s"],
                rows, title=f"runs in {args.store}",
                markdown=args.markdown,
            ))
            return 0
        if args.recipe:
            try:
                print(recipe_table(store, args.recipe, run_id=args.run,
                                   markdown=args.markdown))
            except ValueError as exc:
                raise SystemExit(str(exc))
            return 0
        try:
            table = campaign_summary_table(store.iter_results(args.run),
                                           markdown=args.markdown)
        except ValueError as exc:
            raise SystemExit(str(exc))
        print(table)
    return 0


def cmd_compare(args) -> int:
    """Diff two stored runs (or two BENCH_*.json files) with a
    regression threshold gate; exits 1 when anything regressed."""
    modes = [bool(args.bench), bool(args.runs), bool(args.bench_store)]
    if sum(modes) != 1:
        raise SystemExit("compare needs exactly one of "
                         "--runs RUN_A RUN_B (with --store), "
                         "--bench BASELINE CANDIDATE, or "
                         "--bench-store STORE")
    # Bench payloads are throughput measurements with real run-to-run
    # noise; their default gate is looser than run means over seeds.
    threshold = args.threshold if args.threshold is not None else (
        0.25 if (args.bench or args.bench_store) else 0.10
    )
    if args.bench_store:
        # Trajectory gate: candidate = the newest recorded emission,
        # baseline = the one before it (what CI restored from cache).
        with _open_store(args.bench_store) as store:
            trajectory = store.bench_trajectory(args.bench_name,
                                                args.mode or "full")
        if len(trajectory) < 2:
            # A gate needs history; the first emission *is* the
            # baseline, so pass and let the next run compare against it.
            print(f"bench gate: {len(trajectory)} recorded emission(s) "
                  f"for ({args.bench_name}, {args.mode or 'full'}) — "
                  f"no baseline yet, nothing to gate")
            return 0
        rows = diff_bench(trajectory[-2], trajectory[-1],
                          threshold=threshold)
        label_a = f"{args.bench_name}[-2]"
        label_b = f"{args.bench_name}[-1]"
    elif args.bench:
        payloads = []
        for path in args.bench:
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    payloads.append(json.load(fh))
            except (OSError, ValueError) as exc:
                raise SystemExit(f"cannot read bench file {path!r}: {exc}")
        rows = diff_bench(payloads[0], payloads[1], mode=args.mode,
                          threshold=threshold)
        label_a, label_b = args.bench
    else:
        if not args.store:
            raise SystemExit("--runs needs --store")
        with _open_store(args.store) as store:
            try:
                rows, only_a, only_b = diff_runs_detailed(
                    store, args.runs[0], args.runs[1],
                    metrics=_split_csv(args.metrics),
                    group_by=_split_csv(args.group_by),
                    threshold=threshold,
                )
            except ValueError as exc:
                raise SystemExit(str(exc))
        label_a, label_b = args.runs
        for group in only_a:
            print(f"  only in {label_a}: {group}")
        for group in only_b:
            print(f"  only in {label_b}: {group}")
    if not rows:
        # A gate that compared nothing validated nothing: fail loudly
        # (disjoint group spaces, or a bench mode with no shared leaves).
        print(f"compare {label_a} -> {label_b}: no comparable cells")
        return 1
    regressed = [row for row in rows if row.regressed]
    shown = rows if args.all else regressed
    for row in shown:
        print("  " + row.describe())
    print(f"compare {label_a} -> {label_b}: {len(rows)} cells, "
          f"{len(regressed)} regressed "
          f"(threshold {threshold:.0%})")
    return 1 if regressed else 0


# ----------------------------------------------------------------------
# Fabric subcommands (fabric run / plan / worker, serve, prune)
# ----------------------------------------------------------------------
def cmd_fabric_run(args) -> int:
    """Run a campaign grid through the sharded fabric coordinator."""
    from .fabric import run_fabric

    campaign = _campaign_from_args(args)
    outcome = run_fabric(
        campaign, args.store,
        run_id=args.run,
        label=args.label,
        workers=args.workers,
        shards=args.shards,
        strategy=args.strategy,
        workdir=args.workdir,
        resume=not args.no_resume,
        heartbeat_timeout_s=args.heartbeat_timeout,
        max_retries=args.max_retries,
        keep_shards=args.keep_shards,
        chaos_kills=args.chaos_kill,
        progress=None if args.quiet else (lambda m: print(f"  {m}")),
    )
    print(outcome.describe())
    if not outcome.ok:
        for key in outcome.missing[:5]:
            print(f"  missing: {key}")
        if len(outcome.missing) > 5:
            print(f"  ... and {len(outcome.missing) - 5} more")
        return 1
    return 0


def cmd_fabric_plan(args) -> int:
    """Write shard files only — the multi-host half of the fabric.

    Hand each file to a host (``repro fabric worker --shard-file ...``,
    filesystem shared or files copied), then merge the shard stores
    with ``repro ingest``.
    """
    from .fabric import build_plan

    campaign = _campaign_from_args(args)
    tasks = build_plan(campaign.specs, args.shards, args.workdir,
                       args.run, strategy=args.strategy)
    from .fabric import shard_file_path

    for task in tasks:
        path = task.write(shard_file_path(args.workdir, task.index))
        print(f"shard {task.index}: {len(task.specs)} specs -> {path}")
    print(f"{len(tasks)} shard files in {args.workdir}; run each with "
          f"`repro fabric worker --shard-file FILE`, then merge with "
          f"`repro ingest SHARD.sqlite... --store STORE --run {args.run}`")
    return 0


def cmd_fabric_worker(args) -> int:
    """Execute one shard file (the per-host / per-process entry)."""
    from .fabric import run_worker_file

    return run_worker_file(args.shard_file, quiet=args.quiet,
                           profile=getattr(args, "profile", None))


def cmd_serve(args) -> int:
    """Serve a results store over HTTP (read-only, WAL-live)."""
    from .fabric import ENDPOINTS, ResultService

    # The serving process is observability infrastructure: its own
    # request counters belong on /metrics, so flip the registry on.
    TELEMETRY.enable()
    try:
        service = ResultService(args.store, host=args.host,
                                port=args.port, quiet=args.quiet,
                                plan_dir=getattr(args, "plan_dir", None))
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(f"serving {args.store} at {service.url}")
    for path, text in sorted(ENDPOINTS.items()):
        print(f"  {service.url}{path.rstrip('/')}/  — {text}")
    print("Ctrl-C to stop")
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


def cmd_top(args) -> int:
    """The refreshing one-screen live view of a campaign in flight."""
    # Local import — repro.obs.top pulls in the fabric heartbeat reader.
    from .obs.top import run_top

    return run_top(
        args.target,
        interval_s=args.interval,
        iterations=1 if args.once else None,
        clear=not args.once,
        stall_timeout_s=args.stall_timeout,
    )


def cmd_prune(args) -> int:
    """Drop superseded runs from a store (latest-per-label guarded)."""
    import fnmatch

    with _open_store(args.store) as store:
        selected: List[str] = list(args.runs)
        for info in store.runs():
            if (args.older_than is not None
                    and info.age_s() > args.older_than * 86400.0):
                selected.append(info.run_id)
            if (args.label is not None
                    and fnmatch.fnmatch(info.label or "", args.label)):
                selected.append(info.run_id)
        selected = list(dict.fromkeys(selected))
        if not selected:
            print("nothing to prune")
            return 0
        if args.dry_run:
            for run_id in selected:
                print(f"would prune {run_id!r} "
                      f"({store.trial_count(run_id)} trials)")
            return 0
        try:
            dropped = store.prune(selected, force=args.force,
                                  vacuum=not args.no_vacuum)
        except ValueError as exc:
            raise SystemExit(str(exc))
    total = sum(dropped.values())
    for run_id, count in dropped.items():
        print(f"pruned {run_id!r} ({count} trials)")
    print(f"{len(dropped)} runs, {total} trials dropped"
          + ("" if args.no_vacuum else "; store vacuumed"))
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Self-stabilizing silent protocols "
                    "(Devismes-Masuzawa-Tixeuil, ICDCS 2009)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("protocol", help=" | ".join(protocol_registry.names()))
        p.add_argument("--topology", default="ring")
        p.add_argument("--n", type=int, default=12)
        p.add_argument("--p", type=float, default=0.25,
                       help="edge probability for gnp")
        p.add_argument("--seed", type=int, default=0)

    run = sub.add_parser("run", help="run a protocol to silence")
    add_common(run)
    run.add_argument("--scheduler", default=None,
                     help=" | ".join(scheduler_registry.names()))
    run.add_argument("--engine", default="incremental",
                     choices=engine_registry.names(),
                     help="enabled-set engine (incremental dirty-set "
                          "updates, full-scan fallback, or the "
                          "self-auditing debug mode)")
    run.add_argument("--metrics", default="full", choices=METRICS_TIERS,
                     help="metrics tier: full per-step records, "
                          "streamed aggregates (identical measures, "
                          "faster), or off (throughput only — the "
                          "communication measures print as 0)")
    run.add_argument("--scenario", default=None,
                     help="fault/churn scenario, name:key=value,... "
                          f"(known: {', '.join(scenario_registry.names())})")
    run.add_argument("--max-rounds", type=int, default=100_000)
    run.add_argument("--profile", default=None, metavar="PSTATS",
                     help="profile the run under cProfile and dump the "
                          "stats to this path (inspect with "
                          "python -m pstats)")
    run.add_argument("--render", action="store_true")
    run.add_argument("--telemetry", action="store_true",
                     help="enable the telemetry registry for this run and "
                          "print the counter snapshot (results are "
                          "byte-identical either way)")
    run.add_argument("--spans-out", default=None, metavar="JSONL",
                     help="export buffered span records to this JSONL "
                          "file after the run (implies --telemetry)")
    run.set_defaults(fn=cmd_run)

    stab = sub.add_parser("stability", help="measure ♦-(x,1)-stability")
    add_common(stab)
    stab.add_argument("--suffix-rounds", type=int, default=30)
    stab.set_defaults(fn=cmd_stability)

    demo = sub.add_parser("demo", help="run an impossibility demonstration")
    demo.add_argument("name", help=" | ".join(sorted(DEMOS)))
    demo.add_argument("--rounds", type=int, default=25)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(fn=cmd_demo)

    avail = sub.add_parser("availability",
                           help="periodic faults, measure availability")
    add_common(avail)
    avail.add_argument("--fault-period", type=int, default=20)
    avail.add_argument("--fault-fraction", type=float, default=0.2)
    avail.add_argument("--total-rounds", type=int, default=150)
    avail.set_defaults(fn=cmd_availability)

    def add_grid_arguments(p):
        """The campaign-grid vocabulary, shared with `fabric run/plan`."""
        p.add_argument("--protocols", nargs="+", default=["coloring"])
        p.add_argument("--topologies", nargs="+", default=["ring:n=12"])
        p.add_argument("--schedulers", nargs="+", default=["synchronous"],
                       help=" | ".join(scheduler_registry.names()))
        p.add_argument("--seeds", type=int, default=4,
                       help="number of seeds (0..seeds-1) per grid point")
        p.add_argument("--engine", default=None,
                       choices=engine_registry.names(),
                       help="enabled-set engine applied to every spec "
                            "(with --from-json: overrides the loaded "
                            "specs' engines)")
        p.add_argument("--metrics", default=None, choices=METRICS_TIERS,
                       help="metrics tier applied to every spec (with "
                            "--from-json: overrides the loaded specs' "
                            "tiers); aggregate keeps results identical "
                            "to full at a fraction of the step cost")
        p.add_argument("--scenario", default=None,
                       help="fault/churn scenario applied to every spec, "
                            "name:key=value,... (with --from-json: "
                            "overrides the loaded specs' scenarios); "
                            f"known: {', '.join(scenario_registry.names())}")
        p.add_argument("--max-rounds", type=int, default=50_000)
        p.add_argument("--from-json", default=None,
                       help="load specs (or {'grid': ...}) from a JSON "
                            "file instead of the axis flags")

    camp = sub.add_parser(
        "campaign",
        help="run a protocols x topologies x schedulers x seeds grid",
        description="Each axis entry is name or name:key=value,key=value "
                    "(e.g. gnp:n=30,p=0.2). With --out, one JSON line is "
                    "written per trial and completed trials are skipped "
                    "on re-run (resume).",
    )
    add_grid_arguments(camp)
    camp.add_argument("--workers", type=int, default=0,
                      help=">=2 fans trials out over a process pool "
                           "(with --fabric: fabric worker count, "
                           "default 4)")
    camp.add_argument("--out", default=None,
                      help="sink path (JSONL file or sqlite store, "
                           "per --sink)")
    camp.add_argument("--sink", default="jsonl", choices=SINK_KINDS,
                      help="sink format for --out: jsonl (one JSON "
                           "line per trial) or sqlite (a queryable "
                           "results store; see `repro query/report`). "
                           "Resume works identically with either.")
    camp.add_argument("--run", default=None,
                      help="store run id to write into (sqlite sinks "
                           "only; default 'campaign')")
    camp.add_argument("--no-resume", action="store_true",
                      help="re-run specs already present in --out")
    camp.add_argument("--fabric", action="store_true",
                      help="execute through the sharded fabric "
                           "(worker subprocesses with crash recovery; "
                           "--out becomes a sqlite store). Equivalent "
                           "to `repro fabric run`.")
    camp.add_argument("--shards", type=int, default=None,
                      help="fabric shard count (default: one per "
                           "worker; more = finer recovery units)")
    camp.add_argument("--profile", default=None, metavar="PSTATS",
                      help="profile the campaign driver under cProfile "
                           "and dump the stats to this path (serial "
                           "execution profiles the trials themselves; "
                           "pool/fabric workers are separate processes)")
    camp.add_argument("--quiet", action="store_true",
                      help="suppress per-trial lines")
    camp.set_defaults(fn=cmd_campaign)

    fab = sub.add_parser(
        "fabric",
        help="sharded distributed campaign execution (see docs/fabric.md)",
        description="Shard a campaign grid over worker processes with "
                    "heartbeat stall detection, bounded requeue, and "
                    "store-level merge. `run` does everything locally; "
                    "`plan` + `worker` + `ingest` split the same run "
                    "across hosts.",
    )
    fabsub = fab.add_subparsers(dest="fabric_command", required=True)

    fabrun = fabsub.add_parser(
        "run", help="shard a grid over local worker processes")
    add_grid_arguments(fabrun)
    fabrun.add_argument("--store", required=True,
                        help="canonical results store (sqlite)")
    fabrun.add_argument("--run", default="campaign",
                        help="store run id (default: campaign)")
    fabrun.add_argument("--label", default=None, help="run label")
    fabrun.add_argument("--workers", type=int, default=4,
                        help="concurrent worker processes")
    fabrun.add_argument("--shards", type=int, default=None,
                        help="work units (default: one per worker)")
    fabrun.add_argument("--strategy", default="hash",
                        choices=("hash", "round-robin"),
                        help="spec-to-shard assignment")
    fabrun.add_argument("--workdir", default=None,
                        help="shard file/store directory "
                             "(default: STORE.fabric/)")
    fabrun.add_argument("--heartbeat-timeout", type=float, default=15.0,
                        help="seconds of worker silence before a "
                             "stall kill + requeue")
    fabrun.add_argument("--max-retries", type=int, default=2,
                        help="relaunches allowed per shard")
    fabrun.add_argument("--no-resume", action="store_true",
                        help="re-run specs already in the store run")
    fabrun.add_argument("--keep-shards", action="store_true",
                        help="keep the workdir after a clean finish")
    fabrun.add_argument("--chaos-kill", type=int, default=0,
                        metavar="N",
                        help="failure injection: hard-kill the first N "
                             "workers after one trial (recovery drill; "
                             "the CI smoke lane uses this)")
    fabrun.add_argument("--quiet", action="store_true",
                        help="suppress per-shard progress lines")
    fabrun.set_defaults(fn=cmd_fabric_run)

    fabplan = fabsub.add_parser(
        "plan", help="write shard files for multi-host execution")
    add_grid_arguments(fabplan)
    fabplan.add_argument("--workdir", required=True,
                         help="directory for shard files and stores")
    fabplan.add_argument("--run", default="campaign",
                         help="run id stamped into every shard")
    fabplan.add_argument("--shards", type=int, required=True,
                         help="number of shards to cut")
    fabplan.add_argument("--strategy", default="hash",
                         choices=("hash", "round-robin"))
    fabplan.set_defaults(fn=cmd_fabric_plan)

    fabwork = fabsub.add_parser(
        "worker", help="execute one shard file (per-host entry)")
    fabwork.add_argument("--shard-file", required=True,
                         help="ShardTask JSON from the coordinator or "
                              "`repro fabric plan`")
    fabwork.add_argument("--quiet", action="store_true")
    fabwork.add_argument("--profile", default=None, metavar="PSTATS",
                         help="profile the shard under cProfile; the "
                              "dump lands at PSTATS.shard-N.pstats so "
                              "per-worker profiles never collide")
    fabwork.set_defaults(fn=cmd_fabric_worker)

    serve = sub.add_parser(
        "serve",
        help="serve a results store over HTTP (live, read-only)",
        description="GET /runs /query /report /compare against a store "
                    "other processes may still be writing; WAL readers "
                    "see every committed trial. JSON by default, "
                    "markdown via ?format=markdown or Accept: "
                    "text/markdown.",
    )
    serve.add_argument("--store", required=True, help="results store path")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8349,
                       help="0 picks an ephemeral port")
    serve.add_argument("--plan-dir", default=None,
                       help="fabric plan dir for /progress heartbeat "
                            "fan-in (default: STORE.fabric when it "
                            "exists)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request log lines")
    serve.set_defaults(fn=cmd_serve)

    top = sub.add_parser(
        "top",
        help="refreshing one-screen live view of a campaign in flight",
        description="TARGET is a fabric plan dir (heartbeats are read "
                    "from disk) or a running `repro serve` URL (its "
                    "/progress endpoint is polled). Shows workers, "
                    "trials/s, ETA and stalls; Ctrl-C to stop.",
    )
    top.add_argument("target",
                     help="plan dir (e.g. results.sqlite.fabric) or "
                          "service URL (e.g. http://127.0.0.1:8349)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes (default 2)")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit (no screen "
                          "clearing; for scripts and smoke tests)")
    top.add_argument("--stall-timeout", type=float, default=10.0,
                     help="heartbeats older than this many seconds "
                          "count as stalled (default 10)")
    top.set_defaults(fn=cmd_top)

    prune = sub.add_parser(
        "prune",
        help="drop superseded runs from a results store",
        description="Selects runs by id, age, or label glob (union), "
                    "deletes their trials, and VACUUMs. The newest run "
                    "of every label is protected unless --force — "
                    "pruning a grid's only current baseline is almost "
                    "always a mistake.",
    )
    prune.add_argument("--store", required=True, help="results store path")
    prune.add_argument("--runs", nargs="*", default=[],
                       help="run ids to drop")
    prune.add_argument("--older-than", type=float, default=None,
                       metavar="DAYS",
                       help="also drop runs created more than DAYS ago")
    prune.add_argument("--label", default=None, metavar="GLOB",
                       help="also drop runs whose label matches "
                            "(fnmatch glob)")
    prune.add_argument("--force", action="store_true",
                       help="allow dropping the latest run of a label")
    prune.add_argument("--dry-run", action="store_true",
                       help="list what would be dropped, touch nothing")
    prune.add_argument("--no-vacuum", action="store_true",
                       help="skip the VACUUM after deleting")
    prune.set_defaults(fn=cmd_prune)

    ing = sub.add_parser(
        "ingest",
        help="bulk-load campaign sinks (JSONL or sqlite) into a store",
        description="Each source is autodetected: a JSONL sink streams "
                    "line by line (a truncated trailing line is "
                    "tolerated); another sqlite store — e.g. a fabric "
                    "shard store from a remote host — streams row by "
                    "row. All sources land in one run unless --run "
                    "varies; re-ingesting the same keys is "
                    "last-writer-wins.",
    )
    ing.add_argument("sources", nargs="+",
                     help="JSONL sinks and/or sqlite stores to ingest")
    ing.add_argument("--store", required=True, help="results store path")
    ing.add_argument("--run", default=None,
                     help="run id to ingest into (default: a fresh run, "
                          "shared by all sources)")
    ing.add_argument("--from-run", default=None,
                     help="source run to read from sqlite sources "
                          "(default: the source's latest)")
    ing.add_argument("--label", default=None, help="run label")
    ing.set_defaults(fn=cmd_ingest)

    query = sub.add_parser(
        "query",
        help="grouped statistics (mean/median/CI95) over a results store",
        description="Aggregates stored trials per group: "
                    "mean, 95% confidence half-width, and median for "
                    "each requested measure.",
    )
    query.add_argument("--store", required=True, help="results store path")
    query.add_argument("--run", default=None,
                       help="run id (default: latest; '*' = all runs)")
    query.add_argument("--where", nargs="*", default=[], metavar="COL=VAL",
                       help="equality filters, e.g. protocol=coloring n=8")
    query.add_argument("--group-by", default=",".join(DEFAULT_GROUP_BY),
                       help="comma list of axis columns")
    query.add_argument("--metrics", default=",".join(DEFAULT_METRICS),
                       help="comma list of measure columns")
    query.add_argument("--precision", type=int, default=2,
                       help="float decimal places (tiny values switch "
                            "to scientific notation)")
    query.add_argument("--markdown", action="store_true",
                       help="emit a markdown table")
    query.add_argument("--csv", action="store_true",
                       help="emit CSV (full precision, same renderer as "
                            "the service's ?format=csv)")
    query.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead")
    query.set_defaults(fn=cmd_query)

    rep = sub.add_parser(
        "report",
        help="paper-style campaign summary from a stored run",
        description="Renders the same summary table `repro campaign` "
                    "prints, from a results store run (--store) or "
                    "directly from a JSONL sink (--jsonl).",
    )
    rep.add_argument("--store", default=None, help="results store path")
    rep.add_argument("--run", default=None,
                     help="run id (default: latest)")
    rep.add_argument("--jsonl", default=None,
                     help="render straight from a JSONL sink instead")
    rep.add_argument("--list-runs", action="store_true",
                     help="list the store's runs and their provenance")
    rep.add_argument("--recipe", default=None,
                     help="render a canned paper table instead "
                          "(see --list-recipes)")
    rep.add_argument("--list-recipes", action="store_true",
                     help="list the canned paper-table recipes")
    rep.add_argument("--markdown", action="store_true",
                     help="emit a markdown table")
    rep.set_defaults(fn=cmd_report)

    comp = sub.add_parser(
        "compare",
        help="diff two runs (or two BENCH_*.json) with a regression gate",
        description="Per group x metric: both means, delta, ratio, and "
                    "a regression verdict in the metric's bad "
                    "direction. Exits 1 when anything regressed — "
                    "usable as a CI gate.",
    )
    comp.add_argument("--store", default=None, help="results store path")
    comp.add_argument("--runs", nargs=2, metavar=("RUN_A", "RUN_B"),
                      default=None,
                      help="two run ids in the store to compare")
    comp.add_argument("--bench", nargs=2, metavar=("BASELINE", "CANDIDATE"),
                      default=None,
                      help="two BENCH_*.json files to compare instead "
                           "(throughput-like: lower is a regression)")
    comp.add_argument("--bench-store", default=None, metavar="STORE",
                      help="gate the newest bench emission in a store's "
                           "trajectory against the one before it "
                           "(written by bench_engine.py --store); "
                           "passes when the trajectory has <2 points")
    comp.add_argument("--bench-name", default="BENCH_3",
                      help="trajectory to gate with --bench-store "
                           "(BENCH_3 = engine grid + hot loop, "
                           "BENCH_4 = scenario recovery)")
    comp.add_argument("--mode", default=None,
                      help="BENCH section (--bench: full | tiny) or "
                           "trajectory mode (--bench-store; "
                           "default full)")
    comp.add_argument("--metrics", default=",".join(("rounds", "steps",
                                                     "total_bits")),
                      help="comma list of measures (--runs only)")
    comp.add_argument("--group-by", default=",".join(DEFAULT_GROUP_BY),
                      help="comma list of axis columns (--runs only)")
    comp.add_argument("--threshold", type=float, default=None,
                      help="regression threshold as a fraction "
                           "(default: 0.10 for --runs, 0.25 for "
                           "--bench — throughput noise needs slack)")
    comp.add_argument("--all", action="store_true",
                      help="print every compared cell, not only "
                           "regressions")
    comp.set_defaults(fn=cmd_compare)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
