"""Seeded trial running and aggregation for benches and examples.

One *trial* = one protocol on one network under one scheduler from one
corrupted start, run to silence with full metric collection.  Sweeps
aggregate many trials (means, maxima) so benches can print one table row
per parameter point, paper-formula next to measured value.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.protocol import Protocol
from ..core.scheduler import Scheduler, SynchronousScheduler
from ..core.simulator import Simulator
from ..graphs.topology import Network

ProtocolFactory = Callable[[Network], Protocol]
SchedulerFactory = Callable[[], Scheduler]


@dataclass(frozen=True)
class TrialResult:
    """Headline numbers of one run-to-silence trial."""

    protocol: str
    scheduler: str
    n: int
    m: int
    delta: int
    seed: int
    steps: int
    rounds: int
    k_efficiency: int
    max_bits_per_step: float
    total_bits: float
    legitimate: bool
    silent: bool


def run_trial(
    protocol: Protocol,
    network: Network,
    scheduler: Optional[Scheduler] = None,
    seed: int = 0,
    max_rounds: int = 50_000,
) -> TrialResult:
    """Run one protocol instance to silence and collect its metrics."""
    scheduler = scheduler or SynchronousScheduler()
    scheduler.reset()
    sim = Simulator(protocol, network, scheduler=scheduler, seed=seed)
    report = sim.run_until_silent(max_rounds=max_rounds)
    summary = sim.metrics.summary()
    return TrialResult(
        protocol=protocol.name,
        scheduler=scheduler.name,
        n=network.n,
        m=network.m,
        delta=network.max_degree,
        seed=seed,
        steps=report.steps,
        rounds=report.rounds,
        k_efficiency=int(summary["k_efficiency"]),
        max_bits_per_step=summary["max_bits_per_step"],
        total_bits=summary["total_bits"],
        legitimate=report.legitimate,
        silent=report.silent,
    )


@dataclass
class SweepPoint:
    """Aggregated trials at one parameter point."""

    label: str
    trials: List[TrialResult] = field(default_factory=list)

    def _values(self, attr: str) -> List[float]:
        return [getattr(t, attr) for t in self.trials]

    def mean(self, attr: str) -> float:
        return statistics.fmean(self._values(attr))

    def max(self, attr: str) -> float:
        return max(self._values(attr))

    def min(self, attr: str) -> float:
        return min(self._values(attr))

    def stdev(self, attr: str) -> float:
        values = self._values(attr)
        return statistics.pstdev(values) if len(values) > 1 else 0.0

    @property
    def all_stabilized(self) -> bool:
        return all(t.legitimate and t.silent for t in self.trials)


def run_sweep(
    label: str,
    protocol_factory: ProtocolFactory,
    network: Network,
    seeds: Sequence[int],
    scheduler_factory: Optional[SchedulerFactory] = None,
    max_rounds: int = 50_000,
) -> SweepPoint:
    """Run one trial per seed at a fixed parameter point."""
    point = SweepPoint(label=label)
    for seed in seeds:
        protocol = protocol_factory(network)
        scheduler = scheduler_factory() if scheduler_factory else None
        point.trials.append(
            run_trial(protocol, network, scheduler=scheduler, seed=seed,
                      max_rounds=max_rounds)
        )
    return point
