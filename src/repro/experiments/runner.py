"""Seeded trial running and aggregation for benches and examples.

One *trial* = one protocol on one network under one scheduler from one
corrupted start, run to silence with full metric collection.  Sweeps
aggregate many trials (means, maxima) so benches can print one table row
per parameter point, paper-formula next to measured value.

Since the declarative API landed, :func:`run_trial` and
:func:`run_sweep` are thin back-compat wrappers: the canonical
execution path is :func:`repro.api.execute_trial`, and new code should
describe experiments with :class:`repro.api.ExperimentSpec` /
:class:`repro.api.Campaign` instead of object factories.
"""

from __future__ import annotations

import dataclasses
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..core.protocol import Protocol
from ..core.scheduler import Scheduler, SynchronousScheduler
from ..graphs.topology import Network

ProtocolFactory = Callable[[Network], Protocol]
SchedulerFactory = Callable[[], Scheduler]


@dataclass(frozen=True)
class TrialResult:
    """Headline numbers of one run-to-silence trial.

    The scenario measures (faults injected, availability fraction,
    mean recovery rounds, post-fault read-bit overhead) stay at their
    neutral defaults on scenario-free runs, and rows written by
    pre-scenario versions load back with those defaults.
    """

    protocol: str
    scheduler: str
    n: int
    m: int
    delta: int
    seed: int
    steps: int
    rounds: int
    k_efficiency: int
    max_bits_per_step: float
    total_bits: float
    legitimate: bool
    silent: bool
    faults_injected: int = 0
    availability: float = 1.0
    mean_recovery_rounds: float = 0.0
    post_fault_bits: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrialResult":
        values = {}
        for f in dataclasses.fields(cls):
            if f.name in data:
                values[f.name] = data[f.name]
            elif f.default is dataclasses.MISSING:
                raise KeyError(f.name)
            # else: a pre-scenario row — keep the field's default
        return cls(**values)


def run_trial(
    protocol: Protocol,
    network: Network,
    scheduler: Optional[Scheduler] = None,
    seed: int = 0,
    max_rounds: int = 50_000,
    engine: str = "incremental",
    metrics: str = "full",
) -> TrialResult:
    """Run one protocol instance to silence and collect its metrics.

    Back-compat wrapper over :func:`repro.api.execute_trial`; ``engine``
    picks the enabled-set maintenance strategy (results are identical
    across engines) and ``metrics`` the collection tier (``full`` and
    ``aggregate`` rows are identical; ``aggregate`` skips per-step
    record construction).
    """
    from ..api.spec import execute_trial

    return execute_trial(
        protocol,
        network,
        scheduler or SynchronousScheduler(),
        seed=seed,
        max_rounds=max_rounds,
        engine=engine,
        metrics=metrics,
    )


@dataclass
class SweepPoint:
    """Aggregated trials at one parameter point."""

    label: str
    trials: List[TrialResult] = field(default_factory=list)

    def _values(self, attr: str) -> List[float]:
        return [getattr(t, attr) for t in self.trials]

    def mean(self, attr: str) -> float:
        return statistics.fmean(self._values(attr))

    def max(self, attr: str) -> float:
        return max(self._values(attr))

    def min(self, attr: str) -> float:
        return min(self._values(attr))

    def stdev(self, attr: str) -> float:
        values = self._values(attr)
        return statistics.pstdev(values) if len(values) > 1 else 0.0

    @property
    def all_stabilized(self) -> bool:
        return all(t.legitimate and t.silent for t in self.trials)


def run_sweep(
    label: str,
    protocol_factory: ProtocolFactory,
    network: Network,
    seeds: Sequence[int],
    scheduler_factory: Optional[SchedulerFactory] = None,
    max_rounds: int = 50_000,
) -> SweepPoint:
    """Run one trial per seed at a fixed parameter point.

    Back-compat wrapper; prefer ``Campaign.grid(..., seeds=seeds)``.
    """
    point = SweepPoint(label=label)
    for seed in seeds:
        protocol = protocol_factory(network)
        scheduler = scheduler_factory() if scheduler_factory else None
        point.trials.append(
            run_trial(protocol, network, scheduler=scheduler, seed=seed,
                      max_rounds=max_rounds)
        )
    return point
