"""Experiment harness: seeded trials, sweeps, table rendering."""

from .runner import (
    SweepPoint,
    TrialResult,
    run_sweep,
    run_trial,
)
from .tables import format_csv, format_markdown_table, format_table, save_csv

__all__ = [
    "SweepPoint",
    "TrialResult",
    "format_csv",
    "format_markdown_table",
    "format_table",
    "save_csv",
    "run_sweep",
    "run_trial",
]
