"""Plain-text table rendering for bench output and EXPERIMENTS.md.

The benches print the same rows the paper's claims describe; keeping
the renderer dependency-free makes the harness runnable anywhere the
library is.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    return str(cell)


def format_markdown_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """GitHub-flavored markdown rendering (for EXPERIMENTS.md)."""
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        out.append("| " + " | ".join(_fmt(c) for c in row) + " |")
    return "\n".join(out)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """CSV rendering (for archiving sweep results as artefacts)."""
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow([_fmt(cell) for cell in row])
    return buffer.getvalue()


def save_csv(path: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Write sweep results to a CSV file."""
    with open(path, "w", newline="") as fh:
        fh.write(format_csv(headers, rows))
