"""Plain-text table rendering for bench output and EXPERIMENTS.md.

The benches print the same rows the paper's claims describe; keeping
the renderer dependency-free makes the harness runnable anywhere the
library is.  One formatting policy (:func:`_fmt`) feeds every output
mode — aligned monospace, GitHub markdown, CSV — so a number renders
the same wherever it lands.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    markdown: bool = False,
    precision: int = 2,
) -> str:
    """Render an aligned monospace table (or, with ``markdown=True``,
    a GitHub-flavored markdown table with the title as a bold lead-in).

    ``precision`` sets the float decimal places; values too small for
    that precision switch to scientific notation instead of collapsing
    to ``0.00`` (see :func:`_fmt`).
    """
    if markdown:
        table = format_markdown_table(headers, rows, precision=precision)
        return f"**{title}**\n\n{table}" if title else table
    str_rows: List[List[str]] = [
        [_fmt(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(cell: object, precision: int = 2) -> str:
    """One cell as text: floats at ``precision`` decimals, switching to
    scientific notation when fixed-point would round a nonzero value to
    all zeros (a per-step bit average of 0.0004 must not print as
    ``0.00``); bools as yes/no."""
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell != 0.0 and abs(cell) < 0.5 * 10.0 ** -precision:
            return f"{cell:.{precision}e}"
        return f"{cell:.{precision}f}"
    return str(cell)


def format_markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 2,
) -> str:
    """GitHub-flavored markdown rendering (for EXPERIMENTS.md)."""
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        out.append(
            "| " + " | ".join(_fmt(c, precision) for c in row) + " |"
        )
    return "\n".join(out)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """CSV rendering (for archiving sweep results as artefacts)."""
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow([_fmt(cell) for cell in row])
    return buffer.getvalue()


def save_csv(path: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Write sweep results to a CSV file."""
    with open(path, "w", newline="") as fh:
        fh.write(format_csv(headers, rows))
