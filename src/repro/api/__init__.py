"""Declarative experiment API.

Everything an experiment needs — protocol, topology, scheduler — is
resolvable by string name through a registry, a whole trial is a frozen
JSON-serializable :class:`ExperimentSpec`, and a :class:`Campaign`
expands grids of specs and runs them serially or across processes with
streaming JSONL output and resume.

>>> from repro.api import Campaign
>>> outcome = Campaign.grid(
...     protocols=["coloring"],
...     topologies=[("ring", {"n": 8})],
...     seeds=range(2),
... ).run()
>>> [r.rounds for r in outcome.results]  # doctest: +SKIP
[3, 4]
"""

from .campaign import (
    Campaign,
    CampaignOutcome,
    iter_campaign_results,
    load_campaign_results,
)
from .registry import (
    Registry,
    engine_registry,
    protocol_registry,
    register_engine,
    register_protocol,
    register_scheduler,
    register_topology,
    scheduler_registry,
    topology_registry,
)
from ..core.metrics import METRICS_TIERS
from .spec import ExperimentSpec, drive_simulator, execute_trial
from ..scenarios.library import register_scenario, scenario_registry

__all__ = [
    "Campaign",
    "CampaignOutcome",
    "ExperimentSpec",
    "METRICS_TIERS",
    "Registry",
    "drive_simulator",
    "engine_registry",
    "execute_trial",
    "iter_campaign_results",
    "load_campaign_results",
    "protocol_registry",
    "register_engine",
    "register_protocol",
    "register_scenario",
    "register_scheduler",
    "register_topology",
    "scenario_registry",
    "scheduler_registry",
    "topology_registry",
]
