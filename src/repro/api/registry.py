"""String registries for protocols, topologies, schedulers, and engines.

The declarative experiment layer needs every component constructible
from a ``(name, params)`` pair so that a whole campaign is plain data
(JSON).  Four registries cover the experiment axes:

* **topologies** — builders ``(**params) -> Network``;
* **protocols** — builders ``(network, **params) -> Protocol`` (the
  network always comes first because every paper protocol is
  instantiated *for* a network);
* **schedulers** — builders ``(network, **params) -> Scheduler``.  The
  network argument lets network-aware daemons (the locally central
  scheduler) be described by name alone and constructed lazily at
  :class:`~repro.core.simulator.Simulator` build time.  Every built-in
  daemon that supports drawing from the maintained enabled set accepts
  ``enabled_only=True`` as a parameter;
* **engines** — builders ``(**params) -> EnabledSetEngine`` for the
  enabled-set maintenance strategies of :mod:`repro.core.engine`
  (``incremental``, ``scan``, ``debug``) and the columnar batch
  engine of :mod:`repro.core.batchengine` (``batch``,
  ``batch-debug``).

Metrics tiers (``full`` | ``aggregate`` | ``off``) are deliberately
*not* a registry: they are a closed three-value knob on
:class:`~repro.core.simulator.Simulator` /
:class:`~repro.api.ExperimentSpec` (see
:data:`repro.core.metrics.METRICS_TIERS`), not an extensible component
— a custom collector would plug in as an engine-style object, not a
tier name.

All built-in implementations are pre-registered below, including the
full-read baselines, the k-window generalisations, and every scheduler
in :mod:`repro.core.scheduler`.  Downstream code extends the API with
the decorators::

    from repro.api import register_protocol

    @register_protocol("my-coloring")
    def _build(network, extra_colors=0):
        return MyColoring.for_network(network, extra_colors)
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Iterator, List

from ..core.batchengine import (
    BatchCrossCheckEngine,
    BatchEngine,
    ResidentBatchEngine,
)
from ..core.engine import CrossCheckEngine, IncrementalEngine, ScanEngine
from ..core.scheduler import (
    BoundedFairScheduler,
    CentralScheduler,
    FixedSequenceScheduler,
    LocallyCentralScheduler,
    RandomSubsetScheduler,
    RoundRobinScheduler,
    SynchronousScheduler,
)
from ..graphs import (
    Coloring,
    binary_tree,
    caterpillar,
    chain,
    clique,
    dsatur_coloring,
    greedy_coloring,
    grid,
    hypercube,
    random_connected,
    random_regular,
    random_tree,
    ring,
    sequential_coloring,
    sparse_random,
    star,
    torus,
    welsh_powell_coloring,
)
from ..graphs.topology import Network
from ..protocols import (
    ColoringProtocol,
    FullReadColoring,
    FullReadMIS,
    FullReadMatching,
    MISProtocol,
    MatchingProtocol,
    WindowColoringProtocol,
    WindowMISProtocol,
)


class Registry:
    """A name -> builder table with decorator-style registration."""

    def __init__(self, kind: str):
        self.kind = kind
        self._builders: Dict[str, Callable] = {}

    def register(self, name: str, builder: Callable = None):
        """Register ``builder`` under ``name``; usable as a decorator."""
        if builder is None:
            def decorator(fn: Callable) -> Callable:
                self.register(name, fn)
                return fn
            return decorator
        if name in self._builders:
            raise ValueError(f"{self.kind} {name!r} already registered")
        self._builders[name] = builder
        return builder

    def get(self, name: str) -> Callable:
        try:
            return self._builders[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; known: {self.names()}"
            ) from None

    def build(self, name: str, *args, **params):
        builder = self.get(name)
        try:
            inspect.signature(builder).bind(*args, **params)
        except TypeError as exc:
            raise ValueError(
                f"bad parameters for {self.kind} {name!r}: {exc}"
            ) from None
        # The arguments bind, so any TypeError past this point is a bug
        # inside the builder and propagates with its real traceback.
        return builder(*args, **params)

    def names(self) -> List[str]:
        return sorted(self._builders)

    def __contains__(self, name: str) -> bool:
        return name in self._builders

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._builders)

    def __repr__(self) -> str:
        return f"Registry({self.kind}: {self.names()})"


protocol_registry = Registry("protocol")
topology_registry = Registry("topology")
scheduler_registry = Registry("scheduler")
engine_registry = Registry("engine")

register_protocol = protocol_registry.register
register_topology = topology_registry.register
register_scheduler = scheduler_registry.register
register_engine = engine_registry.register


# ----------------------------------------------------------------------
# Built-in protocols
# ----------------------------------------------------------------------
_COLORERS: Dict[str, Callable[[Network], Coloring]] = {
    "greedy": greedy_coloring,
    "dsatur": dsatur_coloring,
    "sequential": sequential_coloring,
    "welsh-powell": welsh_powell_coloring,
}


def _colors(network: Network, coloring: str) -> Coloring:
    try:
        return _COLORERS[coloring](network)
    except KeyError:
        raise ValueError(
            f"unknown coloring algorithm {coloring!r}; "
            f"known: {sorted(_COLORERS)}"
        ) from None


@register_protocol("coloring")
def _coloring(network, extra_colors: int = 0):
    return ColoringProtocol.for_network(network, extra_colors=extra_colors)


@register_protocol("mis")
def _mis(network, coloring: str = "greedy"):
    return MISProtocol(network, _colors(network, coloring))


@register_protocol("matching")
def _matching(network, coloring: str = "greedy"):
    return MatchingProtocol(network, _colors(network, coloring))


@register_protocol("coloring-full")
def _coloring_full(network):
    return FullReadColoring.for_network(network)


@register_protocol("mis-full")
def _mis_full(network, coloring: str = "greedy"):
    return FullReadMIS(network, _colors(network, coloring))


@register_protocol("matching-full")
def _matching_full(network, coloring: str = "greedy"):
    return FullReadMatching(network, _colors(network, coloring))


@register_protocol("window-coloring")
def _window_coloring(network, k: int = 2):
    return WindowColoringProtocol.for_network(network, k=k)


@register_protocol("window-mis")
def _window_mis(network, k: int = 2, coloring: str = "greedy"):
    return WindowMISProtocol(network, _colors(network, coloring), k=k)


# ----------------------------------------------------------------------
# Built-in topologies
# ----------------------------------------------------------------------
register_topology("chain", chain)
register_topology("ring", ring)
register_topology("star", star)
register_topology("clique", clique)
register_topology("grid", grid)
register_topology("torus", torus)
register_topology("hypercube", hypercube)
register_topology("binary-tree", binary_tree)
register_topology("caterpillar", caterpillar)
register_topology("gnp", random_connected)
register_topology("regular", random_regular)
register_topology("sparse", sparse_random)
register_topology("tree", random_tree)


# ----------------------------------------------------------------------
# Built-in schedulers — builders take the network first so that
# network-aware daemons are constructible lazily; the others ignore it.
# ----------------------------------------------------------------------
@register_scheduler("synchronous")
def _synchronous(network, enabled_only: bool = False):
    return SynchronousScheduler(enabled_only=enabled_only)


@register_scheduler("central")
def _central(network, enabled_only: bool = False):
    return CentralScheduler(enabled_only=enabled_only)


@register_scheduler("random-subset")
def _random_subset(network, p_act: float = 0.5, enabled_only: bool = False):
    return RandomSubsetScheduler(p_act=p_act, enabled_only=enabled_only)


@register_scheduler("round-robin")
def _round_robin(network, enabled_only: bool = False):
    return RoundRobinScheduler(enabled_only=enabled_only)


@register_scheduler("bounded-fair")
def _bounded_fair(network, bound: int = 24, burst: int = 3):
    return BoundedFairScheduler(bound=bound, burst=burst)


@register_scheduler("fixed-sequence")
def _fixed_sequence(network, sequence=()):
    return FixedSequenceScheduler(sequence)


@register_scheduler("locally-central")
def _locally_central(network, p_act: float = 0.5, enabled_only: bool = False):
    return LocallyCentralScheduler(network, p_act=p_act,
                                   enabled_only=enabled_only)


# ----------------------------------------------------------------------
# Built-in enabled-set engines — see repro.core.engine for the design
# and docs/performance.md for the complexity argument.
# ----------------------------------------------------------------------
@register_engine("incremental")
def _incremental_engine():
    return IncrementalEngine()


@register_engine("scan")
def _scan_engine():
    return ScanEngine()


@register_engine("debug")
def _debug_engine():
    return CrossCheckEngine()


@register_engine("batch")
def _batch_engine():
    return BatchEngine()


@register_engine("batch-debug")
def _batch_debug_engine():
    return BatchCrossCheckEngine()


@register_engine("batch-resident")
def _batch_resident_engine():
    return ResidentBatchEngine()
