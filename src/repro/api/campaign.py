"""Campaigns: grids of :class:`ExperimentSpec` run serially or in
parallel, streamed to JSONL, resumable.

A campaign is the paper's experimental method as data — protocols ×
topologies × schedulers × seeds — with an executor that:

* runs specs serially or on a :class:`~concurrent.futures.ProcessPoolExecutor`
  (each spec carries its own seed, so parallel results are bit-identical
  to serial results);
* streams one JSON line per finished trial to a sink file the moment it
  completes, so an interrupted campaign loses at most in-flight trials;
* on restart, skips every spec whose key already appears in the sink.

Usage::

    campaign = Campaign.grid(
        protocols=["coloring", "mis", "matching"],
        topologies=[("ring", {"n": 24}), ("grid", {"rows": 5, "cols": 5})],
        schedulers=["synchronous", "central", "locally-central"],
        seeds=range(32),
    )
    outcome = campaign.run(jsonl_path="results.jsonl", workers=8)
    for spec, result in outcome:
        ...
"""

from __future__ import annotations

import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .spec import ExperimentSpec

#: A grid axis entry: "coloring", ("gnp", {"n": 30, "p": 0.2}), or
#: {"name": "gnp", "params": {...}}.
ComponentSpec = Union[str, Tuple[str, Mapping[str, Any]], Mapping[str, Any]]


def _normalize_component(item: ComponentSpec) -> Tuple[str, Dict[str, Any]]:
    if isinstance(item, str):
        return item, {}
    if isinstance(item, tuple):
        name, params = item
        return name, dict(params or {})
    if isinstance(item, Mapping):
        return item["name"], dict(item.get("params") or {})
    raise TypeError(f"bad component spec: {item!r}")


def _run_spec_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool entry point: spec dict in, result dict out."""
    spec = ExperimentSpec.from_dict(payload)
    return spec.run().to_dict()


@dataclass
class CampaignOutcome:
    """What :meth:`Campaign.run` returns.

    ``results`` is aligned row-for-row with ``specs`` (campaign order,
    independent of completion order under parallel execution).
    ``executed``/``skipped`` count fresh runs vs. resume hits.
    """

    specs: List[ExperimentSpec]
    results: List[Any]  # TrialResult rows, aligned with ``specs``
    executed: int = 0
    skipped: int = 0

    def __iter__(self) -> Iterator[Tuple[ExperimentSpec, Any]]:
        return iter(zip(self.specs, self.results))

    def __len__(self) -> int:
        return len(self.specs)


class Campaign:
    """An ordered collection of specs plus the machinery to run them."""

    def __init__(self, specs: Iterable[ExperimentSpec]):
        self.specs: List[ExperimentSpec] = list(specs)
        seen: set = set()
        dupes = set()
        for spec in self.specs:
            key = spec.key()
            (dupes if key in seen else seen).add(key)
        if dupes:
            raise ValueError(f"duplicate specs in campaign: {sorted(dupes)}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def grid(
        cls,
        protocols: Sequence[ComponentSpec],
        topologies: Sequence[ComponentSpec],
        schedulers: Sequence[ComponentSpec] = ("synchronous",),
        seeds: Iterable[int] = (0,),
        max_rounds: int = 50_000,
        engine: str = "incremental",
        metrics: str = "full",
        scenario: Optional[str] = None,
        scenario_params: Optional[Mapping[str, Any]] = None,
    ) -> "Campaign":
        """The full cross product of the four axes, in a stable order.

        ``engine`` and ``metrics`` apply to every spec in the grid
        (run-time strategies, not experiment axes — all engines produce
        identical results, and the ``aggregate`` tier reports the same
        final measures as ``full`` at a fraction of the step cost).
        ``scenario``/``scenario_params`` attach one named fault/churn
        scenario to every spec; sweep scenario parameters by
        concatenating grids (see ``examples/scenario_churn.py``).
        """
        specs = []
        for proto_name, proto_params in map(_normalize_component, protocols):
            for topo_name, topo_params in map(_normalize_component, topologies):
                for sched_name, sched_params in map(
                    _normalize_component, schedulers
                ):
                    for seed in seeds:
                        specs.append(ExperimentSpec(
                            protocol=proto_name,
                            protocol_params=proto_params,
                            topology=topo_name,
                            topology_params=topo_params,
                            scheduler=sched_name,
                            scheduler_params=sched_params,
                            seed=int(seed),
                            max_rounds=max_rounds,
                            engine=engine,
                            metrics=metrics,
                            scenario=scenario,
                            scenario_params=dict(scenario_params or {}),
                        ))
        return cls(specs)

    @classmethod
    def from_dicts(cls, dicts: Iterable[Mapping[str, Any]]) -> "Campaign":
        return cls(ExperimentSpec.from_dict(d) for d in dicts)

    @classmethod
    def from_json(cls, text: str) -> "Campaign":
        """Parse a JSON document — either a list of spec objects or
        ``{"grid": {...Campaign.grid kwargs...}}``."""
        data = json.loads(text)
        if isinstance(data, Mapping) and "grid" in data:
            return cls.grid(**data["grid"])
        if isinstance(data, list):
            return cls.from_dicts(data)
        raise ValueError(
            "campaign JSON must be a list of specs or {'grid': {...}}"
        )

    @classmethod
    def from_json_file(cls, path: Union[str, os.PathLike]) -> "Campaign":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [s.to_dict() for s in self.specs]

    def to_json(self) -> str:
        return json.dumps(self.to_dicts(), indent=2, sort_keys=True)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[ExperimentSpec]:
        return iter(self.specs)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        jsonl_path: Optional[Union[str, os.PathLike]] = None,
        workers: int = 0,
        resume: bool = True,
        progress: Optional[Callable[[ExperimentSpec, Any], None]] = None,
    ) -> CampaignOutcome:
        """Execute every spec; returns results aligned with the specs.

        Parameters
        ----------
        jsonl_path:
            Sink file.  One ``{"key", "spec", "result"}`` JSON line is
            appended per finished trial.  Required for resume.
        workers:
            ``0``/``1`` runs serially in-process; ``>= 2`` fans out over
            a process pool of that many workers.  Results are identical
            either way because every spec carries its own seed.
        resume:
            When the sink already holds rows for some spec keys, return
            those rows instead of re-running the specs.
        progress:
            Optional ``(spec, result)`` callback, invoked on completion
            (resumed rows included), in completion order.
        """
        from ..experiments.runner import TrialResult

        completed: Dict[str, Any] = {}
        if resume and jsonl_path is not None and os.path.exists(jsonl_path):
            completed = {
                key: TrialResult.from_dict(row)
                for key, row in _read_sink(jsonl_path).items()
            }

        by_key: Dict[str, Any] = {}
        skipped = 0
        pending: List[ExperimentSpec] = []
        for spec in self.specs:
            key = spec.key()
            if key in completed:
                by_key[key] = completed[key]
                skipped += 1
                if progress is not None:
                    progress(spec, completed[key])
            else:
                pending.append(spec)

        # Without resume the sink is started over, not appended to —
        # otherwise re-run rows would shadow (and double-count) old ones.
        sink = _open_sink(jsonl_path, append=resume)
        try:
            if workers and workers >= 2 and len(pending) > 1:
                runner = self._run_pool(pending, workers)
            else:
                runner = self._run_serial(pending)
            for spec, result in runner:
                key = spec.key()
                by_key[key] = result
                if sink is not None:
                    sink.write(json.dumps({
                        "key": key,
                        "spec": spec.to_dict(),
                        "result": result.to_dict(),
                    }, sort_keys=True) + "\n")
                    sink.flush()
                if progress is not None:
                    progress(spec, result)
        finally:
            if sink is not None:
                sink.close()

        return CampaignOutcome(
            specs=list(self.specs),
            results=[by_key[s.key()] for s in self.specs],
            executed=len(pending),
            skipped=skipped,
        )

    @staticmethod
    def _run_serial(pending: Sequence[ExperimentSpec]):
        for spec in pending:
            yield spec, spec.run()

    @staticmethod
    def _run_pool(pending: Sequence[ExperimentSpec], workers: int):
        from ..experiments.runner import TrialResult

        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_run_spec_payload, spec.to_dict()): spec
                for spec in pending
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in done:
                    yield futures[future], TrialResult.from_dict(
                        future.result()
                    )


# ----------------------------------------------------------------------
# JSONL sink helpers
# ----------------------------------------------------------------------
def _open_sink(path, append: bool = True):
    if path is None:
        return None
    parent = os.path.dirname(os.fspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    return open(path, "a" if append else "w", encoding="utf-8")


def _read_sink(path) -> Dict[str, Dict[str, Any]]:
    """Map of spec key -> result dict from a (possibly truncated) sink."""
    rows: Dict[str, Dict[str, Any]] = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                rows[record["key"]] = record["result"]
            except (json.JSONDecodeError, KeyError, TypeError):
                # A trailing half-written line after a hard kill is
                # expected; that trial simply re-runs.
                continue
    return rows


def load_campaign_results(path) -> List[Tuple[ExperimentSpec, Any]]:
    """Read a sink file back as ``(spec, TrialResult)`` pairs."""
    from ..experiments.runner import TrialResult

    pairs = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                pairs.append((
                    ExperimentSpec.from_dict(record["spec"]),
                    TrialResult.from_dict(record["result"]),
                ))
            except (json.JSONDecodeError, KeyError, TypeError):
                continue
    return pairs
