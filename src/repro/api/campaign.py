"""Campaigns: grids of :class:`ExperimentSpec` run serially or in
parallel, streamed to JSONL, resumable.

A campaign is the paper's experimental method as data — protocols ×
topologies × schedulers × seeds — with an executor that:

* runs specs serially or on a :class:`~concurrent.futures.ProcessPoolExecutor`
  (each spec carries its own seed, so parallel results are bit-identical
  to serial results);
* streams one JSON line per finished trial to a sink file the moment it
  completes, so an interrupted campaign loses at most in-flight trials;
* on restart, skips every spec whose key already appears in the sink.

Usage::

    campaign = Campaign.grid(
        protocols=["coloring", "mis", "matching"],
        topologies=[("ring", {"n": 24}), ("grid", {"rows": 5, "cols": 5})],
        schedulers=["synchronous", "central", "locally-central"],
        seeds=range(32),
    )
    outcome = campaign.run(jsonl_path="results.jsonl", workers=8)
    for spec, result in outcome:
        ...
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..obs.registry import TELEMETRY
from .spec import ExperimentSpec

#: A grid axis entry: "coloring", ("gnp", {"n": 30, "p": 0.2}), or
#: {"name": "gnp", "params": {...}}.
ComponentSpec = Union[str, Tuple[str, Mapping[str, Any]], Mapping[str, Any]]


def _normalize_component(item: ComponentSpec) -> Tuple[str, Dict[str, Any]]:
    if isinstance(item, str):
        return item, {}
    if isinstance(item, tuple):
        name, params = item
        return name, dict(params or {})
    if isinstance(item, Mapping):
        return item["name"], dict(item.get("params") or {})
    raise TypeError(f"bad component spec: {item!r}")


def _run_spec_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool entry point: spec dict in, result dict out."""
    spec = ExperimentSpec.from_dict(payload)
    return spec.run().to_dict()


@dataclass
class CampaignOutcome:
    """What :meth:`Campaign.run` returns.

    ``results`` is aligned row-for-row with ``specs`` (campaign order,
    independent of completion order under parallel execution).
    ``executed``/``skipped`` count fresh runs vs. resume hits.
    """

    specs: List[ExperimentSpec]
    results: List[Any]  # TrialResult rows, aligned with ``specs``
    executed: int = 0
    skipped: int = 0

    def __iter__(self) -> Iterator[Tuple[ExperimentSpec, Any]]:
        return iter(zip(self.specs, self.results))

    def __len__(self) -> int:
        return len(self.specs)


class Campaign:
    """An ordered collection of specs plus the machinery to run them."""

    def __init__(self, specs: Iterable[ExperimentSpec]):
        self.specs: List[ExperimentSpec] = list(specs)
        seen: set = set()
        dupes = set()
        for spec in self.specs:
            key = spec.key()
            (dupes if key in seen else seen).add(key)
        if dupes:
            raise ValueError(f"duplicate specs in campaign: {sorted(dupes)}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def grid(
        cls,
        protocols: Sequence[ComponentSpec],
        topologies: Sequence[ComponentSpec],
        schedulers: Sequence[ComponentSpec] = ("synchronous",),
        seeds: Iterable[int] = (0,),
        max_rounds: int = 50_000,
        engine: str = "incremental",
        metrics: str = "full",
        scenario: Optional[str] = None,
        scenario_params: Optional[Mapping[str, Any]] = None,
    ) -> "Campaign":
        """The full cross product of the four axes, in a stable order.

        ``engine`` and ``metrics`` apply to every spec in the grid
        (run-time strategies, not experiment axes — all engines produce
        identical results, and the ``aggregate`` tier reports the same
        final measures as ``full`` at a fraction of the step cost).
        ``scenario``/``scenario_params`` attach one named fault/churn
        scenario to every spec; sweep scenario parameters by
        concatenating grids (see ``examples/scenario_churn.py``).
        """
        specs = []
        for proto_name, proto_params in map(_normalize_component, protocols):
            for topo_name, topo_params in map(_normalize_component, topologies):
                for sched_name, sched_params in map(
                    _normalize_component, schedulers
                ):
                    for seed in seeds:
                        specs.append(ExperimentSpec(
                            protocol=proto_name,
                            protocol_params=proto_params,
                            topology=topo_name,
                            topology_params=topo_params,
                            scheduler=sched_name,
                            scheduler_params=sched_params,
                            seed=int(seed),
                            max_rounds=max_rounds,
                            engine=engine,
                            metrics=metrics,
                            scenario=scenario,
                            scenario_params=dict(scenario_params or {}),
                        ))
        return cls(specs)

    @classmethod
    def from_dicts(cls, dicts: Iterable[Mapping[str, Any]]) -> "Campaign":
        return cls(ExperimentSpec.from_dict(d) for d in dicts)

    @classmethod
    def from_json(cls, text: str) -> "Campaign":
        """Parse a JSON document — either a list of spec objects or
        ``{"grid": {...Campaign.grid kwargs...}}``."""
        data = json.loads(text)
        if isinstance(data, Mapping) and "grid" in data:
            return cls.grid(**data["grid"])
        if isinstance(data, list):
            return cls.from_dicts(data)
        raise ValueError(
            "campaign JSON must be a list of specs or {'grid': {...}}"
        )

    @classmethod
    def from_json_file(cls, path: Union[str, os.PathLike]) -> "Campaign":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [s.to_dict() for s in self.specs]

    def to_json(self) -> str:
        return json.dumps(self.to_dicts(), indent=2, sort_keys=True)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[ExperimentSpec]:
        return iter(self.specs)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        jsonl_path: Optional[Union[str, os.PathLike]] = None,
        workers: int = 0,
        resume: bool = True,
        progress: Optional[Callable[[ExperimentSpec, Any], None]] = None,
        sink: Union[str, Any] = "jsonl",
        out: Optional[Union[str, os.PathLike]] = None,
        run_id: Optional[str] = None,
    ) -> CampaignOutcome:
        """Execute every spec; returns results aligned with the specs.

        Parameters
        ----------
        jsonl_path:
            Back-compat alias for ``out`` (the sink destination).
        workers:
            ``0``/``1`` runs serially in-process; ``>= 2`` fans out over
            a process pool of that many workers.  Results are identical
            either way because every spec carries its own seed.
        resume:
            When the sink already holds rows for some spec keys, return
            those rows instead of re-running the specs.
        progress:
            Optional ``(spec, result)`` callback, invoked on completion
            (resumed rows included), in completion order.
        sink:
            Sink kind for ``out`` — ``"jsonl"`` (one JSON line per
            trial, the historical format) or ``"sqlite"`` (a
            :class:`~repro.results.ResultStore` run; queryable,
            concurrent-writer safe) — or a ready-made
            :class:`~repro.results.Sink` instance.  Resume-by-key works
            identically across kinds.
        out:
            Sink destination path.  ``None`` (and no ``jsonl_path`` and
            no sink instance) keeps results in memory only.
        run_id:
            Store run to write into (``sink="sqlite"`` only; the sink's
            default is ``"campaign"``).  Naming runs is what makes
            serial-vs-fabric and before-vs-after comparisons possible
            in one store (``repro compare --runs``).
        """
        # Function-local by design: api and results reference each
        # other (the sink protocol lives with the warehouse), and this
        # is the one upward edge — see docs/architecture.md.
        from ..results.sinks import Sink, make_sink

        path = out if out is not None else jsonl_path
        if isinstance(sink, Sink):
            sink_obj: Optional[Sink] = sink
        elif path is None:
            sink_obj = None
        else:
            # Without resume the sink is started over, not appended to —
            # otherwise re-run rows would shadow (and double-count) old
            # ones.
            sink_kwargs: Dict[str, Any] = {}
            if run_id is not None:
                if sink != "sqlite":
                    raise ValueError(
                        "run_id requires sink='sqlite' (JSONL files "
                        "have no run namespace)")
                sink_kwargs["run_id"] = run_id
            sink_obj = make_sink(sink, path, append=resume, **sink_kwargs)

        completed: Dict[str, Any] = {}
        if resume and sink_obj is not None:
            completed = sink_obj.completed()

        by_key: Dict[str, Any] = {}
        skipped = 0
        pending: List[ExperimentSpec] = []
        for spec in self.specs:
            key = spec.key()
            if key in completed:
                by_key[key] = completed[key]
                skipped += 1
                if progress is not None:
                    progress(spec, completed[key])
            else:
                pending.append(spec)

        from ..results.sinks import SqliteSink

        t_start = time.perf_counter()
        try:
            if workers and workers >= 2 and len(pending) > 1:
                runner = self._run_pool(pending, workers)
            else:
                runner = self._run_serial(pending)
            for spec, result in runner:
                key = spec.key()
                by_key[key] = result
                if sink_obj is not None:
                    sink_obj.write(key, spec, result)
                if progress is not None:
                    progress(spec, result)
            wall = time.perf_counter() - t_start
            # Sqlite sinks get a per-campaign telemetry row regardless of
            # the registry switch: the summary is cheap, already computed,
            # and is what `/progress` and `repro top` fall back to after
            # the fact.  Recorded here, while the store is still open.
            if isinstance(sink_obj, SqliteSink):
                sink_obj.store.record_telemetry(sink_obj.run_id, {
                    "trials": len(self.specs),
                    "executed": len(pending),
                    "resumed": skipped,
                    "workers": workers,
                    "wall_time_s": wall,
                    "trials_per_s": (len(pending) / wall) if wall > 0
                                    else None,
                }, source="campaign")
        finally:
            if sink_obj is not None:
                sink_obj.close()

        if TELEMETRY.enabled:
            TELEMETRY.counter("campaign.executed").inc(len(pending))
            TELEMETRY.counter("campaign.resumed").inc(skipped)
            TELEMETRY.record_span(
                "campaign.run", wall, trials=len(self.specs),
                executed=len(pending), resumed=skipped, workers=workers,
            )

        return CampaignOutcome(
            specs=list(self.specs),
            results=[by_key[s.key()] for s in self.specs],
            executed=len(pending),
            skipped=skipped,
        )

    def run_fabric(self, store: Union[str, os.PathLike], **kwargs: Any):
        """Execute this campaign through the fabric coordinator.

        Shards the grid over worker subprocesses with crash recovery
        and merges per-shard stores into ``store`` — trial-for-trial
        identical to :meth:`run` with a sqlite sink, just distributed.
        Keyword arguments pass through to
        :class:`~repro.fabric.Coordinator` (``workers``, ``shards``,
        ``run_id``, ``resume``, ...); returns its
        :class:`~repro.fabric.FabricOutcome`.
        """
        # Same deliberate upward edge as the sink import in run().
        from ..fabric import run_fabric

        return run_fabric(self, store, **kwargs)

    @staticmethod
    def _run_serial(pending: Sequence[ExperimentSpec]):
        for spec in pending:
            yield spec, spec.run()

    @staticmethod
    def _run_pool(pending: Sequence[ExperimentSpec], workers: int):
        from ..experiments.runner import TrialResult

        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_run_spec_payload, spec.to_dict()): spec
                for spec in pending
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in done:
                    yield futures[future], TrialResult.from_dict(
                        future.result()
                    )


# ----------------------------------------------------------------------
# JSONL sink readers (streaming)
# ----------------------------------------------------------------------
def _iter_sink_records(path) -> Iterator[Dict[str, Any]]:
    """Stream the well-formed ``{"key", "spec", "result"}`` records of a
    JSONL sink, one line at a time.

    The single tolerant reader shared by resume, ingest and the loaders
    below.  A half-written trailing line (what a hard-killed campaign
    leaves behind) is skipped instead of raising mid-file — that trial
    simply re-runs on resume — and so are blank lines; nothing is ever
    held beyond the current record, so sinks of any size stream in
    constant memory.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                # Touch the fields now so malformed records are skipped
                # here, not deep inside a consumer.
                record["key"], record["spec"], record["result"]
            except (json.JSONDecodeError, KeyError, TypeError):
                continue
            yield record


def _read_sink(path) -> Dict[str, Dict[str, Any]]:
    """Map of spec key -> result dict from a (possibly truncated) sink.

    Duplicate keys (two append sessions racing on one file) resolve
    last-writer-wins, matching the sqlite sink's insert-or-replace.
    """
    return {rec["key"]: rec["result"] for rec in _iter_sink_records(path)}


def iter_campaign_results(path) -> Iterator[Tuple[ExperimentSpec, Any]]:
    """Stream a sink file back as ``(spec, TrialResult)`` pairs.

    A generator: rows parse one at a time in file order, so arbitrarily
    large sinks can be folded (or ingested into a
    :class:`~repro.results.ResultStore`) without ever materializing the
    whole campaign in memory.
    """
    from ..experiments.runner import TrialResult

    for record in _iter_sink_records(path):
        try:
            yield (
                ExperimentSpec.from_dict(record["spec"]),
                TrialResult.from_dict(record["result"]),
            )
        except (ValueError, KeyError, TypeError):
            continue


def load_campaign_results(path) -> List[Tuple[ExperimentSpec, Any]]:
    """Read a sink file back as a list of ``(spec, TrialResult)`` pairs
    (the eager form of :func:`iter_campaign_results`)."""
    return list(iter_campaign_results(path))
