"""Frozen, JSON-round-trippable experiment descriptions.

An :class:`ExperimentSpec` pins down one trial completely — protocol,
topology, scheduler and enabled-set engine by registry name plus
parameters, the seed, and the round budget — so experiments can live in
files, cross process
boundaries, and be deduplicated by a stable content key.  No live
``Protocol``/``Network``/``Scheduler`` object ever appears in user
code: everything is built on demand from the registries.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

from ..core.metrics import METRICS_TIERS
from ..obs.registry import TELEMETRY
from ..core.simulator import Simulator
from .registry import (
    engine_registry,
    protocol_registry,
    scheduler_registry,
    topology_registry,
)


def _frozen_params(params: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    """A JSON-clean private copy of a parameter mapping."""
    params = dict(params or {})
    # Round-trip through JSON now so that a spec equals its re-parsed
    # self (tuples become lists, keys become strings) and unserializable
    # parameters fail loudly at construction, not at campaign time.
    return json.loads(json.dumps(params, sort_keys=True))


@dataclass(frozen=True)
class ExperimentSpec:
    """One trial as pure data: names + parameters + seed + budget."""

    protocol: str
    topology: str
    scheduler: str = "synchronous"
    protocol_params: Dict[str, Any] = field(default_factory=dict)
    topology_params: Dict[str, Any] = field(default_factory=dict)
    scheduler_params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    max_rounds: int = 50_000
    #: enabled-set maintenance strategy ("incremental" | "scan" |
    #: "debug" | "batch" | "batch-debug" | "batch-resident"); every
    #: engine produces identical executions — "batch-resident" keeps
    #: state columnar across fused synchronous steps and decodes rows
    #: only at observation boundaries.
    engine: str = "incremental"
    #: metrics tier ("full" | "aggregate" | "off"): "aggregate" streams
    #: the paper's measures without per-step records (identical final
    #: measures, much cheaper); "off" disables collection entirely.
    metrics: str = "full"
    #: scenario name from the scenario registry (None = scenario-free
    #: run).  A scenario is an experiment axis: it changes results, so
    #: — unlike ``engine``/``metrics`` — it participates in ``key()``.
    scenario: Optional[str] = None
    scenario_params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        for name in ("protocol_params", "topology_params",
                     "scheduler_params", "scenario_params"):
            object.__setattr__(self, name, _frozen_params(getattr(self, name)))
        if self.metrics not in METRICS_TIERS:
            raise ValueError(
                f"unknown metrics tier {self.metrics!r}; "
                f"known: {METRICS_TIERS}"
            )
        if self.scenario is None and self.scenario_params:
            raise ValueError("scenario_params given without a scenario")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        out = {
            "protocol": self.protocol,
            "protocol_params": dict(self.protocol_params),
            "topology": self.topology,
            "topology_params": dict(self.topology_params),
            "scheduler": self.scheduler,
            "scheduler_params": dict(self.scheduler_params),
            "seed": self.seed,
            "max_rounds": self.max_rounds,
            "engine": self.engine,
            "metrics": self.metrics,
        }
        # Scenario-free specs serialize exactly as they did before the
        # scenario axis existed, so old spec files and sinks stay valid.
        if self.scenario is not None:
            out["scenario"] = self.scenario
            out["scenario_params"] = dict(self.scenario_params)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        known = {f: data[f] for f in (
            "protocol", "protocol_params", "topology", "topology_params",
            "scheduler", "scheduler_params", "seed", "max_rounds", "engine",
            "metrics", "scenario", "scenario_params",
        ) if f in data}
        unknown = set(data) - set(known)
        if unknown:
            raise ValueError(f"unknown ExperimentSpec fields: {sorted(unknown)}")
        return cls(**known)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    def key(self) -> str:
        """A stable, human-scannable content id (used for resume).

        The ``engine`` field is deliberately excluded: it is a run-time
        strategy, not an experiment axis — all engines produce identical
        results — so switching engines (or upgrading from specs that
        predate the field) still resumes from an existing sink.  The
        ``metrics`` tier is excluded on the same grounds for ``full``
        and ``aggregate`` (the aggregate tier reports identical final
        measures, and old sinks predate the field); ``metrics="off"``
        *is* keyed, because its results carry zeroed measures and must
        not be resumed into a measuring campaign.  The ``scenario``
        axis *is* keyed (different fault scripts produce different
        results), but a scenario-free spec keys exactly as it did
        before the field existed, so pre-scenario sinks still resume.
        """
        payload = self.to_dict()
        del payload["engine"]
        if self.metrics in ("full", "aggregate"):
            del payload["metrics"]
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()[:12]
        prefix = (f"{self.protocol}/{self.topology}/{self.scheduler}"
                  f"/s{self.seed}")
        if self.scenario is not None:
            prefix += f"/{self.scenario}"
        return f"{prefix}/{digest}"

    def variant(self, **overrides) -> "ExperimentSpec":
        """A copy with some fields replaced (e.g. ``variant(seed=7)``)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Construction of live objects
    # ------------------------------------------------------------------
    def build_network(self):
        return topology_registry.build(self.topology, **self.topology_params)

    def build_protocol(self, network):
        return protocol_registry.build(
            self.protocol, network, **self.protocol_params
        )

    def build_scheduler(self, network):
        return scheduler_registry.build(
            self.scheduler, network, **self.scheduler_params
        )

    def build_engine(self):
        return engine_registry.build(self.engine)

    def build_scenario(self):
        """The spec's :class:`~repro.scenarios.Scenario` (None if unset)."""
        if self.scenario is None:
            return None
        from ..scenarios.library import scenario_registry

        return scenario_registry.build(self.scenario, **self.scenario_params)

    def protocol_factory(self):
        """A ``network -> Protocol`` rebuild hook for topology churn."""
        return lambda network: protocol_registry.build(
            self.protocol, network, **self.protocol_params
        )

    def build_simulator(self) -> Simulator:
        """A ready-to-run :class:`Simulator` for this spec."""
        network = self.build_network()
        return Simulator(
            self.build_protocol(network),
            network,
            scheduler=self.build_scheduler(network),
            seed=self.seed,
            engine=self.build_engine(),
            metrics=self.metrics,
            scenario=self.build_scenario(),
            protocol_factory=self.protocol_factory(),
        )

    def run(self):
        """Run this spec (scenario included); returns a ``TrialResult``."""
        network = self.build_network()
        return execute_trial(
            self.build_protocol(network),
            network,
            self.build_scheduler(network),
            seed=self.seed,
            max_rounds=self.max_rounds,
            engine=self.build_engine(),
            metrics=self.metrics,
            scenario=self.build_scenario(),
            protocol_factory=self.protocol_factory(),
        )


def drive_simulator(sim: Simulator, max_rounds: int = 50_000):
    """Run a (possibly scenario-bearing) simulator to completion.

    The shared run policy of :func:`execute_trial` and the CLI:

    * no scenario, or a scenario with no round horizon — run to
      silence; then, while fire-once events (``after_silence`` faults,
      scheduled one-shots) are still pending, step round by round so
      they fire and re-stabilize after each disturbance;
    * a scenario with ``horizon_rounds`` (periodic fault/churn scripts
      never exhaust) — run exactly that many rounds and report the
      final configuration's state.

    Returns the closing :class:`~repro.core.simulator.StabilizationReport`.
    """
    runtime = sim.scenario_runtime
    if runtime is not None and runtime.horizon_rounds:
        sim.run_rounds(min(runtime.horizon_rounds, max_rounds))
        return sim.report()
    report = sim.run_until_silent(max_rounds=max_rounds)
    if runtime is None:
        return report
    extra = 0
    while runtime.pending_oneshots and extra < max_rounds:
        sim.run_rounds(1)  # no-op steps while silent; events fire here
        extra += 1
        if not sim.is_silent():
            report = sim.run_until_silent(max_rounds=max_rounds)
    return report


def execute_trial(protocol, network, scheduler, seed: int = 0,
                  max_rounds: int = 50_000, engine="incremental",
                  metrics: str = "full", scenario=None,
                  protocol_factory=None):
    """Run one protocol instance to silence and collect its metrics.

    The single execution path shared by :meth:`ExperimentSpec.run`, the
    campaign workers, and the legacy ``run_trial`` wrapper.  ``engine``
    selects the enabled-set maintenance strategy (name or instance);
    results are engine-independent by the equivalence contract.
    ``metrics`` selects the collection tier — ``full`` and
    ``aggregate`` produce identical :class:`TrialResult` rows (the
    aggregate tier skips per-step record construction); ``off`` zeroes
    the communication measures and is meant for pure-throughput runs.
    ``scenario`` (a :class:`~repro.scenarios.Scenario`) scripts faults,
    churn, and daemon swaps into the run — see :func:`drive_simulator`
    for the run policy — with ``protocol_factory`` supplying the
    protocol rebuild hook topology churn needs.
    """
    from ..experiments.runner import TrialResult

    sim = Simulator(protocol, network, scheduler=scheduler, seed=seed,
                    engine=engine, metrics=metrics, scenario=scenario,
                    protocol_factory=protocol_factory)
    obs_on = TELEMETRY.enabled
    t0 = time.perf_counter() if obs_on else 0.0
    report = drive_simulator(sim, max_rounds=max_rounds)
    if obs_on:
        wall = time.perf_counter() - t0
        TELEMETRY.counter("trial.executed").inc()
        TELEMETRY.histogram("trial.wall_s").observe(wall)
        TELEMETRY.record_span(
            "trial.execute", wall, protocol=protocol.name,
            scheduler=sim.scheduler.name, n=sim.network.n, seed=seed,
            steps=report.steps, rounds=report.rounds,
        )
    # Churn may have replaced the network mid-run; report the final one.
    network = sim.network
    return TrialResult(
        protocol=protocol.name,
        scheduler=sim.scheduler.name,
        n=network.n,
        m=network.m,
        delta=network.max_degree,
        seed=seed,
        steps=report.steps,
        rounds=report.rounds,
        legitimate=report.legitimate,
        silent=report.silent,
        **sim.metrics.trial_measures(),
    )
