"""Unit tests for the scheduler (daemon) family."""

import random

import pytest

from repro.core import (
    BoundedFairScheduler,
    CentralScheduler,
    FixedSequenceScheduler,
    RandomSubsetScheduler,
    RoundRobinScheduler,
    SynchronousScheduler,
    make_scheduler,
)

PROCS = list(range(8))


def select_many(scheduler, steps=400, seed=0):
    rng = random.Random(seed)
    return [scheduler.select(PROCS, rng) for _ in range(steps)]


class TestContracts:
    @pytest.mark.parametrize(
        "factory",
        [
            SynchronousScheduler,
            CentralScheduler,
            lambda: RandomSubsetScheduler(0.3),
            RoundRobinScheduler,
            lambda: BoundedFairScheduler(bound=10),
        ],
    )
    def test_selections_nonempty_and_valid(self, factory):
        scheduler = factory()
        for chosen in select_many(scheduler):
            assert chosen
            assert set(chosen) <= set(PROCS)

    @pytest.mark.parametrize(
        "factory",
        [
            SynchronousScheduler,
            CentralScheduler,
            lambda: RandomSubsetScheduler(0.3),
            RoundRobinScheduler,
            lambda: BoundedFairScheduler(bound=10),
        ],
    )
    def test_fairness_over_long_run(self, factory):
        """Every process selected many times over a long run."""
        scheduler = factory()
        counts = {p: 0 for p in PROCS}
        for chosen in select_many(scheduler, steps=2000, seed=7):
            for p in chosen:
                counts[p] += 1
        assert all(c > 20 for c in counts.values())


class TestSynchronous:
    def test_selects_everyone(self):
        chosen = SynchronousScheduler().select(PROCS, random.Random(0))
        assert sorted(chosen) == PROCS


class TestCentral:
    def test_selects_exactly_one(self):
        s = CentralScheduler()
        for chosen in select_many(s):
            assert len(chosen) == 1


class TestRoundRobin:
    def test_cycles_in_order(self):
        s = RoundRobinScheduler()
        rng = random.Random(0)
        seen = [s.select(PROCS, rng)[0] for _ in range(len(PROCS))]
        assert seen == PROCS

    def test_reset(self):
        s = RoundRobinScheduler()
        rng = random.Random(0)
        s.select(PROCS, rng)
        s.reset()
        assert s.select(PROCS, rng) == [PROCS[0]]


class TestBoundedFair:
    def test_no_starvation_beyond_bound(self):
        s = BoundedFairScheduler(bound=12, burst=2)
        rng = random.Random(3)
        last_seen = {p: 0 for p in PROCS}
        for step in range(1, 1000):
            for p in s.select(PROCS, rng):
                last_seen[p] = step
            for p in PROCS:
                assert step - last_seen[p] <= 12 + 1

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            BoundedFairScheduler(bound=0)


class TestRandomSubset:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            RandomSubsetScheduler(0.0)
        with pytest.raises(ValueError):
            RandomSubsetScheduler(1.5)

    def test_full_probability_selects_all(self):
        s = RandomSubsetScheduler(1.0)
        assert sorted(s.select(PROCS, random.Random(0))) == PROCS


class TestFixedSequence:
    def test_replays_then_synchronous(self):
        s = FixedSequenceScheduler([[0], [1, 2]])
        rng = random.Random(0)
        assert s.select(PROCS, rng) == [0]
        assert s.select(PROCS, rng) == [1, 2]
        assert sorted(s.select(PROCS, rng)) == PROCS


class TestFactory:
    def test_known_names(self):
        for name in ("synchronous", "central", "random-subset", "round-robin",
                     "bounded-fair"):
            assert make_scheduler(name).name == name

    def test_covers_every_scheduler_class(self):
        from repro.core.scheduler import DEFAULT_SCHEDULERS, Scheduler

        subclasses = {cls.name for cls in Scheduler.__subclasses__()}
        assert subclasses == {cls.name for cls in DEFAULT_SCHEDULERS}

    def test_parameterized_names(self):
        seq = make_scheduler("fixed-sequence", sequence=[[0], [1]])
        assert seq.name == "fixed-sequence"
        local = make_scheduler("locally-central", network=_StubNetwork())
        assert local.name == "locally-central"

    def test_missing_required_params(self):
        with pytest.raises(ValueError):
            make_scheduler("locally-central")

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_scheduler("quantum")


class _StubNetwork:
    def neighbors(self, p):
        return []
