"""Batch (columnar) engine: byte-identity with the scalar step loop.

The batch engine evaluates guards over whole columns and writes γi+1
back through the shared :class:`~repro.core.state.Configuration`, so it
must be *observationally invisible*: byte-identical JSONL traces, equal
final configurations, equal metrics (both tiers), and equal per-step
enabled sets — including under scenario churn that rebuilds the column
store mid-run.  The suite also pins the fallback ladder (kernel-less
protocols, legacy state, duplicate-pid selections, NumPy absent) and
the self-auditing ``batch-debug`` engine.
"""

import sys

import pytest

from repro.api import (
    protocol_registry,
    scheduler_registry,
    topology_registry,
)
from repro.core import (
    BatchCrossCheckEngine,
    BatchEngine,
    ModelError,
    Simulator,
    TraceRecorder,
)
from repro.core.actions import GuardedAction
from repro.core.protocol import Protocol
from repro.core.scheduler import FixedSequenceScheduler
from repro.core.variables import BOOL, comm
from repro.scenarios import build_scenario

PROTOCOLS = ("coloring", "mis", "matching")
#: synchronous daemon and maximal (greedy) daemon — the two the batch
#: path is designed for; the equivalence must hold for any daemon.
SCHEDULERS = (
    ("synchronous", {}),
    ("synchronous", {"enabled_only": True}),
)
SEEDS = (0, 3, 7, 11, 19)
TOPOLOGY = ("gnp", {"n": 14, "p": 0.3, "seed": 2})


def build_sim(protocol, scheduler=("synchronous", {}), seed=0,
              engine="incremental", topology=TOPOLOGY, scenario=None,
              **kwargs):
    topo_name, topo_params = topology
    sched_name, sched_params = scheduler
    net = topology_registry.build(topo_name, **topo_params)
    return Simulator(
        protocol_registry.build(protocol, net),
        net,
        scheduler=scheduler_registry.build(sched_name, net, **sched_params),
        seed=seed,
        engine=engine,
        scenario=scenario,
        protocol_factory=lambda n: protocol_registry.build(protocol, n),
        **kwargs,
    )


def run_recorded(protocol, scheduler, seed, engine, steps=40, **kwargs):
    sim = build_sim(protocol, scheduler, seed, engine, **kwargs)
    recorder = TraceRecorder(sim, seed=seed)
    recorder.run_steps(steps)
    return recorder.trace.to_jsonl(), sim


class TestTraceByteIdentity:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("scheduler,sched_params", SCHEDULERS)
    def test_batch_and_scalar_traces_are_byte_identical(
        self, protocol, scheduler, sched_params
    ):
        for seed in SEEDS:
            scalar, scalar_sim = run_recorded(
                protocol, (scheduler, sched_params), seed, "incremental"
            )
            batch, batch_sim = run_recorded(
                protocol, (scheduler, sched_params), seed, "batch"
            )
            label = (protocol, scheduler, sched_params, seed)
            assert batch_sim.engine.batch_active, label
            assert scalar == batch, label
            assert scalar_sim.config == batch_sim.config, label
            assert (scalar_sim.metrics.summary()
                    == batch_sim.metrics.summary()), label
            assert (scalar_sim.metrics.activations
                    == batch_sim.metrics.activations), label
            assert (scalar_sim.metrics.read_sets
                    == batch_sim.metrics.read_sets), label

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_aggregate_tier_folds_agree(self, protocol):
        for scheduler in SCHEDULERS:
            summaries = []
            for engine in ("incremental", "batch"):
                sim = build_sim(protocol, scheduler, seed=5, engine=engine,
                                metrics="aggregate")
                sim.run_steps(60)
                summaries.append(
                    (sim.metrics.summary(), dict(sim.metrics.activations),
                     {p: frozenset(s)
                      for p, s in sim.metrics.read_sets.items()})
                )
            assert summaries[0] == summaries[1], (protocol, scheduler)

    def test_duplicate_pid_selection_takes_the_scalar_path(self):
        """Scripted daemons may activate a pid twice in one step; the
        batch step folds each process once, so such steps must divert
        to the scalar loop — and stay trace-identical doing so."""
        net = topology_registry.build("ring", n=8)
        p0, p1 = net.processes[0], net.processes[1]
        script = [[p0, p0, p1], [p1, p1]]
        traces = []
        for engine in ("incremental", "batch"):
            net = topology_registry.build("ring", n=8)
            sim = Simulator(
                protocol_registry.build("coloring", net), net,
                scheduler=FixedSequenceScheduler(script), seed=4,
                engine=engine,
            )
            recorder = TraceRecorder(sim, seed=4)
            recorder.run_steps(10)
            traces.append(recorder.trace.to_jsonl())
        assert traces[0] == traces[1]


# ----------------------------------------------------------------------
# Per-step enabled sets under scenario churn (store rebuilds mid-run)
# ----------------------------------------------------------------------
CHURN_PARAMS = {"period_rounds": 2, "fraction": 0.25, "min_n": 6}


class TestScenarioChurnEquivalence:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("scheduler,sched_params", SCHEDULERS)
    def test_churn_enabled_sets_match_scalar(self, protocol, scheduler,
                                             sched_params):
        for seed in (0, 7):
            sims = [
                build_sim(protocol, (scheduler, sched_params), seed=seed,
                          engine=engine,
                          topology=("gnp", {"n": 10, "p": 0.35, "seed": 4}),
                          scenario=build_scenario("churn", CHURN_PARAMS))
                for engine in ("incremental", "batch")
            ]
            step = 0
            while sims[0].round_tracker.completed_rounds < 7 and step < 400:
                enabled = [sim.enabled_processes() for sim in sims]
                assert enabled[0] == enabled[1], (protocol, scheduler,
                                                  seed, step)
                records = [sim.step() for sim in sims]
                assert records[0] == records[1], (protocol, scheduler,
                                                  seed, step)
                step += 1
            assert sims[0].config == sims[1].config
            applied = [
                [(a.step, a.description) for a in sim.scenario_runtime.applied]
                for sim in sims
            ]
            assert applied[0] and applied[0] == applied[1]


# ----------------------------------------------------------------------
# Fallback ladder: the batch engine must degrade, never diverge
# ----------------------------------------------------------------------
class OneShot(Protocol):
    """Toy protocol with no registered batch kernel."""

    name = "one-shot"

    def variables(self, network, p):
        return (comm("x", BOOL),)

    def actions(self):
        return (
            GuardedAction(
                "clear",
                lambda ctx: ctx.get("x"),
                lambda ctx: ctx.set("x", False),
            ),
        )

    def is_legitimate(self, network, config):
        return all(not config.get(p, "x") for p in network.processes)


class TestFallback:
    def test_kernel_less_protocol_falls_back_transparently(self):
        net = topology_registry.build("ring", n=6)
        sim = Simulator(OneShot(), net, seed=0, engine="batch")
        assert isinstance(sim.engine, BatchEngine)
        assert not sim.engine.batch_active
        report = sim.run_until_silent(max_rounds=50)
        assert report.stabilized

    def test_legacy_state_backend_falls_back(self):
        scalar, _ = run_recorded(
            "mis", ("synchronous", {}), 3, "incremental", state="legacy"
        )
        batch, batch_sim = run_recorded(
            "mis", ("synchronous", {}), 3, "batch", state="legacy"
        )
        assert not batch_sim.engine.batch_active
        assert scalar == batch

    def test_fallback_classify_all_refuses(self):
        net = topology_registry.build("ring", n=6)
        sim = Simulator(OneShot(), net, seed=0, engine="batch")
        with pytest.raises(ModelError, match="active batch kernel"):
            sim.engine.classify_all()


class TestNoNumpy:
    """The ``array``-module backend must be trace-identical: the CI
    lanes without NumPy exercise it organically, this pins it."""

    @pytest.fixture()
    def no_numpy(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_python_backend_traces_identical(self, protocol, no_numpy):
        for scheduler in SCHEDULERS:
            scalar, _ = run_recorded(protocol, scheduler, 11, "incremental")
            batch, batch_sim = run_recorded(protocol, scheduler, 11, "batch")
            assert batch_sim.engine.batch_active
            assert batch_sim.engine.backend_name == "python"
            assert scalar == batch, (protocol, scheduler)

    def test_numpy_backend_used_when_importable(self):
        pytest.importorskip("numpy")
        sim = build_sim("coloring", engine="batch")
        assert sim.engine.backend_name == "numpy"


class TestBatchCrossCheck:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_clean_run_passes_audit(self, protocol):
        sim = build_sim(protocol, ("synchronous", {"enabled_only": True}),
                        seed=5, engine="batch-debug")
        assert isinstance(sim.engine, BatchCrossCheckEngine)
        sim.run_steps(40)
        sim.enabled_processes()  # the audited enabled-set query

    def test_out_of_band_mutation_is_caught(self):
        from repro.predicates.mis import DOMINATED, DOMINATOR

        sim = build_sim("mis", seed=0, engine="batch-debug")
        sim.run_steps(5)
        sim.enabled_processes()
        # Flip comm state behind the engine's back until the stale
        # columns diverge from a fresh scan; the audit must refuse.
        with pytest.raises(ModelError):
            for p in sim.network.processes:
                current = sim.config.get(p, "S")
                sim.config.set(
                    p, "S",
                    DOMINATED if current == DOMINATOR else DOMINATOR,
                )
                sim.engine.note_step([], [])
                sim.enabled_processes()
            pytest.skip("no divergence found (all flips status-neutral)")
