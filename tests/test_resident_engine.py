"""Column-resident execution: byte-identity at observation boundaries.

The ``batch-resident`` engine keeps writes columnar across steps —
rows decode only when something observes them (a trace record, a
direct configuration read, a metrics flush, a scenario effect, a
silence witness).  Observational invisibility is therefore the whole
contract: every suite here compares the resident engine against the
scalar oracles byte for byte *through* those observation boundaries —
traces, final configurations, aggregate folds, mid-run reads forcing
materialization, scenario corruption, churn store rebuilds, and the
NumPy-free backend.  A stale-read regression pins that the
materialization hook is load-bearing, not decorative.
"""

import sys

import pytest

from repro.api import (
    protocol_registry,
    scheduler_registry,
    topology_registry,
)
from repro.core import (
    ModelError,
    ResidentBatchEngine,
    Simulator,
    TraceRecorder,
)
from repro.core.batchengine import BatchEngine
from repro.core.exceptions import ConvergenceError
from repro.scenarios import build_scenario

PROTOCOLS = ("coloring", "mis", "matching")
#: synchronous daemon and maximal (greedy) daemon — the fused driver's
#: two target daemons; equivalence must hold for both.
SCHEDULERS = (
    ("synchronous", {}),
    ("synchronous", {"enabled_only": True}),
)
SEEDS = (0, 3, 7, 11, 19)
TOPOLOGY = ("gnp", {"n": 14, "p": 0.3, "seed": 2})


def build_sim(protocol, scheduler=("synchronous", {}), seed=0,
              engine="incremental", topology=TOPOLOGY, scenario=None,
              **kwargs):
    topo_name, topo_params = topology
    sched_name, sched_params = scheduler
    net = topology_registry.build(topo_name, **topo_params)
    return Simulator(
        protocol_registry.build(protocol, net),
        net,
        scheduler=scheduler_registry.build(sched_name, net, **sched_params),
        seed=seed,
        engine=engine,
        scenario=scenario,
        protocol_factory=lambda n: protocol_registry.build(protocol, n),
        **kwargs,
    )


def run_recorded(protocol, scheduler, seed, engine, steps=40, **kwargs):
    sim = build_sim(protocol, scheduler, seed, engine, **kwargs)
    recorder = TraceRecorder(sim, seed=seed)
    recorder.run_steps(steps)
    return recorder.trace.to_jsonl(), sim


def aggregate_state(sim):
    """Everything the aggregate tier observes, plus the configuration."""
    return (
        sim.metrics.summary(),
        dict(sim.metrics.activations),
        {p: frozenset(s) for p, s in sim.metrics.read_sets.items()},
        sim.config.as_dict(),
        sim.step_index,
        sim.round_tracker.completed_rounds,
    )


# ----------------------------------------------------------------------
# Per-step path: full-tier traces stay byte-identical
# ----------------------------------------------------------------------
class TestResidentTraceByteIdentity:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("scheduler,sched_params", SCHEDULERS)
    def test_resident_and_scalar_traces_are_byte_identical(
        self, protocol, scheduler, sched_params
    ):
        for seed in SEEDS:
            scalar, scalar_sim = run_recorded(
                protocol, (scheduler, sched_params), seed, "incremental"
            )
            resident, resident_sim = run_recorded(
                protocol, (scheduler, sched_params), seed, "batch-resident"
            )
            label = (protocol, scheduler, sched_params, seed)
            assert isinstance(resident_sim.engine, ResidentBatchEngine)
            assert resident_sim.engine.batch_active, label
            assert scalar == resident, label
            assert scalar_sim.config == resident_sim.config, label
            assert (scalar_sim.metrics.summary()
                    == resident_sim.metrics.summary()), label

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_resident_matches_batch_debug_audit(self, protocol):
        """The self-auditing cross-check engine is the strictest scalar
        oracle; the resident per-step path must match it too."""
        audited, audited_sim = run_recorded(
            protocol, ("synchronous", {"enabled_only": True}), 5,
            "batch-debug",
        )
        resident, _ = run_recorded(
            protocol, ("synchronous", {"enabled_only": True}), 5,
            "batch-resident",
        )
        assert audited_sim.engine.batch_active
        assert audited == resident


# ----------------------------------------------------------------------
# Fused driver: aggregate folds, silence, round budgets
# ----------------------------------------------------------------------
class TestFusedDriver:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("scheduler,sched_params", SCHEDULERS)
    def test_fused_steps_match_scalar_aggregates(self, protocol, scheduler,
                                                 sched_params):
        for seed in SEEDS:
            scalar = build_sim(protocol, (scheduler, sched_params),
                               seed=seed, metrics="aggregate")
            scalar.run_steps(60)
            resident = build_sim(protocol, (scheduler, sched_params),
                                 seed=seed, engine="batch-resident",
                                 metrics="aggregate")
            assert resident._fused_resident() is resident.engine
            resident.run_steps(60)
            label = (protocol, scheduler, sched_params, seed)
            assert aggregate_state(scalar) == aggregate_state(resident), label

    def test_run_steps_actually_fuses(self, monkeypatch):
        calls = []
        fused = BatchEngine.run_steps

        def spy(self, *args, **kwargs):
            calls.append(kwargs.get("max_steps"))
            return fused(self, *args, **kwargs)

        monkeypatch.setattr(BatchEngine, "run_steps", spy)
        sim = build_sim("coloring", engine="batch-resident",
                        metrics="aggregate")
        sim.run_steps(25)
        assert calls == [25]
        assert sim.step_index == 25

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("scheduler,sched_params", SCHEDULERS)
    def test_run_until_silent_reports_match(self, protocol, scheduler,
                                            sched_params):
        for seed in SEEDS:
            reports = []
            sims = []
            for engine in ("incremental", "batch-resident"):
                sim = build_sim(protocol, (scheduler, sched_params),
                                seed=seed, engine=engine,
                                metrics="aggregate")
                reports.append(sim.run_until_silent(max_rounds=500))
                sims.append(sim)
            label = (protocol, scheduler, sched_params, seed)
            assert reports[0] == reports[1], label
            assert sims[0].config == sims[1].config, label
            assert (sims[0].metrics.summary()
                    == sims[1].metrics.summary()), label

    def test_round_budget_is_respected(self):
        scalar = build_sim("coloring", seed=2, metrics="aggregate")
        resident = build_sim("coloring", seed=2, engine="batch-resident",
                             metrics="aggregate")
        with pytest.raises(ConvergenceError):
            scalar.run_until_silent(max_rounds=1)
        with pytest.raises(ConvergenceError):
            resident.run_until_silent(max_rounds=1)
        assert scalar.round_tracker.completed_rounds == 1
        assert resident.round_tracker.completed_rounds == 1
        assert scalar.config == resident.config


# ----------------------------------------------------------------------
# Observation boundaries: every decode point is byte-faithful
# ----------------------------------------------------------------------
class TestObservationBoundaries:
    def oracle_after(self, protocol, seed, steps):
        sim = build_sim(protocol, seed=seed, metrics="aggregate")
        sim.run_steps(steps)
        return sim

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_direct_config_read_materializes_mid_run(self, protocol):
        """``simulator.config[...]`` between fused spans is an
        observation boundary: the store is dirty going in, the read
        decodes through the hook, and every decoded value matches the
        scalar oracle."""
        resident = build_sim(protocol, seed=7, engine="batch-resident",
                             metrics="aggregate")
        resident.run_resident(steps=9)
        store = resident.engine._store
        assert store.dirty, "fused steps should leave columns ahead of rows"
        oracle = self.oracle_after(protocol, 7, 9)
        for p in resident.network.processes:
            for name in ("cur",):
                assert (resident.config.get(p, name)
                        == oracle.config.get(p, name)), (protocol, p)
        assert not store.dirty
        # the run continues correctly after the boundary
        resident.run_resident(steps=6)
        oracle.run_steps(6)
        assert resident.config.as_dict() == oracle.config.as_dict()

    def test_stale_read_regression_without_the_hook(self):
        """If materialization were skipped, direct reads would serve
        stale rows — this pins that the sync hook is what keeps the
        resident engine observationally invisible."""
        resident = build_sim("coloring", seed=7, engine="batch-resident",
                             metrics="aggregate")
        resident.run_resident(steps=9)
        assert resident.engine._store.dirty
        oracle = self.oracle_after("coloring", 7, 9)
        # Deliberately disconnect the hook: reads now bypass decoding.
        resident.config.install_sync(None)
        stale = [resident.config.get(p, "cur")
                 for p in resident.network.processes]
        fresh = [oracle.config.get(p, "cur")
                 for p in oracle.network.processes]
        assert stale != fresh, "stale rows should be observable bare"
        # Reconnected, the same reads decode to the oracle's values.
        resident.config.install_sync(resident.engine.materialize_rows)
        healed = [resident.config.get(p, "cur")
                  for p in resident.network.processes]
        assert healed == fresh

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_metrics_full_tier_mid_run(self, protocol):
        """Raising the observation level to per-step records keeps the
        resident engine on the per-step path — and byte-identical."""
        scalar, scalar_sim = run_recorded(
            protocol, ("synchronous", {}), 11, "incremental", steps=25,
            metrics="full",
        )
        resident, resident_sim = run_recorded(
            protocol, ("synchronous", {}), 11, "batch-resident", steps=25,
            metrics="full",
        )
        assert resident_sim._fused_resident() is None
        assert scalar == resident
        assert (scalar_sim.metrics.summary()
                == resident_sim.metrics.summary())

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_corruption_scenario_is_byte_identical(self, protocol):
        """A transient fault at a fixed round rewrites state through
        the Configuration mid-run; the resident store must materialize
        before the corruption reads and re-mirror after it writes."""
        scenario = {"fraction": 0.4, "at_round": 3}
        traces = []
        sims = []
        for engine in ("incremental", "batch-resident"):
            trace, sim = run_recorded(
                protocol, ("synchronous", {}), 13, engine, steps=45,
                scenario=build_scenario("single-fault", scenario),
            )
            traces.append(trace)
            sims.append(sim)
        assert traces[0] == traces[1], protocol
        assert sims[0].config == sims[1].config
        assert sims[0].metrics.faults_injected >= 1
        assert (sims[0].metrics.faults_injected
                == sims[1].metrics.faults_injected)

    def test_copy_is_a_detached_materialized_snapshot(self):
        resident = build_sim("coloring", seed=3, engine="batch-resident",
                             metrics="aggregate")
        resident.run_resident(steps=5)
        snapshot = resident.config.copy()
        oracle = self.oracle_after("coloring", 3, 5)
        assert snapshot.as_dict() == oracle.config.as_dict()
        # the snapshot is detached: later fused steps don't leak into it
        resident.run_resident(steps=5)
        assert snapshot.as_dict() == oracle.config.as_dict()


# ----------------------------------------------------------------------
# Store-level dirty/epoch protocol
# ----------------------------------------------------------------------
class TestDirtyEpochProtocol:
    def fused_store(self, steps=5):
        sim = build_sim("coloring", seed=1, engine="batch-resident",
                        metrics="aggregate")
        sim.run_resident(steps=steps)
        return sim, sim.engine._store

    def test_generation_stamps_advance_per_write(self):
        sim, store = self.fused_store(steps=5)
        cur_slot = store.slot("cur")
        # 'cur' rotates as one whole-column write per fused step
        assert store.generation[cur_slot] >= 5
        gen = list(store.generation)
        sim.run_resident(steps=1)
        assert store.generation[cur_slot] == gen[cur_slot] + 1

    def test_pull_refuses_while_dirty(self):
        _sim, store = self.fused_store()
        assert store.dirty
        with pytest.raises(ModelError, match="materialize"):
            store.pull_all()
        with pytest.raises(ModelError, match="materialize"):
            store.pull([0])
        store.materialize()
        assert not store.dirty
        store.pull_all()  # clean store pulls freely again

    def test_write_col_requires_resident_mode(self):
        sim = build_sim("coloring", seed=1, engine="batch",
                        metrics="aggregate")
        sim.run_steps(3)
        store = sim.engine._store
        cur_slot = store.slot("cur")
        with pytest.raises(ModelError, match="resident"):
            store.write_col(cur_slot, store.col(cur_slot))

    def test_materialize_is_idempotent(self):
        _sim, store = self.fused_store()
        store.materialize()
        rows = [list(r) for r in store.rows]
        store.materialize()
        assert [list(r) for r in store.rows] == rows


# ----------------------------------------------------------------------
# Scenario churn: store rebuilds re-install the hook on the new config
# ----------------------------------------------------------------------
CHURN_PARAMS = {"period_rounds": 2, "fraction": 0.25, "min_n": 6}


class TestResidentChurnEquivalence:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_churn_stays_in_lockstep_with_scalar(self, protocol):
        for seed in (0, 7):
            sims = [
                build_sim(protocol, ("synchronous", {}), seed=seed,
                          engine=engine,
                          topology=("gnp", {"n": 10, "p": 0.35, "seed": 4}),
                          scenario=build_scenario("churn", CHURN_PARAMS))
                for engine in ("incremental", "batch-resident")
            ]
            step = 0
            while sims[0].round_tracker.completed_rounds < 7 and step < 400:
                enabled = [sim.enabled_processes() for sim in sims]
                assert enabled[0] == enabled[1], (protocol, seed, step)
                records = [sim.step() for sim in sims]
                assert records[0] == records[1], (protocol, seed, step)
                step += 1
            assert sims[0].config == sims[1].config
            applied = [
                [(a.step, a.description) for a in sim.scenario_runtime.applied]
                for sim in sims
            ]
            assert applied[0] and applied[0] == applied[1]


# ----------------------------------------------------------------------
# Eligibility ladder: ineligible runs refuse or degrade, never diverge
# ----------------------------------------------------------------------
class TestEligibility:
    def test_run_resident_requires_resident_engine(self):
        sim = build_sim("coloring", metrics="aggregate")
        with pytest.raises(ConvergenceError, match="batch-resident"):
            sim.run_resident(steps=1)

    def test_run_resident_refuses_full_tier(self):
        sim = build_sim("coloring", engine="batch-resident", metrics="full")
        with pytest.raises(ConvergenceError, match="metrics tier"):
            sim.run_resident(steps=1)

    def test_run_resident_refuses_exotic_daemons(self):
        sim = build_sim("coloring", ("central", {"enabled_only": True}),
                        engine="batch-resident", metrics="aggregate")
        with pytest.raises(ConvergenceError, match="synchronous"):
            sim.run_resident(steps=1)

    def test_scenario_runs_take_the_per_step_path(self):
        sim = build_sim("coloring", engine="batch-resident",
                        metrics="aggregate",
                        scenario=build_scenario("noop", {}))
        assert sim._fused_resident() is None
        with pytest.raises(ConvergenceError, match="scenario-free"):
            sim.run_resident(steps=1)

    def test_kernel_less_protocol_falls_back(self):
        from repro.core.actions import GuardedAction
        from repro.core.protocol import Protocol
        from repro.core.variables import BOOL, comm

        class OneShot(Protocol):
            name = "one-shot"

            def variables(self, network, p):
                return (comm("x", BOOL),)

            def actions(self):
                return (
                    GuardedAction(
                        "clear",
                        lambda ctx: ctx.get("x"),
                        lambda ctx: ctx.set("x", False),
                    ),
                )

            def is_legitimate(self, network, config):
                return all(
                    not config.get(p, "x") for p in network.processes
                )

        net = topology_registry.build("ring", n=6)
        sim = Simulator(OneShot(), net, seed=0, engine="batch-resident",
                        metrics="aggregate")
        assert isinstance(sim.engine, ResidentBatchEngine)
        assert not sim.engine.batch_active
        with pytest.raises(ConvergenceError):
            sim.run_resident(steps=1)
        report = sim.run_until_silent(max_rounds=50)
        assert report.stabilized

    def test_legacy_state_backend_falls_back(self):
        scalar, _ = run_recorded(
            "mis", ("synchronous", {}), 3, "incremental", state="legacy"
        )
        resident, resident_sim = run_recorded(
            "mis", ("synchronous", {}), 3, "batch-resident", state="legacy"
        )
        assert not resident_sim.engine.batch_active
        assert scalar == resident


# ----------------------------------------------------------------------
# NumPy-free backend
# ----------------------------------------------------------------------
class TestNoNumpy:
    @pytest.fixture()
    def no_numpy(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_python_backend_fused_runs_match(self, protocol, no_numpy):
        scalar = build_sim(protocol, seed=11, metrics="aggregate")
        scalar.run_steps(40)
        resident = build_sim(protocol, seed=11, engine="batch-resident",
                             metrics="aggregate")
        assert resident.engine.backend_name == "python"
        resident.run_steps(40)
        assert aggregate_state(scalar) == aggregate_state(resident), protocol

    def test_python_backend_traces_identical(self, no_numpy):
        scalar, _ = run_recorded(
            "coloring", ("synchronous", {}), 11, "incremental"
        )
        resident, resident_sim = run_recorded(
            "coloring", ("synchronous", {}), 11, "batch-resident"
        )
        assert resident_sim.engine.batch_active
        assert scalar == resident
