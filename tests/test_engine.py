"""Tests for the enabled-set engines (repro.core.engine).

The central contract: every engine — incremental dirty-set, full-scan
fallback, self-auditing debug — produces *step-for-step identical*
executions, because an engine only changes how the enabled set is
maintained, never what it is.  The property tests here drive random
(protocol, topology, scheduler, seed) combinations through paired
simulators and compare traces, configurations and metrics exactly.
"""

import random

import pytest

from repro.api import engine_registry
from repro.core import (
    CentralScheduler,
    ModelError,
    RandomSubsetScheduler,
    RoundRobinScheduler,
    Simulator,
    SynchronousScheduler,
    make_engine,
)
from repro.core.actions import GuardedAction, first_enabled
from repro.core.context import StepContext
from repro.core.engine import ENGINE_NAMES, CrossCheckEngine, IncrementalEngine, ScanEngine
from repro.core.protocol import Protocol
from repro.core.scheduler import BoundedFairScheduler, LocallyCentralScheduler
from repro.core.variables import BOOL, comm
from repro.faults import corrupt_processes
from repro.graphs import chain, grid, random_connected, ring, sparse_random
from repro.protocols import ColoringProtocol, MatchingProtocol, MISProtocol
from repro.graphs import greedy_coloring


#: Every registered engine — new engines (the columnar batch family,
#: future strategies) inherit the whole equivalence matrix by being
#: registered, with no test edits.
ALL_ENGINES = tuple(sorted(engine_registry.names()))


def brute_force_enabled(sim):
    """The reference enabled set: one fresh guard scan per process."""
    actions = sim.protocol.actions()
    out = []
    for p in sim.network.processes:
        ctx = StepContext(p, sim.network, sim.config, sim.specs_of, rng=None)
        if first_enabled(actions, ctx) is not None:
            out.append(p)
    return out


def build_protocol(name, network):
    if name == "coloring":
        return ColoringProtocol.for_network(network)
    colors = greedy_coloring(network)
    return (MISProtocol if name == "mis" else MatchingProtocol)(network, colors)


TOPOLOGIES = {
    "ring12": lambda: ring(12),
    "grid3x4": lambda: grid(3, 4),
    "gnp14": lambda: random_connected(14, 0.3, seed=5),
    "sparse16": lambda: sparse_random(16, avg_degree=3.0, seed=9),
}

SCHEDULERS = {
    "synchronous": lambda net: SynchronousScheduler(),
    "central": lambda net: CentralScheduler(),
    "random-subset": lambda net: RandomSubsetScheduler(0.4),
    "round-robin": lambda net: RoundRobinScheduler(),
    "bounded-fair": lambda net: BoundedFairScheduler(bound=9, burst=2),
    "locally-central": lambda net: LocallyCentralScheduler(net, 0.5),
    "enabled-central": lambda net: CentralScheduler(enabled_only=True),
    "enabled-synchronous": lambda net: SynchronousScheduler(enabled_only=True),
    "enabled-random-subset": lambda net: RandomSubsetScheduler(
        0.5, enabled_only=True
    ),
}


class TestTraceEquivalence:
    """Every registered engine replays the same computation."""

    @pytest.mark.parametrize("protocol", ["coloring", "mis", "matching"])
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_step_for_step_identical(self, protocol, scheduler):
        rng = random.Random(hash((protocol, scheduler)) & 0xFFFF)
        for _ in range(2):
            topo = rng.choice(sorted(TOPOLOGIES))
            seed = rng.randrange(10_000)
            traces, finals, metrics = [], [], []
            for engine in ALL_ENGINES:
                net = TOPOLOGIES[topo]()
                sim = Simulator(
                    build_protocol(protocol, net),
                    net,
                    scheduler=SCHEDULERS[scheduler](net),
                    seed=seed,
                    engine=engine,
                )
                traces.append([sim.step() for _ in range(80)])
                finals.append(sim.config)
                metrics.append(sim.metrics.summary())
            for i, engine in enumerate(ALL_ENGINES):
                label = f"{engine}/{protocol}/{topo}/{scheduler}/s{seed}"
                assert traces[i] == traces[0], label
                assert finals[i] == finals[0], label
                assert metrics[i] == metrics[0], label

    def test_full_scan_flag_forces_scan_engine(self):
        net = ring(6)
        sim = Simulator(ColoringProtocol.for_network(net), net, seed=0,
                        full_scan=True)
        assert isinstance(sim.engine, ScanEngine)

    def test_default_engine_is_incremental(self):
        net = ring(6)
        sim = Simulator(ColoringProtocol.for_network(net), net, seed=0)
        assert isinstance(sim.engine, IncrementalEngine)

    def test_unknown_engine_rejected(self):
        net = ring(6)
        with pytest.raises(ValueError, match="unknown engine"):
            Simulator(ColoringProtocol.for_network(net), net, engine="warp")


class TestEnabledSetMaintenance:
    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_matches_brute_force_along_random_runs(self, engine):
        for seed in (0, 3, 11):
            net = random_connected(12, 0.3, seed=seed)
            sim = Simulator(
                build_protocol("mis", net), net,
                scheduler=RandomSubsetScheduler(0.5), seed=seed,
                engine=engine,
            )
            for _ in range(40):
                sim.step()
                assert sim.enabled_processes() == brute_force_enabled(sim)

    def test_canonical_order(self):
        net = ring(9)
        sim = Simulator(ColoringProtocol.for_network(net), net, seed=2)
        sim.run_steps(5)
        enabled = sim.enabled_processes()
        order = {p: i for i, p in enumerate(net.processes)}
        assert enabled == sorted(enabled, key=order.__getitem__)

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_fault_injection_invalidates_engine(self, engine):
        net = grid(3, 3)
        sim = Simulator(build_protocol("matching", net), net, seed=4,
                        engine=engine)
        sim.run_steps(30)
        corrupt_processes(sim, list(net.processes)[:4], random.Random(1))
        assert sim.enabled_processes() == brute_force_enabled(sim)

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_manual_invalidate_all(self, engine):
        net = ring(8)
        sim = Simulator(build_protocol("mis", net), net, seed=1,
                        engine=engine)
        sim.run_steps(10)
        # Out-of-band write with an explicit whole-network invalidation.
        p = net.processes[0]
        from repro.predicates.mis import DOMINATED, DOMINATOR
        flipped = DOMINATED if sim.config.get(p, "S") == DOMINATOR else DOMINATOR
        sim.config.set(p, "S", flipped)
        sim.invalidate_enabled()
        assert sim.enabled_processes() == brute_force_enabled(sim)


class TestCrossCheckEngine:
    def test_clean_run_passes_audit(self):
        net = random_connected(10, 0.35, seed=2)
        sim = Simulator(build_protocol("mis", net), net,
                        scheduler=CentralScheduler(), seed=2, engine="debug")
        sim.run_steps(60)
        assert isinstance(sim.engine, CrossCheckEngine)
        assert sim.enabled_processes() == brute_force_enabled(sim)

    def test_unreported_mutation_is_caught(self):
        net = ring(8)
        proto = build_protocol("mis", net)
        sim = Simulator(proto, net, seed=0, engine="debug")
        sim.run_steps(5)
        sim.enabled_processes()  # settle the audit at the current γ
        from repro.predicates.mis import DOMINATED, DOMINATOR

        # Flip comm state behind the engine's back until the enabled set
        # diverges; the debug engine must refuse to serve stale data.
        with pytest.raises(ModelError, match="diverged"):
            for p in net.processes:
                current = sim.config.get(p, "S")
                sim.config.set(
                    p, "S",
                    DOMINATED if current == DOMINATOR else DOMINATOR,
                )
                sim.engine.note_step([], [])  # a no-op step, no invalidate
                sim.enabled_processes()
            pytest.skip("no divergence found (all flips status-neutral)")


class TestEnabledDrawingDaemons:
    @pytest.mark.parametrize("protocol", ["coloring", "mis", "matching"])
    def test_runs_to_silence_with_enabled_central(self, protocol):
        net = random_connected(12, 0.3, seed=6)
        sim = Simulator(
            build_protocol(protocol, net), net,
            scheduler=CentralScheduler(enabled_only=True), seed=6,
        )
        report = sim.run_until_silent(max_rounds=20_000)
        assert report.stabilized

    def test_maximal_daemon_activates_exactly_enabled(self):
        net = ring(10)
        sim = Simulator(
            build_protocol("mis", net), net,
            scheduler=SynchronousScheduler(enabled_only=True), seed=3,
        )
        for _ in range(20):
            expected = frozenset(brute_force_enabled(sim)) or frozenset(
                net.processes
            )
            record = sim.step()
            assert record.activated == expected

    def test_empty_enabled_pool_falls_back_to_noop_steps(self):
        class OneShot(Protocol):
            """Toy: each process clears its flag once, then nothing."""

            name = "one-shot"

            def variables(self, network, p):
                return (comm("x", BOOL),)

            def actions(self):
                return (
                    GuardedAction(
                        "clear",
                        lambda ctx: ctx.get("x"),
                        lambda ctx: ctx.set("x", False),
                    ),
                )

            def is_legitimate(self, network, config):
                return all(not config.get(p, "x") for p in network.processes)

        net = chain(5)
        sim = Simulator(
            OneShot(), net,
            scheduler=SynchronousScheduler(enabled_only=True), seed=0,
        )
        report = sim.run_until_silent(max_rounds=50)
        assert report.stabilized
        # Terminal configuration: the pool is empty, steps fall back to
        # all-process no-ops, and rounds keep closing.
        record = sim.step()
        assert record.activated == frozenset(net.processes)
        assert all(name is None for name in record.executed.values())
        assert sim.enabled_processes() == []


class TestStatefulSchedulerReuse:
    """Regression: engine simulators still reset reused schedulers."""

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_reused_round_robin_replays(self, engine):
        scheduler = RoundRobinScheduler()
        net = ring(6)
        results = []
        for _ in range(2):
            sim = Simulator(
                ColoringProtocol.for_network(net), net,
                scheduler=scheduler, seed=7, engine=engine,
            )
            results.append([sim.step() for _ in range(25)])
        assert results[0] == results[1]
        assert scheduler._next > 0

    def test_reuse_across_engines_is_equivalent(self):
        scheduler = RoundRobinScheduler(enabled_only=True)
        net = grid(3, 3)
        traces = []
        for engine in ALL_ENGINES:
            sim = Simulator(
                build_protocol("mis", net), net,
                scheduler=scheduler, seed=5, engine=engine,
            )
            traces.append([sim.step() for _ in range(40)])
        for i, engine in enumerate(ALL_ENGINES):
            assert traces[i] == traces[0], engine


class TestReadDeclarations:
    def test_default_reads_is_direct_neighborhood(self):
        net = grid(3, 3)
        proto = ColoringProtocol.for_network(net)
        for p in net.processes:
            assert sorted(map(repr, proto.reads(net, p))) == sorted(
                map(repr, net.neighbors(p))
            )

    def test_wider_read_radius_grows_the_ball(self):
        class TwoHop(ColoringProtocol):
            read_radius = 2

        net = chain(7)
        proto = TwoHop(palette_size=3)
        assert sorted(proto.reads(net, 3)) == [1, 2, 4, 5]
        assert sorted(proto.reads(net, 0)) == [1, 2]

    def test_incremental_respects_declared_radius(self):
        class TwoHop(ColoringProtocol):
            read_radius = 2

        net = ring(10)
        sim = Simulator(TwoHop.for_network(net), net,
                        scheduler=CentralScheduler(), seed=8, engine="debug")
        sim.run_steps(60)  # the audit raises if invalidation is too narrow
        assert sim.enabled_processes() == brute_force_enabled(sim)


class TestMakeEngine:
    def test_names_round_trip(self):
        for name in ENGINE_NAMES:
            assert make_engine(name).name == name

    def test_instance_passthrough(self):
        engine = ScanEngine()
        assert make_engine(engine) is engine

    def test_engine_instances_are_single_run(self):
        # Rebinding would leave the first simulator querying the second
        # run's state; a second bind must fail loudly instead.
        engine = IncrementalEngine()
        net = ring(6)
        Simulator(ColoringProtocol.for_network(net), net, engine=engine)
        with pytest.raises(ValueError, match="already bound"):
            Simulator(ColoringProtocol.for_network(net), net, engine=engine)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown engine"):
            make_engine("bogus")
