"""Unit tests for longest elementary path / L_max (Theorem 6 input)."""

import pytest

from repro.graphs import (
    caterpillar,
    chain,
    clique,
    grid,
    longest_elementary_path,
    mis_stability_lower_bound,
    random_tree,
    ring,
)


class TestExactCases:
    def test_chain(self):
        res = longest_elementary_path(chain(8))
        assert res.exact and res.length == 7

    def test_ring_hamiltonian(self):
        res = longest_elementary_path(ring(6))
        assert res.exact and res.length == 5

    def test_clique_hamiltonian(self):
        res = longest_elementary_path(clique(5))
        assert res.exact and res.length == 4

    def test_single_node(self):
        res = longest_elementary_path(chain(1))
        assert res.exact and res.length == 0

    def test_grid_2x2(self):
        res = longest_elementary_path(grid(2, 2))
        assert res.exact and res.length == 3

    def test_tree_uses_diameter(self):
        # Caterpillar: spine of 4 plus legs — longest path goes
        # leg-spine-leg: 1 + 3 + 1 = 5 edges.
        net = caterpillar(4, 2)
        res = longest_elementary_path(net)
        assert res.exact and res.length == 5

    def test_random_trees_match_bruteforce(self):
        for seed in range(5):
            net = random_tree(10, seed=seed)
            tree_res = longest_elementary_path(net)
            # Force the generic exact search for comparison.
            from repro.graphs.paths import _exact_longest_path

            brute = _exact_longest_path(net.subgraph_view(), budget=10**6)
            assert brute is not None
            assert tree_res.length == brute.length


class TestPathValidity:
    @pytest.mark.parametrize("maker", [lambda: ring(7), lambda: grid(3, 3)])
    def test_returned_path_is_elementary(self, maker):
        net = maker()
        res = longest_elementary_path(net)
        assert len(set(res.path)) == len(res.path)
        for a, b in zip(res.path, res.path[1:]):
            assert net.are_neighbors(a, b)
        assert len(res.path) - 1 == res.length


class TestHeuristicFallback:
    def test_heuristic_is_lower_bound(self):
        # Tiny budget forces the heuristic; its result must still be a
        # valid elementary path (hence a lower bound for L_max).
        net = grid(4, 4)
        # Budget below one DFS entry per start vertex guarantees the
        # exact search cannot complete.
        res = longest_elementary_path(net, exact_budget=5, heuristic_tries=50, seed=3)
        assert not res.exact
        assert len(set(res.path)) == len(res.path)
        for a, b in zip(res.path, res.path[1:]):
            assert net.are_neighbors(a, b)


class TestStabilityBound:
    def test_path_bound(self):
        bound, exact = mis_stability_lower_bound(chain(8))
        assert exact and bound == 4  # ⌊(7+1)/2⌋

    def test_ring_bound(self):
        bound, exact = mis_stability_lower_bound(ring(6))
        assert exact and bound == 3  # ⌊(5+1)/2⌋
