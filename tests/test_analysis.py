"""Tests for the bound calculators, space formulas and stability runner."""

import math

import pytest

from repro.analysis import (
    coloring_communication_bits,
    coloring_palette_size,
    coloring_space_bits,
    coloring_space_report,
    matching_round_bound,
    matching_stability_bound,
    max_dominators_on_longest_path,
    measure_stability,
    measured_space_bits,
    min_maximal_matching_size,
    mis_communication_bits,
    mis_round_bound,
    mis_stability_bound,
    traditional_coloring_communication_bits,
)
from repro.graphs import (
    chain,
    clique,
    figure11_graph,
    greedy_coloring,
    random_connected,
    ring,
    star,
)
from repro.protocols import ColoringProtocol, MISProtocol, MatchingProtocol


class TestBoundFormulas:
    def test_palette(self):
        assert coloring_palette_size(star(5)) == 6

    def test_mis_round_bound(self):
        net = clique(4)
        colors = greedy_coloring(net)  # 4 colors on a clique
        assert mis_round_bound(net, colors) == 3 * 4

    def test_matching_round_bound(self):
        net = chain(5)  # Δ=2, n=5
        assert matching_round_bound(net) == 3 * 5 + 2

    def test_min_maximal_matching_fig11(self):
        net, _ = figure11_graph()
        assert min_maximal_matching_size(net) == math.ceil(14 / 7)

    def test_matching_stability_bound(self):
        net, _ = figure11_graph()
        assert matching_stability_bound(net) == 4

    def test_mis_stability_bound_path(self):
        bound, exact = mis_stability_bound(chain(9))
        assert exact and bound == 4

    def test_max_dominators(self):
        assert max_dominators_on_longest_path(6) == 4  # ⌈7/2⌉
        assert max_dominators_on_longest_path(7) == 4


class TestSpaceFormulas:
    def test_paper_worked_example(self):
        """§3.2: COLORING reads log(Δ+1) bits/step; a traditional
        protocol reads Δ·log(Δ+1); space is 2log(Δ+1) + log(δ.p)."""
        delta = 7
        assert coloring_communication_bits(delta) == pytest.approx(3.0)
        assert traditional_coloring_communication_bits(delta) == pytest.approx(21.0)
        assert coloring_space_bits(delta, degree=4) == pytest.approx(3 + 3 + 2)

    def test_mis_bits(self):
        assert mis_communication_bits(4) == pytest.approx(1 + 2)

    def test_space_report_shape(self):
        net = star(3)
        report = coloring_space_report(net)
        assert set(report.per_process_bits) == set(net.processes)
        assert report.max_bits >= report.per_process_bits[1]

    def test_measured_matches_formula_for_coloring(self):
        """The formula and the domain-derived measurement must agree."""
        net = random_connected(10, 0.4, seed=1)
        proto = ColoringProtocol.for_network(net)
        measured = measured_space_bits(proto, net)
        delta = net.max_degree
        for p in net.processes:
            assert measured.per_process_bits[p] == pytest.approx(
                coloring_space_bits(delta, net.degree(p))
            )


class TestMeasuredKEfficiencyBits:
    def test_coloring_measured_bits_match_formula(self):
        from repro.core import Simulator

        net = clique(6)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=1)
        sim.run_until_silent(max_rounds=20_000)
        assert sim.metrics.max_bits_in_step == pytest.approx(
            coloring_communication_bits(net.max_degree)
        )


class TestStabilityRunner:
    def test_mis_measurement_respects_bound(self):
        net = chain(9)
        proto = MISProtocol(net, greedy_coloring(net))
        m = measure_stability(proto, net, seed=2, suffix_rounds=25)
        bound, exact = mis_stability_bound(net)
        assert exact
        assert m.x >= bound
        assert m.protocol == "MIS"

    def test_matching_measurement_respects_bound(self):
        net = ring(8)
        proto = MatchingProtocol(net, greedy_coloring(net))
        m = measure_stability(proto, net, seed=2, suffix_rounds=30)
        assert m.x >= matching_stability_bound(net)

    def test_k_parameter(self):
        net = chain(6)
        proto = MISProtocol(net, greedy_coloring(net))
        loose = measure_stability(proto, net, seed=1, k=2, suffix_rounds=25)
        tight = measure_stability(proto, net, seed=1, k=0, suffix_rounds=25)
        assert loose.x >= tight.x
