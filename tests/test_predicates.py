"""Unit tests for the legitimacy predicates."""

import pytest

from repro.core import Configuration
from repro.graphs import chain, clique, network_from_edges, ring, star
from repro.predicates import (
    coloring_predicate,
    colors_used,
    conflict_count,
    conflicting_edges,
    dominators,
    independence_violations,
    is_independent_set,
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
    is_married,
    matched_edges,
    matching_predicate,
    married_processes,
    maximality_violations,
    mis_predicate,
    pr_target,
)


def cfg(mapping):
    return Configuration(mapping)


class TestColoringPredicate:
    def test_proper(self):
        net = chain(3)
        assert coloring_predicate(net, cfg({0: {"C": 1}, 1: {"C": 2}, 2: {"C": 1}}))

    def test_conflict(self):
        net = chain(3)
        assert not coloring_predicate(net, cfg({0: {"C": 1}, 1: {"C": 1}, 2: {"C": 2}}))

    def test_conflicting_edges(self):
        net = ring(4)
        config = cfg({0: {"C": 1}, 1: {"C": 1}, 2: {"C": 1}, 3: {"C": 2}})
        edges = conflicting_edges(net, config)
        assert sorted(tuple(sorted(e)) for e in edges) == [(0, 1), (1, 2)]

    def test_conflict_count_counts_processes(self):
        net = ring(4)
        config = cfg({0: {"C": 1}, 1: {"C": 1}, 2: {"C": 1}, 3: {"C": 2}})
        assert conflict_count(net, config) == 3

    def test_colors_used(self):
        net = chain(3)
        assert colors_used(net, cfg({0: {"C": 5}, 1: {"C": 5}, 2: {"C": 2}})) == 2


class TestMISPredicate:
    def _config(self, states):
        return cfg({p: {"S": s} for p, s in states.items()})

    def test_valid_mis(self):
        net = chain(3)
        config = self._config({0: "dominated", 1: "Dominator", 2: "dominated"})
        assert mis_predicate(net, config)

    def test_independence_violation(self):
        net = chain(3)
        config = self._config({0: "Dominator", 1: "Dominator", 2: "dominated"})
        assert not mis_predicate(net, config)
        assert independence_violations(net, config) == [(0, 1)]

    def test_maximality_violation(self):
        net = chain(5)
        config = self._config(
            {0: "Dominator", 1: "dominated", 2: "dominated", 3: "dominated", 4: "Dominator"}
        )
        assert not mis_predicate(net, config)
        assert maximality_violations(net, config) == [2]

    def test_empty_set_not_maximal(self):
        net = chain(3)
        config = self._config({p: "dominated" for p in net.processes})
        assert not mis_predicate(net, config)

    def test_set_helpers(self):
        net = star(3)
        assert is_independent_set(net, {1, 2, 3})
        assert not is_independent_set(net, {0, 1})
        assert is_maximal_independent_set(net, {0})
        assert not is_maximal_independent_set(net, {1})

    def test_dominators_extraction(self):
        net = chain(2)
        config = self._config({0: "Dominator", 1: "dominated"})
        assert dominators(net, config) == {0}


class TestMatchingPredicate:
    def _pair_config(self, net):
        """0↔1 married on a 4-chain; 2, 3 free."""
        return cfg(
            {
                0: {"PR": net.port_to(0, 1), "M": True},
                1: {"PR": net.port_to(1, 0), "M": True},
                2: {"PR": 0, "M": False},
                3: {"PR": 0, "M": False},
            }
        )

    def test_pr_target(self):
        net = chain(4)
        config = self._pair_config(net)
        assert pr_target(net, config, 0) == 1
        assert pr_target(net, config, 2) is None

    def test_is_married_requires_mutuality(self):
        net = chain(4)
        config = self._pair_config(net)
        config.set(2, "PR", net.port_to(2, 3))  # 2 points at 3, 3 free
        assert is_married(net, config, 0)
        assert not is_married(net, config, 2)

    def test_matched_edges(self):
        net = chain(4)
        assert matched_edges(net, self._pair_config(net)) == [(0, 1)]

    def test_not_maximal_with_free_edge(self):
        net = chain(4)
        config = self._pair_config(net)
        # Edge {2,3} has two free endpoints: the matching is not maximal.
        assert not matching_predicate(net, config)

    def test_maximal_matching_accepted(self):
        net = chain(4)
        config = cfg(
            {
                0: {"PR": net.port_to(0, 1), "M": True},
                1: {"PR": net.port_to(1, 0), "M": True},
                2: {"PR": net.port_to(2, 3), "M": True},
                3: {"PR": net.port_to(3, 2), "M": True},
            }
        )
        assert matching_predicate(net, config)

    def test_is_matching_rejects_shared_endpoint(self):
        net = star(3)
        assert not is_matching(net, [(0, 1), (0, 2)])

    def test_is_maximal_matching_on_star(self):
        net = star(3)
        assert is_maximal_matching(net, [(0, 1)])
        assert not is_maximal_matching(net, [])

    def test_married_processes(self):
        net = chain(4)
        assert married_processes(net, self._pair_config(net)) == {0, 1}

    def test_middle_matching_is_maximal_on_path4(self):
        net = chain(4)
        config = cfg(
            {
                0: {"PR": 0, "M": False},
                1: {"PR": net.port_to(1, 2), "M": True},
                2: {"PR": net.port_to(2, 1), "M": True},
                3: {"PR": 0, "M": False},
            }
        )
        assert matching_predicate(net, config)
