"""Smoke tests: every example script must run clean end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates what it did
