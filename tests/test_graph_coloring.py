"""Unit tests for the proper-coloring substrate (graphs.coloring)."""

import random

import pytest

from repro.core.exceptions import TopologyError
from repro.graphs import (
    assert_local_identifiers,
    chain,
    clique,
    color_count,
    dsatur_coloring,
    greedy_coloring,
    is_proper_coloring,
    random_connected,
    random_proper_coloring,
    ring,
    sequential_coloring,
    welsh_powell_coloring,
)

ALGOS = [
    greedy_coloring,
    dsatur_coloring,
    welsh_powell_coloring,
    sequential_coloring,
]


@pytest.mark.parametrize("algo", ALGOS)
class TestAlgorithms:
    def test_proper_on_random(self, algo):
        net = random_connected(20, 0.25, seed=5)
        assert is_proper_coloring(net, algo(net))

    def test_proper_on_clique(self, algo):
        net = clique(5)
        colors = algo(net)
        assert is_proper_coloring(net, colors)
        assert color_count(colors) == 5

    def test_at_most_delta_plus_one(self, algo):
        for seed in range(4):
            net = random_connected(15, 0.3, seed=seed)
            assert color_count(algo(net)) <= net.max_degree + 1

    def test_one_based(self, algo):
        net = ring(6)
        assert min(algo(net).values()) >= 1


class TestHelpers:
    def test_is_proper_detects_conflict(self):
        net = chain(3)
        assert not is_proper_coloring(net, {0: 1, 1: 1, 2: 2})

    def test_is_proper_requires_total(self):
        net = chain(3)
        assert not is_proper_coloring(net, {0: 1, 1: 2})

    def test_assert_local_identifiers(self):
        net = chain(3)
        with pytest.raises(TopologyError):
            assert_local_identifiers(net, {0: 1, 1: 1, 2: 1})

    def test_color_count(self):
        assert color_count({0: 1, 1: 5, 2: 1}) == 2

    def test_random_proper(self):
        net = random_connected(15, 0.3, seed=9)
        colors = random_proper_coloring(net, random.Random(1))
        assert is_proper_coloring(net, colors)

    def test_sequential_respects_order(self):
        net = chain(3)
        colors = sequential_coloring(net, order=[2, 1, 0])
        assert colors[2] == 1  # first in order gets color 1
