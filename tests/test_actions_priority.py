"""Tests for guarded-action priority semantics (paper §2)."""

import pytest

from repro.core import Configuration, GuardedAction, Simulator, first_enabled
from repro.core.actions import Actions
from repro.core.context import StepContext
from repro.core.protocol import Protocol
from repro.core.variables import IntRange, comm, internal
from repro.graphs import chain


class TwoRuleProtocol(Protocol):
    """Both guards true everywhere: priority must pick the first."""

    name = "two-rule"
    randomized = False

    def variables(self, network, p):
        return (comm("X", IntRange(0, 9)),)

    def actions(self):
        return (
            GuardedAction("first", lambda ctx: True,
                          lambda ctx: ctx.set("X", 1)),
            GuardedAction("second", lambda ctx: True,
                          lambda ctx: ctx.set("X", 2)),
        )

    def is_legitimate(self, network, config):
        return all(config.get(p, "X") == 1 for p in network.processes)


class TestPriority:
    def test_first_enabled_respects_order(self):
        net = chain(2)
        proto = TwoRuleProtocol()
        config = Configuration({0: {"X": 0}, 1: {"X": 0}})
        ctx = StepContext(0, net, config, proto.specs_of(net))
        action = first_enabled(proto.actions(), ctx)
        assert action is not None and action.name == "first"

    def test_simulator_always_fires_highest_priority(self):
        net = chain(2)
        proto = TwoRuleProtocol()
        config = Configuration({0: {"X": 0}, 1: {"X": 0}})
        sim = Simulator(proto, net, seed=0, config=config)
        record = sim.step()
        assert set(record.executed.values()) == {"first"}
        assert sim.config.get(0, "X") == 1

    def test_lower_priority_fires_when_higher_disabled(self):
        net = chain(2)

        class Gated(TwoRuleProtocol):
            def actions(self):
                return (
                    GuardedAction("first", lambda ctx: ctx.get("X") == 7,
                                  lambda ctx: ctx.set("X", 1)),
                    GuardedAction("second", lambda ctx: True,
                                  lambda ctx: ctx.set("X", 2)),
                )

        proto = Gated()
        config = Configuration({0: {"X": 0}, 1: {"X": 0}})
        sim = Simulator(proto, net, seed=0, config=config)
        record = sim.step()
        assert set(record.executed.values()) == {"second"}

    def test_disabled_everywhere_reports_none(self):
        net = chain(2)

        class AllDisabled(TwoRuleProtocol):
            def actions(self):
                return (
                    GuardedAction("never", lambda ctx: False,
                                  lambda ctx: ctx.set("X", 1)),
                )

        proto = AllDisabled()
        config = Configuration({0: {"X": 0}, 1: {"X": 0}})
        sim = Simulator(proto, net, seed=0, config=config)
        record = sim.step()
        assert set(record.executed.values()) == {None}
        assert sim.config.get(0, "X") == 0

    def test_mis_priority_yield_beats_claim(self):
        """MIS's 'yield' must outrank 'patrol' for a Dominator pointing
        at a smaller-colored Dominator — the priority the Lemma 4
        induction needs."""
        from repro.protocols import MISProtocol

        net = chain(2)
        proto = MISProtocol(net, {0: 1, 1: 2})
        config = Configuration(
            {
                0: {"S": "Dominator", "C": 1, "cur": 1},
                1: {"S": "Dominator", "C": 2, "cur": 1},
            }
        )
        ctx = StepContext(1, net, config, proto.specs_of(net))
        action = first_enabled(proto.actions(), ctx)
        assert action is not None and action.name == "yield"

    def test_matching_realign_is_top_priority(self):
        from repro.protocols import MatchingProtocol

        net = chain(3)
        proto = MatchingProtocol(net, {0: 1, 1: 2, 2: 1})
        # PR points outside {0, cur}: realign must fire regardless of
        # everything else.
        config = Configuration(
            {
                0: {"M": False, "PR": 1, "C": 1, "cur": 1},
                1: {"M": False, "PR": 2, "C": 2, "cur": 1},
                2: {"M": False, "PR": 0, "C": 1, "cur": 1},
            }
        )
        ctx = StepContext(1, net, config, proto.specs_of(net))
        action = first_enabled(proto.actions(), ctx)
        assert action is not None and action.name == "realign"


class TestDegenerateNetworks:
    """n = 2 — the smallest network every protocol must handle."""

    def test_coloring_on_two_nodes(self):
        from repro.protocols import ColoringProtocol

        net = chain(2)
        sim = Simulator(ColoringProtocol.for_network(net), net, seed=1)
        assert sim.run_until_silent(max_rounds=5000).stabilized

    def test_mis_on_two_nodes(self):
        from repro.predicates import dominators
        from repro.protocols import MISProtocol

        net = chain(2)
        sim = Simulator(MISProtocol(net, {0: 1, 1: 2}), net, seed=1)
        sim.run_until_silent(max_rounds=5000)
        assert len(dominators(net, sim.config)) == 1

    def test_matching_on_two_nodes(self):
        from repro.predicates import matched_edges
        from repro.protocols import MatchingProtocol

        net = chain(2)
        sim = Simulator(MatchingProtocol(net, {0: 1, 1: 2}), net, seed=1)
        sim.run_until_silent(max_rounds=5000)
        assert matched_edges(net, sim.config) == [(0, 1)]

    def test_single_node_rejected_by_protocols(self):
        from repro.core.exceptions import TopologyError
        from repro.graphs import chain as chain_
        from repro.protocols import ColoringProtocol

        net = chain_(1)
        proto = ColoringProtocol(palette_size=2)
        with pytest.raises(TopologyError):
            proto.variables(net, 0)
