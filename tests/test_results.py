"""Tests for the results warehouse: store, sinks, stats, report, diff.

Covers the acceptance contracts of the subsystem:

* ``repro report`` on a stored campaign reproduces the exact table
  text of rendering the in-memory outcome directly;
* a 50k-row JSONL sink ingests and aggregates through SQLite in
  bounded memory (streamed batches, group-at-a-time query folding);
* jsonl and sqlite sinks are interchangeable: same results, same
  resume behavior, same duplicate-key semantics;
* cross-run diff and BENCH payload gates flag regressions in the
  right direction only.
"""

import json
import math
import sqlite3
import statistics
import tracemalloc
import types

import pytest

from repro.api import Campaign, ExperimentSpec, iter_campaign_results, \
    load_campaign_results
from repro.api.campaign import _read_sink
from repro.cli import main
from repro.experiments import TrialResult
from repro.experiments.tables import _fmt, format_table
from repro.results import (
    Aggregate,
    JsonlSink,
    ResultStore,
    SqliteSink,
    campaign_summary_table,
    diff_bench,
    diff_runs,
    flatten_bench,
    gate,
    make_sink,
    missing_groups,
    query_table,
    summarize,
)

GRID = dict(
    protocols=["coloring", "mis"],
    topologies=[("ring", {"n": 8})],
    schedulers=["synchronous"],
    seeds=range(3),
)


@pytest.fixture
def campaign():
    return Campaign.grid(**GRID)


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
class TestStats:
    def test_summarize_matches_statistics_module(self):
        values = [3.0, 5.0, 7.0, 11.0]
        agg = summarize(values)
        assert agg.count == 4
        assert agg.mean == pytest.approx(statistics.fmean(values))
        assert agg.median == pytest.approx(statistics.median(values))
        assert agg.stdev == pytest.approx(statistics.stdev(values))
        assert (agg.minimum, agg.maximum) == (3.0, 11.0)
        expected_half = 1.959963984540054 * agg.stdev / math.sqrt(4)
        assert agg.ci95 == pytest.approx(expected_half, rel=1e-9)
        assert agg.ci95_low == pytest.approx(agg.mean - agg.ci95)
        assert agg.ci95_high == pytest.approx(agg.mean + agg.ci95)

    def test_single_value_has_degenerate_interval(self):
        agg = summarize([42])
        assert agg.count == 1 and agg.stdev == 0.0 and agg.ci95 == 0.0
        assert agg.mean == agg.median == 42.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_to_dict_round_trips_fields(self):
        d = summarize([1.0, 2.0]).to_dict()
        assert set(d) == {"count", "mean", "median", "stdev", "min", "max",
                          "ci95"}


# ----------------------------------------------------------------------
# Table formatting (the _fmt satellite)
# ----------------------------------------------------------------------
class TestTableFormatting:
    def test_tiny_floats_go_scientific_not_zero(self):
        assert _fmt(0.0004) == "4.00e-04"
        assert _fmt(-0.0004) == "-4.00e-04"
        assert "0.00" != _fmt(0.0004)

    def test_zero_and_normal_floats_stay_fixed_point(self):
        assert _fmt(0.0) == "0.00"
        assert _fmt(2.5) == "2.50"
        assert _fmt(0.01) == "0.01"

    def test_precision_parameter(self):
        assert _fmt(0.0004, precision=4) == "0.0004"
        assert _fmt(3.14159, precision=4) == "3.1416"

    def test_bool_before_float(self):
        assert _fmt(True) == "yes" and _fmt(False) == "no"

    def test_format_table_markdown_mode(self):
        out = format_table(["a", "b"], [[1, 0.0004]], title="T",
                           markdown=True)
        lines = out.splitlines()
        assert lines[0] == "**T**"
        assert lines[2].startswith("| a | b |")
        assert "4.00e-04" in lines[4]

    def test_format_table_markdown_without_title(self):
        out = format_table(["a"], [[1]], markdown=True)
        assert out.splitlines()[0] == "| a |"


# ----------------------------------------------------------------------
# Streaming sink readers (the iterator satellite)
# ----------------------------------------------------------------------
class TestStreamingReaders:
    def test_iter_campaign_results_is_lazy(self, tmp_path, campaign):
        sink = tmp_path / "r.jsonl"
        campaign.run(jsonl_path=sink)
        it = iter_campaign_results(sink)
        assert isinstance(it, types.GeneratorType)
        spec, result = next(it)
        assert isinstance(spec, ExperimentSpec)
        assert isinstance(result, TrialResult)
        assert list(it)  # the rest still streams out

    def test_iter_matches_load(self, tmp_path, campaign):
        sink = tmp_path / "r.jsonl"
        campaign.run(jsonl_path=sink)
        assert list(iter_campaign_results(sink)) == \
            load_campaign_results(sink)

    def test_truncated_trailing_line_skipped_everywhere(self, tmp_path,
                                                        campaign):
        sink = tmp_path / "r.jsonl"
        campaign.run(jsonl_path=sink)
        lines = sink.read_text().splitlines()
        sink.write_text("\n".join(lines[:-1]) + "\n"
                        + lines[-1][: len(lines[-1]) // 2])
        assert len(load_campaign_results(sink)) == len(campaign) - 1
        assert len(_read_sink(sink)) == len(campaign) - 1
        # Resume re-runs exactly the truncated trial.
        outcome = campaign.run(jsonl_path=sink)
        assert outcome.skipped == len(campaign) - 1
        assert outcome.executed == 1

    def test_duplicate_keys_last_writer_wins(self, tmp_path, campaign):
        sink = tmp_path / "r.jsonl"
        campaign.run(jsonl_path=sink)
        # A second append session re-writes the first key with doctored
        # rounds (simulating two writers racing on one file).
        first = json.loads(sink.read_text().splitlines()[0])
        doctored = dict(first)
        doctored["result"] = dict(first["result"], rounds=999)
        with open(sink, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(doctored, sort_keys=True) + "\n")
        rows = _read_sink(sink)
        assert rows[first["key"]]["rounds"] == 999
        # The duplicate still counts once for resume.
        outcome = campaign.run(jsonl_path=sink)
        assert outcome.skipped == len(campaign)


# ----------------------------------------------------------------------
# ResultStore
# ----------------------------------------------------------------------
class TestResultStore:
    def test_wal_mode_and_schema(self, tmp_path):
        store = ResultStore(tmp_path / "w.sqlite")
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        tables = {row[0] for row in store._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table'")}
        assert {"runs", "trials", "bench"} <= tables
        store.close()

    def test_run_metadata_recorded(self, tmp_path):
        with ResultStore(tmp_path / "w.sqlite") as store:
            run_id = store.begin_run(label="meta-test")
            store.finish_run(run_id, 1.25)
            (info,) = store.runs()
            assert info.run_id == run_id
            assert info.label == "meta-test"
            assert info.wall_time_s == pytest.approx(1.25)
            assert info.created_at  # ISO stamp
            assert info.python and info.host  # provenance captured
            assert info.trials == 0

    def test_write_and_iter_results_round_trip(self, tmp_path, campaign):
        outcome = campaign.run()
        with ResultStore(tmp_path / "w.sqlite") as store:
            run_id = store.begin_run(run_id="rt")
            for spec, result in outcome:
                store.write(run_id, spec.key(), spec.to_dict(),
                            result.to_dict())
            pairs = list(store.iter_results("rt"))
        assert pairs == list(outcome)

    def test_ingest_jsonl_round_trip(self, tmp_path, campaign):
        sink = tmp_path / "r.jsonl"
        outcome = campaign.run(jsonl_path=sink)
        with ResultStore(tmp_path / "w.sqlite") as store:
            run_id, count = store.ingest_jsonl(sink)
            assert count == len(campaign)
            assert store.trial_count(run_id) == len(campaign)
            assert [r for _s, r in store.iter_results(run_id)] == \
                outcome.results
            assert store.completed_keys(run_id) == \
                {s.key() for s in campaign}

    def test_ingest_tolerates_truncated_trailing_line(self, tmp_path,
                                                      campaign):
        sink = tmp_path / "r.jsonl"
        campaign.run(jsonl_path=sink)
        text = sink.read_text()
        sink.write_text(text + '{"key": "half-written...')
        with ResultStore(tmp_path / "w.sqlite") as store:
            _run, count = store.ingest_jsonl(sink)
            assert count == len(campaign)

    def test_duplicate_key_ingest_is_last_writer_wins(self, tmp_path,
                                                      campaign):
        sink = tmp_path / "r.jsonl"
        campaign.run(jsonl_path=sink)
        first = json.loads(sink.read_text().splitlines()[0])
        doctored = dict(first)
        doctored["result"] = dict(first["result"], rounds=999)
        with open(sink, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(doctored, sort_keys=True) + "\n")
        with ResultStore(tmp_path / "w.sqlite") as store:
            run_id, count = store.ingest_jsonl(sink)
            # write_many counts every applied write; the table holds
            # one row per key.
            assert count == len(campaign) + 1
            assert store.trial_count(run_id) == len(campaign)
            winner = dict(store.completed(run_id))[first["key"]]
            assert winner.rounds == 999

    def test_latest_run_and_resolution(self, tmp_path):
        with ResultStore(tmp_path / "w.sqlite") as store:
            assert store.latest_run_id() is None
            with pytest.raises(ValueError, match="no runs"):
                store.trial_count()
            store.begin_run(run_id="a")
            store.begin_run(run_id="b")
            assert store.latest_run_id() == "b"

    def test_latest_run_is_insertion_ordered_not_id_ordered(self, tmp_path):
        # Back-to-back runs share a 1-second created_at stamp; the
        # latest must be the last *inserted*, not the max id string.
        with ResultStore(tmp_path / "w.sqlite") as store:
            store.begin_run(run_id="zzz-first")
            store.begin_run(run_id="aaa-second")
            assert store.latest_run_id() == "aaa-second"
            assert [r.run_id for r in store.runs()] == \
                ["zzz-first", "aaa-second"]

    def test_missing_store_rejected_without_create(self, tmp_path):
        missing = tmp_path / "nope.sqlite"
        with pytest.raises(ValueError, match="does not exist"):
            ResultStore(missing, create=False)
        assert not missing.exists()

    def test_unknown_diff_run_ids_raise(self, tmp_path, campaign):
        path = tmp_path / "w.sqlite"
        campaign.run(out=path, sink="sqlite")
        with ResultStore(path) as store:
            with pytest.raises(ValueError, match="unknown run"):
                diff_runs(store, "campaign", "typo")
            with pytest.raises(ValueError, match="unknown run"):
                missing_groups(store, "typo", "campaign")

    def test_empty_metrics_rejected(self, tmp_path, campaign):
        path = tmp_path / "w.sqlite"
        campaign.run(out=path, sink="sqlite")
        with ResultStore(path) as store:
            with pytest.raises(ValueError, match="at least one metric"):
                store.query(metrics=())

    def test_explicit_unknown_run_id_raises(self, tmp_path, campaign):
        path = tmp_path / "w.sqlite"
        campaign.run(out=path, sink="sqlite")
        with ResultStore(path) as store:
            with pytest.raises(ValueError, match="unknown run id"):
                list(store.iter_results("typo"))
            with pytest.raises(ValueError, match="unknown run id"):
                store.query(metrics=("rounds",), run_id="typo")
            with pytest.raises(ValueError, match="unknown run id"):
                store.trial_count("typo")

    def test_non_sqlite_file_is_a_clean_error(self, tmp_path):
        not_a_db = tmp_path / "results.jsonl"
        not_a_db.write_text('{"key": "k", "spec": {}, "result": {}}\n'
                            * 100)
        with pytest.raises(ValueError, match="not a results store"):
            ResultStore(not_a_db)

    def test_concurrent_connections_can_read_mid_write(self, tmp_path,
                                                       campaign):
        # WAL: a second connection reads committed rows while the first
        # stays open for writing.
        path = tmp_path / "w.sqlite"
        writer = ResultStore(path)
        run_id = writer.begin_run(run_id="war")
        outcome = campaign.run()
        pairs = list(outcome)
        spec, result = pairs[0]
        writer.write(run_id, spec.key(), spec.to_dict(), result.to_dict())
        with ResultStore(path) as reader:
            assert reader.trial_count("war") == 1
        writer.close()


class TestQuery:
    @pytest.fixture
    def store(self, tmp_path, campaign):
        sink = tmp_path / "r.jsonl"
        self.outcome = campaign.run(jsonl_path=sink)
        store = ResultStore(tmp_path / "w.sqlite")
        self.run_id, _ = store.ingest_jsonl(sink, run_id="q")
        yield store
        store.close()

    def test_group_aggregates_match_manual_fold(self, store, campaign):
        groups = store.query(metrics=("rounds", "total_bits"),
                             group_by=("protocol",), run_id="q")
        by_proto = {}
        for spec, result in self.outcome:
            by_proto.setdefault(spec.protocol, []).append(result)
        assert {g.group["protocol"] for g in groups} == set(by_proto)
        for g in groups:
            expected = [r.rounds for r in by_proto[g.group["protocol"]]]
            assert g.count == len(expected)
            assert g.aggregates["rounds"].mean == \
                pytest.approx(statistics.fmean(expected))
            assert g.aggregates["rounds"].median == \
                pytest.approx(statistics.median(expected))

    def test_where_filters(self, store):
        groups = store.query(metrics=("rounds",), group_by=("protocol",),
                             where={"protocol": "mis"}, run_id="q")
        assert [g.group["protocol"] for g in groups] == ["mis"]
        none = store.query(metrics=("rounds",), group_by=("protocol",),
                           where={"seed": 99}, run_id="q")
        assert none == []

    def test_where_in_list(self, store):
        groups = store.query(metrics=("rounds",), group_by=("seed",),
                             where={"seed": [0, 2]}, run_id="q")
        assert [g.group["seed"] for g in groups] == [0, 2]

    def test_empty_group_by_is_one_global_group(self, store, campaign):
        (g,) = store.query(metrics=("rounds",), group_by=(), run_id="q")
        assert g.count == len(campaign)

    def test_unknown_columns_rejected(self, store):
        with pytest.raises(ValueError, match="cannot group by"):
            store.query(group_by=("color",), run_id="q")
        with pytest.raises(ValueError, match="unknown metric"):
            store.query(metrics=("speed",), run_id="q")
        with pytest.raises(ValueError, match="unknown where column"):
            store.query(where={"DROP TABLE": 1}, run_id="q")

    def test_query_table_renders_groups(self, store):
        groups = store.query(metrics=("rounds",), group_by=("protocol",),
                             run_id="q")
        out = query_table(groups, ("protocol",), ("rounds",), title="Q")
        assert out.splitlines()[0] == "Q"
        assert "rounds mean" in out and "coloring" in out


class TestLargeIngestStreams:
    @staticmethod
    def _write_big_sink(path, n_rows):
        """Synthesize an n_rows sink without running n_rows trials."""
        base_spec = ExperimentSpec(protocol="coloring", topology="ring",
                                   topology_params={"n": 8})
        spec_dict = base_spec.to_dict()
        result_dict = TrialResult(
            protocol="COLORING", scheduler="synchronous", n=8, m=8,
            delta=2, seed=0, steps=5, rounds=5, k_efficiency=1,
            max_bits_per_step=2.0, total_bits=60.0, legitimate=True,
            silent=True,
        ).to_dict()
        with open(path, "w", encoding="utf-8") as fh:
            for i in range(n_rows):
                spec_dict["seed"] = i
                result_dict["seed"] = i
                result_dict["rounds"] = i % 17
                fh.write(json.dumps({
                    "key": f"coloring/ring/synchronous/s{i}/{i:012x}",
                    "spec": spec_dict,
                    "result": result_dict,
                }) + "\n")

    def test_50k_rows_ingest_and_aggregate(self, tmp_path):
        """The acceptance scale: 50k rows in, exact aggregates out."""
        n_rows = 50_000
        sink = tmp_path / "big.jsonl"
        self._write_big_sink(sink, n_rows)
        assert sink.stat().st_size > 10 * 1024 * 1024  # a real file

        with ResultStore(tmp_path / "big.sqlite") as store:
            _run, count = store.ingest_jsonl(sink, run_id="big")
            groups = store.query(metrics=("rounds",),
                                 group_by=("protocol",), run_id="big")
        assert count == n_rows
        (g,) = groups
        assert g.count == n_rows
        assert g.aggregates["rounds"].mean == pytest.approx(
            statistics.fmean(i % 17 for i in range(n_rows)))

    def test_ingest_and_query_memory_is_bounded(self, tmp_path):
        """Peak traced memory stays below the sink's own size.

        Ingest holds one 1000-row batch; the query folds one group's
        metric column.  Materializing every parsed record at once
        would cost several times the file size (dict overhead), so
        ``peak < file_bytes`` separates streaming from slurping.
        Traced at 10k rows — tracemalloc multiplies runtime, and the
        per-row bound is scale-independent; the 50k acceptance run
        above exercises the full volume untraced.
        """
        n_rows = 10_000
        sink = tmp_path / "big.jsonl"
        self._write_big_sink(sink, n_rows)
        file_bytes = sink.stat().st_size

        store = ResultStore(tmp_path / "big.sqlite")
        tracemalloc.start()
        _run, count = store.ingest_jsonl(sink, run_id="big")
        groups = store.query(metrics=("rounds",), group_by=("protocol",),
                             run_id="big")
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        store.close()

        assert count == n_rows and groups[0].count == n_rows
        assert peak < file_bytes, (
            f"ingest+query peaked at {peak/1e6:.1f}MB for a "
            f"{file_bytes/1e6:.1f}MB sink — not streaming")


# ----------------------------------------------------------------------
# Sinks: jsonl ≡ sqlite
# ----------------------------------------------------------------------
class TestSinkParity:
    def test_results_identical_across_sinks(self, tmp_path, campaign):
        jsonl = campaign.run(out=tmp_path / "r.jsonl", sink="jsonl")
        sqlite_ = campaign.run(out=tmp_path / "r.sqlite", sink="sqlite")
        memory = campaign.run()
        assert jsonl.results == sqlite_.results == memory.results

    def test_resume_parity(self, tmp_path, campaign):
        half = Campaign(campaign.specs[: len(campaign) // 2])
        for kind, path in (("jsonl", tmp_path / "r.jsonl"),
                           ("sqlite", tmp_path / "r.sqlite")):
            half.run(out=path, sink=kind)
            resumed = campaign.run(out=path, sink=kind)
            assert resumed.skipped == len(half), kind
            assert resumed.executed == len(campaign) - len(half), kind
            assert resumed.results == campaign.run().results, kind

    def test_no_resume_starts_sqlite_run_over(self, tmp_path, campaign):
        path = tmp_path / "r.sqlite"
        campaign.run(out=path, sink="sqlite")
        outcome = campaign.run(out=path, sink="sqlite", resume=False)
        assert outcome.executed == len(campaign)
        with ResultStore(path) as store:
            assert store.trial_count("campaign") == len(campaign)

    def test_sqlite_sink_reruns_overwrite_by_key(self, tmp_path, campaign):
        path = tmp_path / "r.sqlite"
        campaign.run(out=path, sink="sqlite")
        campaign.run(out=path, sink="sqlite", resume=False)
        with ResultStore(path) as store:
            # Two append sessions, one row per key — INSERT OR REPLACE.
            assert store.trial_count("campaign") == len(campaign)

    def test_sink_instance_passthrough(self, tmp_path, campaign):
        sink = SqliteSink(tmp_path / "r.sqlite", run_id="custom")
        campaign.run(sink=sink)
        with ResultStore(tmp_path / "r.sqlite") as store:
            assert store.trial_count("custom") == len(campaign)

    def test_make_sink_resolves_kinds(self, tmp_path):
        assert isinstance(make_sink("jsonl", tmp_path / "a.jsonl"),
                          JsonlSink)
        assert isinstance(make_sink("sqlite", tmp_path / "a.sqlite"),
                          SqliteSink)
        with pytest.raises(ValueError, match="unknown sink kind"):
            make_sink("parquet", tmp_path / "a.parquet")

    def test_sqlite_sink_records_wall_time(self, tmp_path, campaign):
        campaign.run(out=tmp_path / "r.sqlite", sink="sqlite")
        with ResultStore(tmp_path / "r.sqlite") as store:
            (info,) = store.runs()
            assert info.wall_time_s is not None and info.wall_time_s > 0


# ----------------------------------------------------------------------
# Report: stored run reproduces the live table (acceptance)
# ----------------------------------------------------------------------
class TestReport:
    def test_stored_report_equals_in_memory_table(self, tmp_path, campaign,
                                                  capsys):
        path = tmp_path / "r.sqlite"
        outcome = campaign.run(out=path, sink="sqlite")
        expected = campaign_summary_table(outcome)
        assert main(["report", "--store", str(path)]) == 0
        printed = capsys.readouterr().out
        assert expected in printed
        # And the jsonl route renders the same text.
        jsonl = tmp_path / "r.jsonl"
        campaign.run(out=jsonl, sink="jsonl")
        assert main(["report", "--jsonl", str(jsonl)]) == 0
        assert expected in capsys.readouterr().out

    def test_campaign_cli_and_report_cli_print_same_table(self, tmp_path,
                                                          capsys):
        path = tmp_path / "r.sqlite"
        assert main(["campaign", "--protocols", "coloring",
                     "--topologies", "ring:n=8", "--seeds", "2",
                     "--out", str(path), "--sink", "sqlite",
                     "--quiet"]) == 0
        campaign_out = capsys.readouterr().out
        table = campaign_out[campaign_out.index("campaign summary"):]
        assert main(["report", "--store", str(path)]) == 0
        assert capsys.readouterr().out.strip() == table.strip()

    def test_report_list_runs(self, tmp_path, campaign, capsys):
        path = tmp_path / "r.sqlite"
        campaign.run(out=path, sink="sqlite")
        assert main(["report", "--store", str(path), "--list-runs"]) == 0
        out = capsys.readouterr().out
        assert "campaign" in out and "trials" in out

    def test_report_without_source_fails(self):
        with pytest.raises(SystemExit, match="--store"):
            main(["report"])


# ----------------------------------------------------------------------
# Ingest + query through the CLI
# ----------------------------------------------------------------------
class TestWarehouseCli:
    def test_ingest_then_query(self, tmp_path, campaign, capsys):
        jsonl = tmp_path / "r.jsonl"
        store = tmp_path / "w.sqlite"
        campaign.run(jsonl_path=jsonl)
        assert main(["ingest", str(jsonl), "--store", str(store),
                     "--run", "r1"]) == 0
        assert f"ingested {len(campaign)} trials" in capsys.readouterr().out
        assert main(["query", "--store", str(store), "--run", "r1",
                     "--group-by", "protocol",
                     "--metrics", "rounds,total_bits"]) == 0
        out = capsys.readouterr().out
        assert "rounds mean" in out and "coloring" in out and "mis" in out

    def test_query_json_mode(self, tmp_path, campaign, capsys):
        store = tmp_path / "w.sqlite"
        campaign.run(out=store, sink="sqlite")
        assert main(["query", "--store", str(store), "--group-by",
                     "protocol", "--metrics", "rounds", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {g["group"]["protocol"] for g in payload} == \
            {"coloring", "mis"}
        assert all("ci95" in g["metrics"]["rounds"] for g in payload)

    def test_query_where_filter(self, tmp_path, campaign, capsys):
        store = tmp_path / "w.sqlite"
        campaign.run(out=store, sink="sqlite")
        assert main(["query", "--store", str(store), "--group-by",
                     "protocol", "--metrics", "rounds",
                     "--where", "protocol=mis"]) == 0
        out = capsys.readouterr().out
        assert "mis" in out and "coloring" not in out

    def test_bad_where_is_a_clean_error(self, tmp_path, campaign):
        store = tmp_path / "w.sqlite"
        campaign.run(out=store, sink="sqlite")
        with pytest.raises(SystemExit, match="bad (--)?where"):
            main(["query", "--store", str(store), "--where", "protocol"])

    def test_compare_runs_detects_doctored_regression(self, tmp_path,
                                                      campaign, capsys):
        store_path = tmp_path / "w.sqlite"
        campaign.run(out=store_path, sink="sqlite")
        with ResultStore(store_path) as store:
            store.begin_run(run_id="worse")
            for spec, result in campaign.run():
                doctored = result.to_dict()
                doctored["rounds"] = doctored["rounds"] * 10 + 50
                store.write("worse", spec.key(), spec.to_dict(), doctored)
        assert main(["compare", "--store", str(store_path),
                     "--runs", "campaign", "worse",
                     "--metrics", "rounds"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        # Identical runs pass the gate.
        assert main(["compare", "--store", str(store_path),
                     "--runs", "campaign", "campaign",
                     "--metrics", "rounds"]) == 0

    def test_compare_bench_files(self, tmp_path, capsys):
        a = {"full": {"n": 100, "budget_s": 1.0,
                      "hot_loop": {"baseline": 10.0, "flat_aggregate": 40.0,
                                   "speedup_aggregate": 4.0}}}
        b = json.loads(json.dumps(a))
        b["full"]["hot_loop"]["flat_aggregate"] = 10.0
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        pa.write_text(json.dumps(a))
        pb.write_text(json.dumps(b))
        assert main(["compare", "--bench", str(pa), str(pb),
                     "--mode", "full", "--threshold", "0.25"]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        assert main(["compare", "--bench", str(pa), str(pa),
                     "--mode", "full"]) == 0

    def test_compare_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["compare"])

    def test_typoed_run_id_fails_the_gate_loudly(self, tmp_path, campaign):
        store = tmp_path / "w.sqlite"
        campaign.run(out=store, sink="sqlite")
        with pytest.raises(SystemExit, match="unknown run"):
            main(["compare", "--store", str(store),
                  "--runs", "campaing", "campaign"])

    def test_read_commands_do_not_create_stores(self, tmp_path):
        missing = tmp_path / "typo.sqlite"
        for argv in (["report", "--store", str(missing)],
                     ["query", "--store", str(missing)],
                     ["compare", "--store", str(missing),
                      "--runs", "a", "b"]):
            with pytest.raises(SystemExit, match="does not exist"):
                main(argv)
            assert not missing.exists()

    def test_empty_metrics_is_a_clean_error(self, tmp_path, campaign):
        store = tmp_path / "w.sqlite"
        campaign.run(out=store, sink="sqlite")
        with pytest.raises(SystemExit, match="at least one metric"):
            main(["query", "--store", str(store), "--metrics", ""])

    def test_report_jsonl_missing_file_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read sink"):
            main(["report", "--jsonl", str(tmp_path / "missing.jsonl")])

    def test_report_and_query_reject_typoed_run_id(self, tmp_path,
                                                   campaign):
        store = tmp_path / "w.sqlite"
        campaign.run(out=store, sink="sqlite")
        with pytest.raises(SystemExit, match="unknown run id"):
            main(["report", "--store", str(store), "--run", "typo"])
        with pytest.raises(SystemExit, match="unknown run id"):
            main(["query", "--store", str(store), "--run", "typo"])

    def test_store_pointed_at_jsonl_is_a_clean_error(self, tmp_path,
                                                     campaign):
        jsonl = tmp_path / "r.jsonl"
        campaign.run(jsonl_path=jsonl)
        with pytest.raises(SystemExit, match="not a results store"):
            main(["report", "--store", str(jsonl)])

    def test_bench_threshold_defaults_looser_than_runs(self, tmp_path,
                                                       capsys):
        # A 20% throughput drop: inside the 25% bench default, outside
        # an (incorrectly shared) 10% one.
        a = {"full": {"hot_loop": {"flat_aggregate": 100.0}}}
        b = {"full": {"hot_loop": {"flat_aggregate": 80.0}}}
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        pa.write_text(json.dumps(a))
        pb.write_text(json.dumps(b))
        assert main(["compare", "--bench", str(pa), str(pb),
                     "--mode", "full"]) == 0
        capsys.readouterr()

    def test_compare_with_nothing_comparable_fails(self, tmp_path, capsys):
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        pa.write_text(json.dumps({"full": {"x": 1.0}}))
        pb.write_text(json.dumps({"full": {"y": 1.0}}))
        assert main(["compare", "--bench", str(pa), str(pb),
                     "--mode", "full"]) == 1
        assert "no comparable cells" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Diff semantics
# ----------------------------------------------------------------------
class TestDiff:
    def _store_with_two_runs(self, tmp_path, campaign, scale):
        path = tmp_path / "w.sqlite"
        outcome = campaign.run(out=path, sink="sqlite")
        store = ResultStore(path)
        store.begin_run(run_id="b")
        for spec, result in outcome:
            doctored = result.to_dict()
            doctored["rounds"] = max(1, round(doctored["rounds"] * scale))
            doctored["availability"] = 0.5
            store.write("b", spec.key(), spec.to_dict(), doctored)
        return store

    def test_direction_aware_regression(self, tmp_path, campaign):
        store = self._store_with_two_runs(tmp_path, campaign, scale=3.0)
        rows = diff_runs(store, "campaign", "b",
                         metrics=("rounds", "availability"),
                         threshold=0.10)
        by_metric = {}
        for row in rows:
            by_metric.setdefault(row.metric, []).append(row)
        # rounds grew 3x -> regression; availability fell -> regression.
        assert any(r.regressed for r in by_metric["rounds"])
        assert all(r.regressed for r in by_metric["availability"])
        assert not gate(rows)
        store.close()

    def test_improvement_is_not_regression(self, tmp_path, campaign):
        store = self._store_with_two_runs(tmp_path, campaign, scale=0.3)
        rows = diff_runs(store, "campaign", "b", metrics=("rounds",),
                         threshold=0.10)
        assert all(not r.regressed for r in rows)
        assert gate(rows)
        store.close()

    def test_missing_groups_reported_not_gated(self, tmp_path, campaign):
        path = tmp_path / "w.sqlite"
        campaign.run(out=path, sink="sqlite")
        with ResultStore(path) as store:
            store.begin_run(run_id="partial")
            for spec, result in campaign.run():
                if spec.protocol != "mis":
                    store.write("partial", spec.key(), spec.to_dict(),
                                result.to_dict())
            rows = diff_runs(store, "campaign", "partial",
                             metrics=("rounds",))
            assert {r.group for r in rows} == {"coloring/ring/synchronous"}
            only_a, only_b = missing_groups(store, "campaign", "partial")
            assert only_a == ["mis/ring/synchronous"] and only_b == []

    def test_flatten_bench_grid_keys_by_identity(self):
        payload = {
            "grid": [
                {"topology": "ring", "protocol": "mis",
                 "engine": "incremental", "metrics": "full",
                 "steps_per_sec": 123.0},
            ],
            "hot_loop": {"baseline": 10.0},
            "n": 10_000, "budget_s": 1.5,
        }
        flat = flatten_bench(payload)
        assert flat == {
            "grid[ring/mis/incremental/full].steps_per_sec": 123.0,
            "hot_loop.baseline": 10.0,
        }

    def test_diff_bench_ignores_one_sided_leaves(self):
        rows = diff_bench({"x": 1.0, "only_a": 2.0},
                          {"x": 1.0, "only_b": 3.0})
        assert [r.group for r in rows] == ["x"]
        assert gate(rows)

    def test_bench_trajectory_round_trips(self, tmp_path):
        with ResultStore(tmp_path / "w.sqlite") as store:
            store.record_bench("BENCH_3", "tiny", {"hot_loop": {"x": 1.0}})
            store.record_bench("BENCH_3", "tiny", {"hot_loop": {"x": 2.0}})
            traj = store.bench_trajectory("BENCH_3", "tiny")
            assert [t["hot_loop"]["x"] for t in traj] == [1.0, 2.0]
            first, last = traj[0], traj[-1]
            rows = diff_bench(first, last, threshold=0.25)
            assert gate(rows)  # throughput doubled: an improvement


# ----------------------------------------------------------------------
# Retention: repro prune (latest-of-label guarded)
# ----------------------------------------------------------------------
class TestPrune:
    def _store_with_runs(self, tmp_path, campaign):
        path = tmp_path / "w.sqlite"
        for run_id in ("old", "mid", "new"):
            campaign.run(out=path, sink="sqlite", run_id=run_id)
        return path

    def test_latest_of_label_is_protected(self, tmp_path, campaign):
        path = self._store_with_runs(tmp_path, campaign)
        with ResultStore(path) as store:
            # All three runs share label None; "new" is its latest.
            with pytest.raises(ValueError, match="latest run of a label"):
                store.prune(["new"])
            dropped = store.prune(["old", "mid"])
            assert dropped == {"old": len(campaign), "mid": len(campaign)}
            assert [r.run_id for r in store.runs()] == ["new"]

    def test_force_overrides_protection(self, tmp_path, campaign):
        path = self._store_with_runs(tmp_path, campaign)
        with ResultStore(path) as store:
            store.prune(["new"], force=True)
            assert {r.run_id for r in store.runs()} == {"old", "mid"}

    def test_unknown_run_is_loud(self, tmp_path, campaign):
        path = self._store_with_runs(tmp_path, campaign)
        with ResultStore(path) as store:
            with pytest.raises(ValueError, match="ghost"):
                store.prune(["ghost"])

    def test_prune_reclaims_file_space(self, tmp_path, campaign):
        path = self._store_with_runs(tmp_path, campaign)
        before = path.stat().st_size
        with ResultStore(path) as store:
            store.prune(["old", "mid"], vacuum=True)
        assert path.stat().st_size <= before

    def test_cli_prune_by_id_age_and_dry_run(self, tmp_path, campaign,
                                             capsys):
        path = self._store_with_runs(tmp_path, campaign)
        rc = main(["prune", "--store", str(path), "--dry-run",
                   "--runs", "old"])
        assert rc == 0
        assert "would prune 'old'" in capsys.readouterr().out
        with ResultStore(path) as store:  # dry run touched nothing
            assert len(store.runs()) == 3
        rc = main(["prune", "--store", str(path), "--runs", "old", "mid"])
        assert rc == 0
        assert "2 runs" in capsys.readouterr().out
        # Every run is younger than 1 day -> age selection is empty.
        rc = main(["prune", "--store", str(path), "--older-than", "1"])
        assert rc == 0
        assert "nothing to prune" in capsys.readouterr().out

    def test_cli_prune_blocks_latest_without_force(self, tmp_path,
                                                   campaign):
        path = self._store_with_runs(tmp_path, campaign)
        with pytest.raises(SystemExit, match="latest run of a label"):
            main(["prune", "--store", str(path), "--runs", "new"])
        assert main(["prune", "--store", str(path), "--runs", "new",
                     "--force"]) == 0


# ----------------------------------------------------------------------
# Canned paper tables: repro report --recipe
# ----------------------------------------------------------------------
class TestReportRecipes:
    def test_registry_names(self):
        from repro.results import REPORT_RECIPES
        assert {"paper-overhead", "paper-stabilization",
                "paper-recovery"} <= set(REPORT_RECIPES)

    def test_paper_overhead_table_shape(self, tmp_path, campaign):
        from repro.results import recipe_table
        path = tmp_path / "w.sqlite"
        campaign.run(out=path, sink="sqlite")
        with ResultStore(path, create=False) as store:
            table = recipe_table(store, "paper-overhead")
        header = table.splitlines()[1]
        for column in ("protocol", "topology",
                       "max_bits_per_step (mean ± 95%)"):
            assert column in header
        # One row per protocol x topology cell of the grid.
        assert "coloring" in table and "mis" in table

    def test_unknown_recipe_lists_known(self, tmp_path, campaign):
        from repro.results import recipe_table
        path = tmp_path / "w.sqlite"
        campaign.run(out=path, sink="sqlite")
        with ResultStore(path, create=False) as store:
            with pytest.raises(ValueError, match="paper-overhead"):
                recipe_table(store, "nope")

    def test_register_recipe_collision_refused(self):
        from repro.results import ReportRecipe, register_recipe
        with pytest.raises(ValueError, match="already registered"):
            register_recipe(ReportRecipe(
                name="paper-overhead", title="dup",
                group_by=("protocol",), metrics=("rounds",)))

    def test_cli_recipe_and_list(self, tmp_path, campaign, capsys):
        path = tmp_path / "w.sqlite"
        campaign.run(out=path, sink="sqlite")
        rc = main(["report", "--store", str(path),
                   "--recipe", "paper-overhead", "--markdown"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("**") and "| protocol |" in out
        rc = main(["report", "--list-recipes"])
        assert rc == 0
        assert "paper-overhead" in capsys.readouterr().out
        with pytest.raises(SystemExit, match="paper-stabilization"):
            main(["report", "--store", str(path), "--recipe", "nope"])


# ----------------------------------------------------------------------
# Store-to-store ingest and the claim surface
# ----------------------------------------------------------------------
class TestIngestStore:
    def test_ingest_store_round_trip(self, tmp_path, campaign):
        src = tmp_path / "src.sqlite"
        campaign.run(out=src, sink="sqlite", run_id="a")
        with ResultStore(tmp_path / "dst.sqlite") as dst:
            run_id, count = dst.ingest_store(src, src_run_id="a",
                                             run_id="merged")
            assert (run_id, count) == ("merged", len(campaign))
            src_rows = None
        with ResultStore(src, create=False) as s:
            src_rows = {k: r for k, _spec, r in s.raw_trials("a")}
        with ResultStore(tmp_path / "dst.sqlite", create=False) as dst:
            dst_rows = {k: r for k, _spec, r in dst.raw_trials("merged")}
        assert dst_rows == src_rows

    def test_cli_ingest_autodetects_mixed_sources(self, tmp_path,
                                                  campaign, capsys):
        jsonl = tmp_path / "trials.jsonl"
        half_a = Campaign(campaign.specs[:3])
        half_b = Campaign(campaign.specs[3:])
        half_a.run(out=jsonl)  # jsonl sink
        sqlite_src = tmp_path / "half.sqlite"
        half_b.run(out=sqlite_src, sink="sqlite", run_id="b")
        store = tmp_path / "merged.sqlite"
        rc = main(["ingest", str(jsonl), str(sqlite_src),
                   "--store", str(store), "--run", "all"])
        assert rc == 0
        assert capsys.readouterr().out.count("ingested") == 2
        with ResultStore(store, create=False) as merged:
            assert merged.trial_count("all") == len(campaign)

    def test_pending_keys_orders_and_filters(self, tmp_path, campaign):
        path = tmp_path / "w.sqlite"
        with ResultStore(path) as store:
            store.begin_run(run_id="r")
            keys = [s.key() for s in campaign.specs]
            assert store.pending_keys("r", keys) == keys
            spec = campaign.specs[2]
            store.write("r", spec.key(), spec.to_dict(),
                        spec.run().to_dict())
            pending = store.pending_keys("r", keys)
            assert pending == [k for k in keys if k != spec.key()]


# ----------------------------------------------------------------------
# Store-backed bench gate: compare --bench-store
# ----------------------------------------------------------------------
class TestBenchStoreGate:
    def _record(self, path, value):
        with ResultStore(path) as store:
            store.record_bench("BENCH_3", "tiny",
                               {"hot_loop": {"x": value}})

    def test_single_emission_passes_as_no_baseline(self, tmp_path,
                                                   capsys):
        path = tmp_path / "bench.sqlite"
        self._record(path, 100.0)
        rc = main(["compare", "--bench-store", str(path),
                   "--mode", "tiny"])
        assert rc == 0
        assert "no baseline yet" in capsys.readouterr().out

    def test_gates_newest_against_previous(self, tmp_path, capsys):
        path = tmp_path / "bench.sqlite"
        self._record(path, 100.0)
        self._record(path, 95.0)  # within the 25% default
        assert main(["compare", "--bench-store", str(path),
                     "--mode", "tiny"]) == 0
        capsys.readouterr()
        self._record(path, 10.0)  # collapse -> regression
        assert main(["compare", "--bench-store", str(path),
                     "--mode", "tiny"]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_gate_compares_last_two_only(self, tmp_path):
        # The old regression dropping out of the window must not keep
        # failing the gate forever.
        path = tmp_path / "bench.sqlite"
        for value in (100.0, 10.0, 10.5):
            self._record(path, value)
        assert main(["compare", "--bench-store", str(path),
                     "--mode", "tiny"]) == 0

    def test_bench_engine_store_flag_records(self, tmp_path):
        import subprocess, sys, os
        env = os.environ.copy()
        src_root = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        bench = os.path.join(os.path.dirname(src_root),
                             "benchmarks", "bench_engine.py")
        path = tmp_path / "bench.sqlite"
        proc = subprocess.run(
            [sys.executable, bench, "--tiny", "--budget", "0.02",
             "--no-json", "--store", str(path)],
            env=env, cwd=tmp_path, capture_output=True, timeout=300)
        assert proc.returncode == 0, proc.stdout.decode()
        with ResultStore(path, create=False) as store:
            assert len(store.bench_trajectory("BENCH_3", "tiny")) == 1
            assert len(store.bench_trajectory("BENCH_4", "tiny")) == 1
