"""Unit tests for port-numbered networks."""

import random

import networkx as nx
import pytest

from repro.core.exceptions import TopologyError
from repro.graphs import (
    Network,
    chain,
    network_from_edges,
    relabel_ports_randomly,
    ring,
)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(TopologyError):
            Network(nx.Graph())

    def test_rejects_disconnected(self):
        g = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(TopologyError):
            Network(g)

    def test_rejects_self_loop(self):
        g = nx.Graph([(0, 1)])
        g.add_edge(1, 1)
        with pytest.raises(TopologyError):
            Network(g)

    def test_single_node_allowed(self):
        g = nx.Graph()
        g.add_node(0)
        net = Network(g)
        assert net.n == 1 and net.m == 0 and net.diameter == 0

    def test_from_edges(self):
        net = network_from_edges([(0, 1), (1, 2)])
        assert net.n == 3 and net.m == 2


class TestPaperNotation:
    def test_counts(self):
        net = ring(6)
        assert net.n == 6 and net.m == 6

    def test_degree(self):
        net = chain(4)
        assert net.degree(0) == 1
        assert net.degree(1) == 2

    def test_max_degree(self):
        net = chain(5)
        assert net.max_degree == 2

    def test_diameter(self):
        assert chain(5).diameter == 4
        assert ring(6).diameter == 3

    def test_neighbors_in_port_order(self):
        net = network_from_edges([(0, 1), (0, 2)], ports={0: [2, 1]})
        assert net.neighbors(0) == (2, 1)


class TestPorts:
    def test_neighbor_at_is_one_based(self):
        net = network_from_edges([(0, 1), (0, 2)], ports={0: [1, 2]})
        assert net.neighbor_at(0, 1) == 1
        assert net.neighbor_at(0, 2) == 2

    def test_neighbor_at_out_of_range(self):
        net = chain(3)
        with pytest.raises(TopologyError):
            net.neighbor_at(0, 2)
        with pytest.raises(TopologyError):
            net.neighbor_at(0, 0)

    def test_port_to_inverts_neighbor_at(self):
        net = ring(5)
        for p in net.processes:
            for port in range(1, net.degree(p) + 1):
                q = net.neighbor_at(p, port)
                assert net.port_to(p, q) == port

    def test_port_to_non_neighbor(self):
        net = chain(4)
        with pytest.raises(TopologyError):
            net.port_to(0, 3)

    def test_with_ports_rejects_bad_list(self):
        net = chain(3)
        with pytest.raises(TopologyError):
            net.with_ports({1: [0, 0]})

    def test_with_ports_overrides(self):
        net = chain(3)
        net2 = net.with_ports({1: [2, 0]})
        assert net2.neighbor_at(1, 1) == 2
        # original untouched
        assert net.neighbor_at(1, 1) in (0, 2)

    def test_random_relabel_preserves_structure(self):
        net = ring(7)
        net2 = relabel_ports_randomly(net, random.Random(3))
        assert net2.n == net.n and net2.m == net.m
        for p in net2.processes:
            assert sorted(net2.neighbors(p)) == sorted(net.neighbors(p))


class TestQueries:
    def test_are_neighbors(self):
        net = chain(4)
        assert net.are_neighbors(0, 1)
        assert not net.are_neighbors(0, 2)

    def test_contains_and_len(self):
        net = chain(4)
        assert 0 in net and 9 not in net
        assert len(net) == 4

    def test_nx_graph_is_copy(self):
        net = chain(3)
        g = net.nx_graph
        g.add_edge(0, 2)
        assert not net.are_neighbors(0, 2)
