"""Tests for protocol COLORING (Figure 7, Theorem 3, Lemmas 1–2)."""

import pytest

from repro.core import Configuration, Simulator, SynchronousScheduler
from repro.graphs import chain, clique, grid, random_connected, ring, star
from repro.predicates import coloring_predicate, conflict_count
from repro.protocols import ColoringProtocol


class TestStructure:
    def test_palette_is_delta_plus_one(self):
        net = star(5)
        proto = ColoringProtocol.for_network(net)
        assert len(proto.palette) == net.max_degree + 1

    def test_variable_declarations(self):
        net = chain(3)
        proto = ColoringProtocol.for_network(net)
        specs = {s.name: s for s in proto.variables(net, 1)}
        assert specs["C"].kind == "comm"
        assert specs["cur"].kind == "internal"
        assert len(specs["cur"].domain) == net.degree(1)

    def test_two_actions_priority_order(self):
        proto = ColoringProtocol(palette_size=3)
        names = [a.name for a in proto.actions()]
        assert names == ["recolor", "advance"]

    def test_rejects_tiny_palette(self):
        with pytest.raises(ValueError):
            ColoringProtocol(palette_size=1)

    def test_color_of_output_function(self):
        net = chain(2)
        proto = ColoringProtocol(palette_size=3)
        config = Configuration({0: {"C": 2, "cur": 1}, 1: {"C": 3, "cur": 1}})
        assert proto.color_of(config, 0) == 2


class TestStabilization:
    """Theorem 3: stabilizes with probability 1 in anonymous networks."""

    @pytest.mark.parametrize(
        "maker",
        [
            lambda: chain(8),
            lambda: ring(9),
            lambda: star(6),
            lambda: clique(5),
            lambda: grid(3, 4),
            lambda: random_connected(16, 0.3, seed=2),
        ],
        ids=["chain8", "ring9", "star6", "clique5", "grid3x4", "gnp16"],
    )
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_stabilizes_on_family(self, maker, seed):
        net = maker()
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=seed)
        report = sim.run_until_silent(max_rounds=20_000)
        assert report.stabilized

    def test_stabilizes_under_every_scheduler(self, any_scheduler):
        net = random_connected(12, 0.3, seed=5)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, scheduler=any_scheduler, seed=3)
        report = sim.run_until_silent(max_rounds=50_000)
        assert report.stabilized

    def test_clique_uses_all_colors(self):
        """A Δ-clique needs the full Δ+1 palette (§5.1's minimality)."""
        net = clique(5)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=8)
        sim.run_until_silent(max_rounds=20_000)
        colors = {sim.config.get(p, "C") for p in net.processes}
        assert len(colors) == 5

    def test_bigger_palette_also_works(self):
        net = ring(8)
        proto = ColoringProtocol.for_network(net, extra_colors=3)
        sim = Simulator(proto, net, seed=8)
        assert sim.run_until_silent(max_rounds=20_000).stabilized


class TestClosure:
    """Lemma 1: the coloring predicate is closed."""

    @pytest.mark.parametrize("seed", range(5))
    def test_predicate_never_breaks_once_true(self, seed):
        net = random_connected(10, 0.35, seed=seed)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=seed)
        sim.run_until_legitimate(max_rounds=20_000)
        for _ in range(60):
            sim.step()
            assert coloring_predicate(net, sim.config)


class TestConflictPotential:
    """Lemma 2's potential argument: conflicts reach 0 and stay there."""

    def test_conflicts_reach_zero(self):
        net = random_connected(12, 0.3, seed=9)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=9)
        sim.run_until_silent(max_rounds=20_000)
        assert conflict_count(net, sim.config) == 0

    def test_all_same_color_worst_case(self):
        """The canonical transient fault: everyone shares one color."""
        net = ring(8)
        proto = ColoringProtocol.for_network(net)
        config = Configuration(
            {p: {"C": 1, "cur": 1} for p in net.processes}
        )
        sim = Simulator(proto, net, seed=11, config=config)
        report = sim.run_until_silent(max_rounds=20_000)
        assert report.stabilized


class TestEfficiency:
    """1-efficiency (Definition 4): at most one neighbor read per step."""

    def test_one_efficient_during_convergence(self, any_scheduler):
        net = random_connected(14, 0.3, seed=1)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, scheduler=any_scheduler, seed=13)
        sim.run_until_silent(max_rounds=50_000)
        assert sim.metrics.observed_k_efficiency() == 1

    def test_one_efficient_after_silence(self):
        net = ring(8)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=2)
        sim.run_until_silent(max_rounds=20_000)
        sim.metrics.max_reads_in_step = 0
        sim.run_rounds(20)
        assert sim.metrics.observed_k_efficiency() == 1

    def test_scans_all_neighbors_eventually(self):
        """COLORING is 1-efficient but NOT ♦-1-stable: the round-robin
        pointer visits every neighbor forever (why Theorem 1 is not
        contradicted)."""
        net = ring(8)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=2)
        sim.run_until_silent(max_rounds=20_000)
        suffix = sim.measure_suffix_stability(extra_rounds=10)
        assert all(len(ports) == net.degree(p) for p, ports in suffix.items())
