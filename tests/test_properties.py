"""Property-based tests (hypothesis) on core invariants.

These probe the model and protocols over randomly generated topologies,
port numberings, initial configurations and schedules — the adversarial
quantifiers of the paper's definitions.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BatchEngine, Configuration, Simulator, is_silent
from repro.core.actions import first_enabled
from repro.core.context import StepContext
from repro.core.rounds import RoundTracker
from repro.core.scheduler import SynchronousScheduler
from repro.graphs import (
    greedy_coloring,
    is_proper_coloring,
    random_connected,
    relabel_ports_randomly,
    sequential_coloring,
)
from repro.predicates import (
    coloring_predicate,
    conflict_count,
    is_maximal_independent_set,
    is_maximal_matching,
    dominators,
    matched_edges,
    married_processes,
)
from repro.protocols import ColoringProtocol, MISProtocol, MatchingProtocol

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _network(draw):
    n = draw(st.integers(min_value=4, max_value=14))
    p = draw(st.floats(min_value=0.2, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    net = random_connected(n, p, seed=seed)
    if draw(st.booleans()):
        net = relabel_ports_randomly(net, random.Random(seed + 1))
    return net


networks = st.composite(_network)()


class TestGraphSubstrateProperties:
    @given(networks)
    @SLOW
    def test_greedy_coloring_is_always_proper(self, net):
        assert is_proper_coloring(net, greedy_coloring(net))

    @given(networks, st.integers(min_value=0, max_value=1000))
    @SLOW
    def test_sequential_coloring_proper_for_any_order(self, net, seed):
        order = list(net.processes)
        random.Random(seed).shuffle(order)
        colors = sequential_coloring(net, order)
        assert is_proper_coloring(net, colors)
        assert max(colors.values()) <= net.max_degree + 1

    @given(networks)
    @SLOW
    def test_port_maps_are_bijective(self, net):
        for p in net.processes:
            seen = {net.neighbor_at(p, port) for port in range(1, net.degree(p) + 1)}
            assert seen == set(net.neighbors(p))


class TestRoundProperties:
    @given(
        st.lists(
            st.sets(st.integers(min_value=0, max_value=5), min_size=1),
            min_size=1,
            max_size=60,
        )
    )
    @SLOW
    def test_round_count_monotone_and_bounded(self, schedule):
        processes = list(range(6))
        tracker = RoundTracker(processes)
        prev = 0
        for activated in schedule:
            tracker.record_step(activated & set(processes) or {0})
            assert tracker.completed_rounds >= prev
            prev = tracker.completed_rounds
        # A round needs at least one step; can't exceed step count.
        assert tracker.completed_rounds <= len(schedule)


class TestColoringProperties:
    @given(networks, st.integers(min_value=0, max_value=10_000))
    @SLOW
    def test_stabilizes_and_stays_1_efficient(self, net, seed):
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=seed)
        report = sim.run_until_silent(max_rounds=50_000)
        assert report.stabilized
        assert sim.metrics.observed_k_efficiency() <= 1

    @given(networks, st.integers(min_value=0, max_value=10_000))
    @SLOW
    def test_closure_of_coloring_predicate(self, net, seed):
        """Lemma 1 as a property: once proper, forever proper."""
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=seed)
        sim.run_until_legitimate(max_rounds=50_000)
        for _ in range(30):
            sim.step()
            assert coloring_predicate(net, sim.config)

    @given(networks, st.integers(min_value=0, max_value=10_000))
    @SLOW
    def test_silence_iff_no_conflicts(self, net, seed):
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=seed)
        sim.run_until_silent(max_rounds=50_000)
        assert conflict_count(net, sim.config) == 0
        assert is_silent(proto, net, sim.config)


class TestMISProperties:
    @given(networks, st.integers(min_value=0, max_value=10_000))
    @SLOW
    def test_stabilizes_to_valid_mis(self, net, seed):
        proto = MISProtocol(net, greedy_coloring(net))
        sim = Simulator(proto, net, seed=seed)
        report = sim.run_until_silent(max_rounds=50_000)
        assert report.stabilized
        assert is_maximal_independent_set(net, dominators(net, sim.config))

    @given(networks, st.integers(min_value=0, max_value=10_000))
    @SLOW
    def test_round_bound_lemma4(self, net, seed):
        from repro.analysis import mis_round_bound

        colors = greedy_coloring(net)
        proto = MISProtocol(net, colors)
        sim = Simulator(proto, net, seed=seed)
        report = sim.run_until_silent(max_rounds=50_000)
        assert report.rounds <= mis_round_bound(net, colors)


class TestMatchingProperties:
    @given(networks, st.integers(min_value=0, max_value=10_000))
    @SLOW
    def test_stabilizes_to_valid_maximal_matching(self, net, seed):
        proto = MatchingProtocol(net, greedy_coloring(net))
        sim = Simulator(proto, net, seed=seed)
        report = sim.run_until_silent(max_rounds=100_000)
        assert report.stabilized
        assert is_maximal_matching(net, matched_edges(net, sim.config))

    @given(networks, st.integers(min_value=0, max_value=10_000))
    @SLOW
    def test_married_set_monotone_after_round_one(self, net, seed):
        proto = MatchingProtocol(net, greedy_coloring(net))
        sim = Simulator(proto, net, seed=seed)
        sim.run_rounds(1)
        prev = married_processes(net, sim.config)
        for _ in range(40):
            sim.step()
            now = married_processes(net, sim.config)
            assert prev <= now
            prev = now

    @given(networks, st.integers(min_value=0, max_value=10_000))
    @SLOW
    def test_round_bound_lemma9(self, net, seed):
        from repro.analysis import matching_round_bound

        proto = MatchingProtocol(net, greedy_coloring(net))
        sim = Simulator(proto, net, seed=seed)
        report = sim.run_until_silent(max_rounds=100_000)
        assert report.rounds <= matching_round_bound(net)


def _paper_protocol(name, net):
    if name == "coloring":
        return ColoringProtocol.for_network(net)
    colors = greedy_coloring(net)
    return (MISProtocol if name == "mis" else MatchingProtocol)(net, colors)


class TestBatchKernelProperties:
    """The vectorized kernels agree with the scalar guards pointwise —
    the batch engine's correctness reduces to exactly this plus the
    write-back being the scalar effect."""

    @given(
        networks,
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from(("coloring", "mis", "matching")),
    )
    @SLOW
    def test_classify_matches_scalar_guards(self, net, seed, protocol):
        """On any connected topology and *any* configuration, the
        kernel's per-process rule verdict equals ``first_enabled``."""
        rng = random.Random(seed)
        proto = _paper_protocol(protocol, net)
        config = proto.arbitrary_configuration(net, rng)
        specs_of = proto.specs_of(net)
        engine = BatchEngine()
        engine.bind(proto, net, config, specs_of)
        assert engine.batch_active
        verdicts = engine.classify_all()
        actions = proto.actions()
        for p in net.processes:
            ctx = StepContext(p, net, config, specs_of, rng=None)
            action = first_enabled(actions, ctx)
            expected = action.name if action is not None else None
            assert verdicts[p] == expected, (protocol, p)

    @given(
        networks,
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from(("coloring", "mis", "matching")),
    )
    @SLOW
    def test_batch_step_preserves_legitimacy_once_silent(
        self, net, seed, protocol
    ):
        """Closure through the columnar write-back: after silence, batch
        steps never move the communication state or break legitimacy."""
        proto = _paper_protocol(protocol, net)
        sim = Simulator(
            proto, net,
            scheduler=SynchronousScheduler(enabled_only=True),
            seed=seed, engine="batch",
        )
        assert sim.engine.batch_active
        report = sim.run_until_silent(max_rounds=50_000)
        assert report.stabilized
        before = sim.config.comm_projection(sim.specs_of)
        for _ in range(10):
            sim.step()
            assert sim.is_legitimate()
        assert sim.config.comm_projection(sim.specs_of) == before

    @given(
        networks,
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from(("coloring", "mis", "matching")),
        st.integers(min_value=0, max_value=12),
    )
    @SLOW
    def test_resident_prefix_closure(self, net, seed, protocol, prefix):
        """Resident/scalar closure: after *any* prefix of fused
        column-resident steps, materializing and continuing scalar is
        indistinguishable from having run scalar all along."""
        resident = Simulator(
            _paper_protocol(protocol, net), net,
            scheduler=SynchronousScheduler(),
            seed=seed, engine="batch-resident", metrics="aggregate",
        )
        scalar = Simulator(
            _paper_protocol(protocol, net), net,
            scheduler=SynchronousScheduler(),
            seed=seed, metrics="aggregate",
        )
        resident.run_resident(steps=prefix)
        scalar.run_steps(prefix)
        if resident.engine.batch_active:
            resident.engine._store.materialize()
        assert resident.config == scalar.config
        assert resident.metrics.summary() == scalar.metrics.summary()
        # one more *scalar* step from the materialized state stays in
        # lockstep — the decoded rows are a faithful resume point
        assert resident.step() == scalar.step()
        assert resident.config == scalar.config


class TestSilenceCheckerProperties:
    @given(networks, st.integers(min_value=0, max_value=10_000))
    @SLOW
    def test_checker_agrees_with_predicate_for_coloring(self, net, seed):
        """For COLORING, silent ⟺ properly colored (any cur values)."""
        rng = random.Random(seed)
        proto = ColoringProtocol.for_network(net)
        config = proto.arbitrary_configuration(net, rng)
        assert is_silent(proto, net, config) == coloring_predicate(net, config)
