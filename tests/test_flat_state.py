"""Flat indexed configurations: API compatibility and trace equivalence.

The flat backend (``Configuration``) must be observationally identical
to the legacy dict-of-dicts backend (``LegacyConfiguration``): the
equivalence tests here replay whole executions on both backends —
protocols × schedulers × engines × seeds — and require byte-identical
JSONL traces, equal final configurations, and equal metrics.  The unit
tests pin the compatibility surface (state views, projections, copies,
cross-backend equality) the rest of the package relies on.
"""

import pytest

from repro.api import protocol_registry, scheduler_registry, topology_registry
from repro.core import (
    Configuration,
    LegacyConfiguration,
    Simulator,
    TraceRecorder,
)
from repro.core.state import StateLayout
from repro.graphs import ring

PROTOCOLS = ("coloring", "mis", "matching")
SCHEDULERS = (
    ("synchronous", {}),
    ("central", {}),
    ("random-subset", {"p_act": 0.4}),
    ("central", {"enabled_only": True}),
)
ENGINES = ("incremental", "scan")
SEEDS = (0, 3, 11)


def _run_recorded(state, protocol, scheduler, sched_params, engine, seed,
                  steps=30, n=12):
    net = topology_registry.build("ring", n=n)
    proto = protocol_registry.build(protocol, net)
    sched = scheduler_registry.build(scheduler, net, **sched_params)
    sim = Simulator(proto, net, scheduler=sched, seed=seed, engine=engine,
                    state=state)
    recorder = TraceRecorder(sim, seed=seed)
    recorder.run_steps(steps)
    return recorder.trace.to_jsonl(), sim


class TestTraceEquivalence:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("scheduler,sched_params", SCHEDULERS)
    def test_flat_and_legacy_traces_are_byte_identical(
        self, protocol, scheduler, sched_params
    ):
        for engine in ENGINES:
            for seed in SEEDS:
                flat, flat_sim = _run_recorded(
                    "flat", protocol, scheduler, sched_params, engine, seed
                )
                legacy, legacy_sim = _run_recorded(
                    "legacy", protocol, scheduler, sched_params, engine, seed
                )
                label = (protocol, scheduler, engine, seed)
                assert flat == legacy, label
                # Final configurations compare across backends.
                assert flat_sim.config == legacy_sim.config, label
                assert type(flat_sim.config) is Configuration
                assert type(legacy_sim.config) is LegacyConfiguration

    def test_flat_and_legacy_metrics_agree(self):
        for protocol in PROTOCOLS:
            _trace, flat_sim = _run_recorded(
                "flat", protocol, "central", {}, "incremental", seed=5
            )
            _trace, legacy_sim = _run_recorded(
                "legacy", protocol, "central", {}, "incremental", seed=5
            )
            assert flat_sim.metrics.summary() == legacy_sim.metrics.summary()
            assert flat_sim.metrics.activations == legacy_sim.metrics.activations
            assert flat_sim.metrics.read_sets == legacy_sim.metrics.read_sets

    def test_unknown_state_backend_rejected(self):
        net = ring(4)
        proto = protocol_registry.build("coloring", net)
        with pytest.raises(ValueError, match="state backend"):
            Simulator(proto, net, state="nested")


class TestFlatConfiguration:
    def test_dict_api_round_trip(self):
        config = Configuration({0: {"C": 1, "cur": 2}, 1: {"C": 3, "cur": 1}})
        assert config.get(0, "C") == 1
        config.set(0, "C", 2)
        assert config.get(0, "C") == 2
        assert config.as_dict() == {0: {"C": 2, "cur": 2}, 1: {"C": 3, "cur": 1}}
        assert list(config.processes) == [0, 1]

    def test_set_unknown_variable_raises(self):
        config = Configuration({0: {"C": 1}})
        with pytest.raises(KeyError):
            config.set(0, "missing", 9)
        with pytest.raises(KeyError):
            config.set(99, "C", 9)

    def test_state_view_is_write_through(self):
        config = Configuration({0: {"C": 1, "cur": 2}})
        view = config.state_of(0)
        assert dict(view) == {"C": 1, "cur": 2}
        assert sorted(view.items()) == [("C", 1), ("cur", 2)]
        view["C"] = 5
        assert config.get(0, "C") == 5
        with pytest.raises(KeyError):
            view["nope"] = 1
        with pytest.raises(TypeError):
            del view["C"]

    def test_copy_is_independent_and_shares_layouts(self):
        config = Configuration({0: {"C": 1}, 1: {"C": 2}})
        clone = config.copy()
        clone.set(0, "C", 9)
        assert config.get(0, "C") == 1
        assert clone.get(0, "C") == 9
        assert config.layout_of(0) is clone.layout_of(0)

    def test_layouts_are_interned_across_processes(self):
        config = Configuration({p: {"C": p, "cur": 1} for p in range(50)})
        layouts = {id(config.layout_of(p)) for p in range(50)}
        assert len(layouts) == 1
        layout = config.layout_of(0)
        assert isinstance(layout, StateLayout)
        assert layout.index == {"C": 0, "cur": 1}

    def test_row_access_aliases_storage(self):
        config = Configuration({0: {"C": 1, "cur": 2}})
        row = config.row_of(0)
        slot = config.layout_of(0).index["C"]
        row[slot] = 7
        assert config.get(0, "C") == 7
        assert config.index_of(0) == 0

    def test_cross_backend_equality(self):
        states = {0: {"C": 1, "cur": 2}, 1: {"C": 3, "cur": 1}}
        flat = Configuration(states)
        legacy = LegacyConfiguration(states)
        assert flat == legacy
        assert legacy == flat
        legacy.set(1, "C", 9)
        assert flat != legacy
        assert flat != "not a configuration"

    def test_comm_projection_matches_legacy(self):
        net = ring(6)
        proto = protocol_registry.build("mis", net)
        specs_of = proto.specs_of(net)
        sim = Simulator(proto, net, seed=2)
        flat = sim.config
        legacy = LegacyConfiguration(flat.as_dict())
        assert flat.comm_projection(specs_of) == legacy.comm_projection(specs_of)
        p = next(iter(net.processes))
        assert flat.comm_state_of(p, specs_of[p]) == legacy.comm_state_of(
            p, specs_of[p]
        )

    def test_empty_state_supported(self):
        config = Configuration({0: {}})
        assert dict(config.state_of(0)) == {}
        assert config.as_dict() == {0: {}}
        assert config.copy() == config
