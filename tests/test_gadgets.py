"""Unit tests for the paper's gadget topologies."""

import networkx as nx
import pytest

from repro.core.exceptions import TopologyError
from repro.graphs import (
    OrientedNetwork,
    figure9_path,
    figure11_graph,
    theorem1_chain,
    theorem1_gadget,
    theorem1_spliced_chain,
    theorem2_gadget,
    theorem2_network,
)
from repro.graphs.topology import network_from_edges
from repro.predicates import is_maximal_matching


class TestTheorem1Gadgets:
    def test_chain_shape(self):
        net = theorem1_chain()
        assert net.n == 5 and net.m == 4
        assert net.degree(3) == 2

    def test_spliced_chain_shape(self):
        net = theorem1_spliced_chain()
        assert net.n == 7 and net.m == 6

    @pytest.mark.parametrize("delta", [2, 3, 4, 5])
    def test_gadget_size(self, delta):
        net = theorem1_gadget(delta)
        assert net.n == delta * delta + 1
        assert net.max_degree == delta

    @pytest.mark.parametrize("delta", [2, 3, 4])
    def test_gadget_structure(self, delta):
        net = theorem1_gadget(delta)
        assert net.degree("c") == delta
        for i in range(delta):
            assert net.degree(("m", i)) == delta
        pendants = [p for p in net.processes if net.degree(p) == 1]
        assert len(pendants) == delta * (delta - 1)

    def test_gadget_minimum_delta(self):
        with pytest.raises(TopologyError):
            theorem1_gadget(1)


class TestTheorem2Gadgets:
    def test_fig3_is_six_cycle(self):
        oriented = theorem2_network()
        net = oriented.network
        assert net.n == 6 and net.m == 6
        assert all(net.degree(p) == 2 for p in net.processes)

    def test_fig3_proof_constraints(self):
        oriented = theorem2_network()
        net = oriented.network
        # Γ.p2 = {p1, p5} — the proof's neighborhood of p2.
        assert sorted(net.neighbors(2)) == [1, 5]
        # p1, p4 sources; p5, p6 sinks.
        assert oriented.sources() == {1, 4}
        assert oriented.sinks() == {5, 6}
        assert oriented.root == 1

    def test_fig3_orientation_is_dag(self):
        oriented = theorem2_network()
        # OrientedNetwork.__post_init__ validates acyclicity; also check
        # every undirected edge is oriented exactly once.
        directed = {(p, q) for p, succs in oriented.succ.items() for q in succs}
        assert len(directed) == oriented.network.m

    @pytest.mark.parametrize("delta", [2, 3, 4])
    def test_gadget_degree(self, delta):
        oriented = theorem2_gadget(delta)
        net = oriented.network
        assert net.max_degree == delta
        for core in (1, 2, 3, 4, 5, 6):
            assert net.degree(core) == delta

    @pytest.mark.parametrize("delta", [3, 4])
    def test_gadget_preserves_sources_and_sinks(self, delta):
        oriented = theorem2_gadget(delta)
        sources = oriented.sources()
        sinks = oriented.sinks()
        assert 1 in sources and 4 in sources
        assert 5 in sinks and 6 in sinks

    def test_oriented_network_rejects_cycles(self):
        net = network_from_edges([(0, 1), (1, 2), (2, 0)])
        succ = {0: frozenset({1}), 1: frozenset({2}), 2: frozenset({0})}
        with pytest.raises(TopologyError):
            OrientedNetwork(net, succ, root=0)

    def test_oriented_network_rejects_non_edges(self):
        net = network_from_edges([(0, 1), (1, 2)])
        succ = {0: frozenset({2}), 1: frozenset(), 2: frozenset()}
        with pytest.raises(TopologyError):
            OrientedNetwork(net, succ, root=0)


class TestTightExamples:
    def test_figure9_is_path(self):
        net = figure9_path(7)
        assert net.n == 7 and net.m == 6 and net.max_degree == 2

    def test_figure11_parameters(self):
        net, matching = figure11_graph()
        assert net.m == 14
        assert net.max_degree == 4

    def test_figure11_matching_is_maximal(self):
        net, matching = figure11_graph()
        assert is_maximal_matching(net, matching)

    def test_figure11_matches_bound_exactly(self):
        from repro.analysis import matching_stability_bound

        net, matching = figure11_graph()
        # 2·⌈14/7⌉ = 4 matched processes; the example achieves exactly it.
        assert matching_stability_bound(net) == 4
        assert 2 * len(matching) == 4
