"""Tests for the campaign fabric: plan, worker, coordinator, service.

Covers the subsystem's acceptance contracts:

* a >=100-spec grid sharded over 4 workers — with one worker
  chaos-killed mid-run and requeued — completes with zero duplicate
  keys and a trial set identical to the serial baseline;
* workers claim work by key (resume) and survive hard death at any
  point losing at most the in-flight trial;
* the HTTP service answers /runs /query /report /compare correctly
  against a store other processes are still writing into, with JSON
  and markdown negotiation;
* N concurrent writer processes into one WAL store lose nothing, and
  a mid-run reader sees monotonically growing counts.
"""

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

import repro
from repro.api import Campaign, ExperimentSpec
from repro.cli import main
from repro.fabric import (
    CHAOS_EXIT_CODE,
    Coordinator,
    Heartbeat,
    ResultService,
    ShardTask,
    build_plan,
    partition,
    read_heartbeat,
    run_fabric,
    run_shard,
    shard_of,
    write_heartbeat,
)
from repro.fabric.coordinator import _ShardState
from repro.results import ResultStore, SqliteSink

SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _worker_env():
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC_ROOT + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def small_grid(seeds=4):
    return Campaign.grid(
        protocols=["coloring"],
        topologies=[("ring", {"n": 6})],
        schedulers=["synchronous"],
        seeds=range(seeds),
    )


def serial_trials(campaign, tmp_path, run_id="serial"):
    """key -> result dict of a serial run (the parity baseline)."""
    path = tmp_path / f"{run_id}.sqlite"
    campaign.run(out=path, sink="sqlite", run_id=run_id)
    with ResultStore(path, create=False) as store:
        return {k: r for k, _s, r in store.raw_trials(run_id)}


# ----------------------------------------------------------------------
# Partitioning and shard plans
# ----------------------------------------------------------------------
class TestPartition:
    def test_disjoint_and_covering(self):
        specs = small_grid(seeds=12).specs
        for strategy in ("hash", "round-robin"):
            shards = partition(specs, 5, strategy=strategy)
            keys = [s.key() for shard in shards for s in shard]
            assert sorted(keys) == sorted(s.key() for s in specs)
            assert len(set(keys)) == len(keys)

    def test_round_robin_balances(self):
        shards = partition(small_grid(seeds=10).specs, 5, "round-robin")
        assert [len(s) for s in shards] == [2, 2, 2, 2, 2]

    def test_hash_assignment_stable_under_grid_growth(self):
        # The property that keeps partial shard stores valid when a
        # campaign grows: a spec's shard depends only on its own key.
        small = small_grid(seeds=4).specs
        grown = small_grid(seeds=8).specs
        for spec in small:
            assert shard_of(spec.key(), 4) == shard_of(spec.key(), 4)
            placed_small = [i for i, shard in
                            enumerate(partition(small, 4)) if
                            any(s.key() == spec.key() for s in shard)]
            placed_grown = [i for i, shard in
                            enumerate(partition(grown, 4)) if
                            any(s.key() == spec.key() for s in shard)]
            assert placed_small == placed_grown

    def test_bad_arguments(self):
        specs = small_grid().specs
        with pytest.raises(ValueError, match="at least one shard"):
            partition(specs, 0)
        with pytest.raises(ValueError, match="unknown partition strategy"):
            partition(specs, 2, "random")

    def test_shard_task_round_trip(self, tmp_path):
        tasks = build_plan(small_grid().specs, 2, tmp_path, "run-x")
        assert tasks, "a non-empty grid must produce tasks"
        for task in tasks:
            path = tmp_path / f"rt-{task.index}.json"
            task.write(path)
            loaded = ShardTask.read(path)
            assert loaded == task
            assert loaded.experiment_specs() == [
                ExperimentSpec.from_dict(d) for d in task.specs]

    def test_without_chaos_disarms(self):
        task = ShardTask(index=0, run_id="r", store_path="s",
                         heartbeat_path="h", specs=(),
                         chaos_exit_after=1)
        assert task.without_chaos().chaos_exit_after is None

    def test_build_plan_drops_empty_shards(self, tmp_path):
        # 2 specs over 64 shards: most shards are empty and get no task.
        tasks = build_plan(small_grid(seeds=2).specs, 64, tmp_path, "r")
        assert 1 <= len(tasks) <= 2
        assert all(task.specs for task in tasks)


# ----------------------------------------------------------------------
# Heartbeats
# ----------------------------------------------------------------------
class TestHeartbeat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "hb.json"
        beat = Heartbeat(shard=3, pid=42, completed=5, total=9,
                         status="running", updated_at=time.time())
        write_heartbeat(path, beat)
        assert read_heartbeat(path) == beat

    def test_missing_and_garbage_read_as_none(self, tmp_path):
        assert read_heartbeat(tmp_path / "absent.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert read_heartbeat(bad) is None
        bad.write_text('{"shard": 1}')  # missing fields
        assert read_heartbeat(bad) is None

    def test_age_and_done(self):
        beat = Heartbeat(shard=0, pid=1, completed=1, total=1,
                         status="done", updated_at=100.0)
        assert beat.age_s(now=130.0) == pytest.approx(30.0)
        assert beat.done


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
class TestWorker:
    def test_run_shard_executes_and_heartbeats(self, tmp_path):
        [task] = build_plan(small_grid(seeds=3).specs, 1, tmp_path, "r")
        summary = run_shard(task)
        assert summary == {"completed": 3, "written": 3, "total": 3}
        beat = read_heartbeat(task.heartbeat_path)
        assert beat is not None and beat.done and beat.completed == 3
        with ResultStore(task.store_path, create=False) as store:
            assert store.trial_count("r") == 3

    def test_run_shard_resumes_by_key(self, tmp_path):
        [task] = build_plan(small_grid(seeds=4).specs, 1, tmp_path, "r")
        specs = task.experiment_specs()
        sink = SqliteSink(task.store_path, run_id="r")
        for spec in specs[:2]:
            sink.write(spec.key(), spec, spec.run())
        sink.close()
        summary = run_shard(task)
        assert summary == {"completed": 4, "written": 2, "total": 4}

    def test_chaos_death_in_subprocess(self, tmp_path):
        # The hook hard-exits the process — only ever exercised through
        # a real subprocess, exactly like the coordinator does.
        [task] = build_plan(small_grid(seeds=4).specs, 1, tmp_path, "r")
        import dataclasses
        task = dataclasses.replace(task, chaos_exit_after=2)
        shard_file = tmp_path / "shard.json"
        task.write(shard_file)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.fabric.worker",
             "--shard-file", str(shard_file)],
            env=_worker_env(), capture_output=True, timeout=120)
        assert proc.returncode == CHAOS_EXIT_CODE
        # Death after 2 commits: exactly those 2 rows are durable.
        with ResultStore(task.store_path, create=False) as store:
            assert store.trial_count("r") == 2
        # A relaunch resumes by key and finishes the remainder (the
        # re-armed hook fires after 2 *fresh* trials — exactly the
        # remaining work, so the second run completes the shard).
        proc = subprocess.run(
            [sys.executable, "-m", "repro.fabric.worker",
             "--shard-file", str(shard_file)],
            env=_worker_env(), capture_output=True, timeout=120)
        with ResultStore(task.store_path, create=False) as store:
            assert store.trial_count("r") == 4

    def test_worker_cli_bad_shard_file(self, tmp_path, capsys):
        rc = main(["fabric", "worker",
                   "--shard-file", str(tmp_path / "missing.json")])
        assert rc == 2
        assert "cannot read shard file" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
class TestCoordinator:
    def test_acceptance_chaos_parity(self, tmp_path):
        """The subsystem's acceptance gate: 100 specs, 4 workers, one
        chaos-killed worker, zero duplicate keys, trial-for-trial
        identical to serial."""
        campaign = Campaign.grid(
            protocols=["coloring", "mis"],
            topologies=[("ring", {"n": 6})],
            schedulers=["synchronous", "central"],
            seeds=range(25),
        )
        assert len(campaign) == 100
        store_path = tmp_path / "fabric.sqlite"
        outcome = run_fabric(
            campaign, store_path, run_id="fabric",
            workers=4, shards=5, chaos_kills=1,
        )
        assert outcome.ok
        assert outcome.requeued >= 1, "the chaos kill must force a requeue"
        assert outcome.executed == 100
        with ResultStore(store_path, create=False) as store:
            assert store.trial_count("fabric") == 100
            assert len(store.completed_keys("fabric")) == 100
            fabric = {k: r for k, _s, r in store.raw_trials("fabric")}
        serial = serial_trials(campaign, tmp_path)
        assert fabric.keys() == serial.keys()
        assert fabric == serial

    def test_resume_skips_stored_work(self, tmp_path):
        campaign = small_grid(seeds=6)
        store_path = tmp_path / "store.sqlite"
        first = run_fabric(campaign, store_path, run_id="r", workers=2)
        assert first.ok and first.executed == 6
        second = run_fabric(campaign, store_path, run_id="r", workers=2)
        assert second.ok
        assert second.executed == 0 and second.resumed == 6

    def test_resume_after_partial_canonical_store(self, tmp_path):
        # Trials already merged into the canonical run are never
        # re-dispatched — the coordinator-level claim surface.
        campaign = small_grid(seeds=6)
        store_path = tmp_path / "store.sqlite"
        sink = SqliteSink(store_path, run_id="r")
        for spec in campaign.specs[:4]:
            sink.write(spec.key(), spec, spec.run())
        sink.close()
        outcome = run_fabric(campaign, store_path, run_id="r", workers=2)
        assert outcome.ok
        assert outcome.resumed == 4 and outcome.executed == 2

    def test_workdir_removed_on_success_kept_on_request(self, tmp_path):
        campaign = small_grid(seeds=2)
        store = tmp_path / "a.sqlite"
        workdir = tmp_path / "work"
        run_fabric(campaign, store, workdir=workdir, workers=1)
        assert not workdir.exists()
        run_fabric(campaign, tmp_path / "b.sqlite",
                   workdir=workdir, workers=1, keep_shards=True)
        assert workdir.exists()

    def test_gives_up_after_bounded_retries(self, tmp_path):
        # A shard that dies on every attempt (chaos re-armed via a
        # doctored coordinator) must exhaust retries, not loop forever.
        campaign = small_grid(seeds=4)
        coordinator = Coordinator(
            campaign, tmp_path / "store.sqlite", run_id="r",
            workers=1, shards=1, chaos_kills=1, max_retries=1,
            retry_backoff_s=0.0,
        )
        # Re-arm chaos on requeue so every attempt dies.
        original = ShardTask.without_chaos
        ShardTask.without_chaos = lambda self: self
        try:
            outcome = coordinator.run()
        finally:
            ShardTask.without_chaos = original
        assert not outcome.ok
        # Each attempt commits one fresh trial before dying.
        assert 0 < len(outcome.missing) < 4
        assert outcome.requeued == 1

    def test_stall_detection_logic(self, tmp_path):
        campaign = small_grid(seeds=1)
        coordinator = Coordinator(campaign, tmp_path / "s.sqlite",
                                  heartbeat_timeout_s=5.0)
        [task] = build_plan(campaign.specs, 1, tmp_path / "w", "r")
        state = _ShardState(task, "f", "l")
        now = time.monotonic()
        state.launched_at = now  # within startup grace
        assert not coordinator._stalled(state, now)
        state.launched_at = now - 60.0  # grace over, no heartbeat file
        assert coordinator._stalled(state, now)
        write_heartbeat(task.heartbeat_path, Heartbeat(
            shard=0, pid=1, completed=0, total=1,
            status="running", updated_at=time.time()))
        assert not coordinator._stalled(state, now)  # fresh beat
        write_heartbeat(task.heartbeat_path, Heartbeat(
            shard=0, pid=1, completed=0, total=1,
            status="running", updated_at=time.time() - 60.0))
        assert coordinator._stalled(state, now)  # stale beat

    def test_campaign_run_fabric_method(self, tmp_path):
        campaign = small_grid(seeds=3)
        outcome = campaign.run_fabric(tmp_path / "m.sqlite",
                                      run_id="m", workers=2)
        assert outcome.ok and outcome.total == 3

    def test_validates_worker_and_shard_counts(self, tmp_path):
        with pytest.raises(ValueError, match="at least one worker"):
            Coordinator(small_grid(), tmp_path / "s.sqlite", workers=0)
        with pytest.raises(ValueError, match="at least one shard"):
            Coordinator(small_grid(), tmp_path / "s.sqlite", shards=0)


# ----------------------------------------------------------------------
# CLI: fabric run / plan / worker + campaign --fabric
# ----------------------------------------------------------------------
class TestFabricCli:
    def test_fabric_run_then_compare_with_serial(self, tmp_path, capsys):
        store = tmp_path / "store.sqlite"
        rc = main(["fabric", "run",
                   "--protocols", "coloring",
                   "--topologies", "ring:n=6",
                   "--seeds", "6",
                   "--workers", "2", "--shards", "3",
                   "--store", str(store), "--run", "fabric",
                   "--chaos-kill", "1", "--quiet"])
        assert rc == 0
        rc = main(["campaign", "--protocols", "coloring",
                   "--topologies", "ring:n=6", "--seeds", "6",
                   "--out", str(store), "--sink", "sqlite",
                   "--run", "serial", "--quiet"])
        assert rc == 0
        capsys.readouterr()
        rc = main(["compare", "--store", str(store),
                   "--runs", "fabric", "serial", "--threshold", "0"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "0 regressed" in out

    def test_campaign_fabric_flag(self, tmp_path, capsys):
        store = tmp_path / "store.sqlite"
        rc = main(["campaign", "--protocols", "mis",
                   "--topologies", "ring:n=6", "--seeds", "3",
                   "--out", str(store), "--fabric", "--workers", "2",
                   "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fabric run" in out
        assert "campaign summary" in out  # report rendered from store

    def test_campaign_fabric_needs_out(self):
        with pytest.raises(SystemExit, match="--fabric needs --out"):
            main(["campaign", "--fabric"])

    def test_plan_worker_ingest_round_trip(self, tmp_path, capsys):
        # The multi-host path: plan shard files, run each "host"
        # through the CLI worker, merge with multi-source ingest.
        workdir = tmp_path / "plan"
        store = tmp_path / "merged.sqlite"
        rc = main(["fabric", "plan", "--protocols", "coloring",
                   "--topologies", "ring:n=6", "--seeds", "5",
                   "--workdir", str(workdir), "--shards", "2",
                   "--run", "remote"])
        assert rc == 0
        shard_files = sorted(workdir.glob("shard-*.json"))
        assert shard_files
        for shard_file in shard_files:
            assert main(["fabric", "worker",
                         "--shard-file", str(shard_file)]) == 0
        shard_stores = [str(p) for p in sorted(workdir.glob("*.sqlite"))]
        rc = main(["ingest", *shard_stores,
                   "--store", str(store), "--run", "remote"])
        assert rc == 0
        with ResultStore(store, create=False) as merged:
            assert merged.trial_count("remote") == 5
        serial = serial_trials(small_grid(seeds=5), tmp_path)
        with ResultStore(store, create=False) as merged:
            remote = {k: r for k, _s, r in merged.raw_trials("remote")}
        assert remote == serial


# ----------------------------------------------------------------------
# HTTP service
# ----------------------------------------------------------------------
def _get(url, accept=None):
    request = urllib.request.Request(url)
    if accept:
        request.add_header("Accept", accept)
    with urllib.request.urlopen(request) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode())


@pytest.fixture
def served_store(tmp_path):
    store_path = tmp_path / "served.sqlite"
    small_grid(seeds=5).run(out=store_path, sink="sqlite", run_id="base")
    with ResultService(str(store_path)) as service:
        yield store_path, service


class TestResultService:
    def test_health_and_runs(self, served_store):
        _path, service = served_store
        status, ctype, body = _get(service.url + "/health")
        assert status == 200 and ctype.startswith("application/json")
        payload = json.loads(body)
        assert payload["ok"] and payload["trials"] == 5
        _status, _ctype, body = _get(service.url + "/runs")
        runs = json.loads(body)["runs"]
        assert [r["run_id"] for r in runs] == ["base"]
        assert runs[0]["trials"] == 5

    def test_query_matches_store(self, served_store):
        store_path, service = served_store
        _s, _c, body = _get(service.url +
                            "/query?metrics=rounds&group_by=protocol")
        groups = json.loads(body)["groups"]
        with ResultStore(store_path, create=False) as store:
            direct = store.query(metrics=["rounds"],
                                 group_by=["protocol"])
        assert len(groups) == len(direct) == 1
        assert groups[0]["count"] == direct[0].count
        assert (groups[0]["aggregates"]["rounds"]["mean"]
                == pytest.approx(direct[0].aggregates["rounds"].mean))

    def test_markdown_negotiation(self, served_store):
        _path, service = served_store
        # Accept header
        _s, ctype, body = _get(service.url + "/report?recipe=paper-overhead",
                               accept="text/markdown")
        assert ctype.startswith("text/markdown")
        assert body.startswith("**") and "| protocol |" in body
        # ?format= overrides Accept
        _s, ctype, _b = _get(
            service.url + "/query?format=json", accept="text/markdown")
        assert ctype.startswith("application/json")
        _s, ctype, _b = _get(service.url + "/runs?format=markdown")
        assert ctype.startswith("text/markdown")

    def test_report_recipe_json(self, served_store):
        _path, service = served_store
        _s, _c, body = _get(service.url + "/report?recipe=paper-overhead")
        payload = json.loads(body)
        assert payload["recipe"] == "paper-overhead"
        assert payload["group_by"] == ["protocol", "topology"]
        assert payload["groups"][0]["count"] == 5

    def test_compare_identical_runs(self, served_store):
        _path, service = served_store
        _s, _c, body = _get(service.url +
                            "/compare?runs=base,base&threshold=0")
        payload = json.loads(body)
        assert payload["regressed"] is False
        assert payload["rows"], "identical runs still produce cells"

    def test_error_statuses(self, served_store):
        _path, service = served_store
        for path, status, needle in [
            ("/nope", 404, "no such endpoint"),
            ("/report?recipe=nope", 400, "unknown recipe"),
            ("/query?where=broken", 400, "column=value"),
            ("/compare?runs=base", 400, "exactly two"),
            ("/query?format=yaml", 400, "unknown format"),
            ("/query?run=ghost", 400, "ghost"),
        ]:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(service.url + path)
            assert excinfo.value.code == status
            assert needle in excinfo.value.read().decode()

    def test_live_writes_are_monotonic(self, tmp_path):
        # The live-dashboard contract: a reader polling while a
        # campaign writes sees committed trials only, and the count
        # never goes backwards.
        store_path = tmp_path / "live.sqlite"
        specs = small_grid(seeds=6).specs
        sink = SqliteSink(store_path, run_id="live")
        sink.write(specs[0].key(), specs[0], specs[0].run())
        with ResultService(str(store_path)) as service:
            seen = []
            for spec in specs[1:]:
                _s, _c, body = _get(service.url + "/health")
                seen.append(json.loads(body)["trials"])
                sink.write(spec.key(), spec, spec.run())
            sink.close()
            _s, _c, body = _get(service.url + "/health")
            seen.append(json.loads(body)["trials"])
        assert seen == sorted(seen), "trial counts must be monotone"
        assert seen[0] >= 1 and seen[-1] == 6

    def test_missing_store_refused(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            ResultService(str(tmp_path / "ghost.sqlite"))


# ----------------------------------------------------------------------
# Concurrent writers (the WAL contract, process-level)
# ----------------------------------------------------------------------
WRITER_SCRIPT = """
import sys
from repro.api import Campaign
from repro.results import SqliteSink

store_path, run_id, lo, hi = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4]))
campaign = Campaign.grid(
    protocols=["coloring"],
    topologies=[("ring", {"n": 6})],
    schedulers=["synchronous"],
    seeds=range(lo, hi),
)
sink = SqliteSink(store_path, run_id=run_id)
for spec in campaign.specs:
    sink.write(spec.key(), spec, spec.run())
sink.close()
"""


class TestConcurrentWriters:
    def test_four_processes_one_store_no_lost_trials(self, tmp_path):
        store_path = tmp_path / "shared.sqlite"
        # Seed ranges are disjoint: 4 x 25 = 100 distinct keys.
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", WRITER_SCRIPT, str(store_path),
                 "shared", str(lo), str(lo + 25)],
                env=_worker_env(), stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT)
            for lo in range(0, 100, 25)
        ]
        # Mid-run reader: counts may lag but must never decrease.
        seen = []
        while any(proc.poll() is None for proc in procs):
            if store_path.exists():
                try:
                    with ResultStore(store_path, create=False) as store:
                        seen.append(store.trial_count("shared"))
                except ValueError:
                    pass  # first writer still creating the file
            time.sleep(0.05)
        for proc in procs:
            output = proc.stdout.read().decode()
            assert proc.returncode == 0, output
        assert seen == sorted(seen), "reader counts must be monotone"
        with ResultStore(store_path, create=False) as store:
            assert store.trial_count("shared") == 100
            assert len(store.completed_keys("shared")) == 100

    def test_writer_parity_with_serial(self, tmp_path):
        # Concurrency must not change any stored value, only interleave
        # the writes.
        store_path = tmp_path / "shared.sqlite"
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", WRITER_SCRIPT, str(store_path),
                 "shared", str(lo), str(lo + 5)],
                env=_worker_env())
            for lo in range(0, 10, 5)
        ]
        for proc in procs:
            assert proc.wait(timeout=300) == 0
        serial = serial_trials(small_grid(seeds=10), tmp_path)
        with ResultStore(store_path, create=False) as store:
            shared = {k: r for k, _s, r in store.raw_trials("shared")}
        assert shared == serial
