"""Documentation checks: links resolve, code blocks run, API is documented.

Three guards keep the docs suite honest:

* every relative markdown link in ``docs/*.md`` and ``README.md``
  points at a file that exists;
* every fenced ``python`` block in ``docs/*.md`` executes (README
  blocks are compile-checked only — some are deliberately expensive
  campaign examples);
* a pydocstyle-lite pass: every public module, class and function of
  :mod:`repro.core` carries a docstring, so the daemon-semantics
  contracts stay written down.
"""

import inspect
import pathlib
import pkgutil
import re
import importlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
DOCS = sorted((REPO / "docs").glob("*.md"))
README = REPO / "README.md"

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)


def doc_files():
    return DOCS + [README]


def test_docs_suite_exists():
    names = {path.name for path in DOCS}
    assert {"architecture.md", "paper-map.md", "performance.md"} <= names


@pytest.mark.parametrize("path", doc_files(), ids=lambda p: p.name)
def test_relative_links_resolve(path):
    broken = []
    for target in LINK_RE.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#")[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.name}: broken links {broken}"


def python_blocks(path):
    text = path.read_text(encoding="utf-8")
    return [
        code for lang, code in FENCE_RE.findall(text)
        if lang == "python"
    ]


@pytest.mark.parametrize("path", doc_files(), ids=lambda p: p.name)
def test_python_blocks_compile(path):
    for i, code in enumerate(python_blocks(path)):
        compile(code, f"{path.name}[block {i}]", "exec")


@pytest.mark.parametrize("path", DOCS, ids=lambda p: p.name)
def test_docs_python_blocks_execute(path):
    """The docs' examples are living code: each block must run."""
    blocks = python_blocks(path)
    for i, code in enumerate(blocks):
        namespace = {"__name__": f"docblock_{path.stem}_{i}"}
        try:
            exec(compile(code, f"{path.name}[block {i}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"{path.name} block {i} raised {exc!r}:\n{code}")


# ----------------------------------------------------------------------
# pydocstyle-lite for the model core
# ----------------------------------------------------------------------
def core_objects():
    """Every public module/class/function/method under repro.core."""
    import repro.core as core

    seen = []
    for info in pkgutil.iter_modules(core.__path__):
        module = importlib.import_module(f"repro.core.{info.name}")
        seen.append((f"repro.core.{info.name}", module))
        for name, obj in vars(module).items():
            if name.startswith("_") or inspect.getmodule(obj) is not module:
                continue
            if inspect.isclass(obj):
                seen.append((f"{module.__name__}.{name}", obj))
                for mname, member in vars(obj).items():
                    if mname.startswith("_"):
                        continue
                    if inspect.isfunction(member):
                        seen.append(
                            (f"{module.__name__}.{name}.{mname}", member)
                        )
            elif inspect.isfunction(obj):
                seen.append((f"{module.__name__}.{name}", obj))
    return seen


def test_core_public_api_is_documented():
    undocumented = [
        qualname
        for qualname, obj in core_objects()
        if not (inspect.getdoc(obj) or "").strip()
    ]
    assert not undocumented, (
        "public repro.core API without docstrings: "
        + ", ".join(sorted(undocumented))
    )
