"""Tests for the Definition-10 (neighbor-completeness) checkers."""

import pytest

from repro.graphs import chain, greedy_coloring, ring
from repro.predicates import (
    collect_silent_comm_states,
    coloring_pair_violates,
    enumerate_silent_configurations,
    find_neighbor_completeness_witness,
    matching_pair_violates,
    mis_pair_violates,
)
from repro.protocols import ColoringProtocol, MISProtocol


class TestExhaustiveEnumeration:
    def test_chain3_coloring_silent_configs(self):
        """On a 3-chain with 3 colors: 12 proper colorings × 2 pointer
        states of the middle process = 24 silent configurations, all
        legitimate (silent ⇒ legitimate for COLORING)."""
        net = chain(3)
        proto = ColoringProtocol.for_network(net)
        configs = list(enumerate_silent_configurations(proto, net))
        assert len(configs) == 24
        assert all(proto.is_legitimate(net, c) for c in configs)

    def test_chain2_mis_silent_configs(self):
        net = chain(2)
        proto = MISProtocol(net, {0: 1, 1: 2})
        configs = list(enumerate_silent_configurations(proto, net))
        assert configs
        for c in configs:
            assert proto.is_legitimate(net, c)

    def test_limit_respected(self):
        net = chain(3)
        proto = ColoringProtocol.for_network(net)
        assert len(list(enumerate_silent_configurations(proto, net, limit=5))) == 5


class TestSampledStates:
    def test_collect_returns_states_for_every_process(self):
        net = ring(5)
        proto = ColoringProtocol.for_network(net)
        observed = collect_silent_comm_states(proto, net, samples=8, seed=0)
        assert set(observed) == set(net.processes)
        assert all(observed[p] for p in net.processes)

    def test_comm_states_only(self):
        net = chain(4)
        proto = ColoringProtocol.for_network(net)
        observed = collect_silent_comm_states(proto, net, samples=4, seed=1)
        for states in observed.values():
            for state in states:
                assert dict(state).keys() == {"C"}  # no internal cur


class TestWitnessSearch:
    def test_coloring_is_neighbor_complete(self):
        """The paper: every silent solution to coloring satisfies
        Definition 10 — every color appears at every process in some
        silent config, and equal colors on an edge violate P."""
        net = chain(4)
        proto = ColoringProtocol.for_network(net)
        w = find_neighbor_completeness_witness(
            proto, net, coloring_pair_violates, samples=40, seed=0
        )
        assert w is not None and w.complete

    def test_witness_states_are_genuinely_conflicting(self):
        net = ring(5)
        proto = ColoringProtocol.for_network(net)
        w = find_neighbor_completeness_witness(
            proto, net, coloring_pair_violates, samples=60, seed=1
        )
        assert w is not None
        for p, alpha_p in w.alpha.items():
            for q, alpha_q in w.conflicts[p].items():
                assert dict(alpha_p)["C"] == dict(alpha_q)["C"]

    def test_mis_with_fixed_colors_evades_the_witness(self):
        """MIS runs on a *locally identified* network — outside Theorem
        1's anonymous setting.  Concretely: a neighbor of a local color
        minimum is dominated in every silent configuration, so the
        both-Dominator pair needed by Definition 10 never materialises
        for it.  The sampled witness search must come up empty."""
        net = chain(4)
        proto = MISProtocol(net, greedy_coloring(net))
        w = find_neighbor_completeness_witness(
            proto, net, mis_pair_violates, samples=30, seed=0
        )
        assert w is None

    def test_pair_violation_helpers(self):
        net = chain(2)
        assert coloring_pair_violates(net, 0, (("C", 1),), 1, (("C", 1),))
        assert not coloring_pair_violates(net, 0, (("C", 1),), 1, (("C", 2),))
        assert mis_pair_violates(
            net, 0, (("S", "Dominator"),), 1, (("S", "Dominator"),)
        )
        assert not mis_pair_violates(
            net, 0, (("S", "Dominator"),), 1, (("S", "dominated"),)
        )
        assert matching_pair_violates(
            net, 0, (("M", False), ("PR", 0)), 1, (("M", False), ("PR", 0))
        )
        assert not matching_pair_violates(
            net, 0, (("M", False), ("PR", 0)), 1, (("M", True), ("PR", 1))
        )
