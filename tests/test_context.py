"""Unit tests for StepContext: tracked reads, buffered writes, model rules."""

import random

import pytest

from repro.core import Configuration, IllegalRead, IllegalWrite, DomainError
from repro.core.context import StepContext
from repro.core.variables import BOOL, IntRange, comm, const, internal
from repro.graphs import chain


@pytest.fixture
def setup():
    net = chain(3)
    specs = {
        p: (
            comm("C", IntRange(1, 3)),
            const("K", IntRange(1, 9)),
            internal("cur", IntRange(1, max(net.degree(p), 1))),
        )
        for p in net.processes
    }
    config = Configuration(
        {
            0: {"C": 1, "K": 7, "cur": 1},
            1: {"C": 2, "K": 8, "cur": 1},
            2: {"C": 3, "K": 9, "cur": 1},
        }
    )
    return net, specs, config


class TestOwnState:
    def test_get(self, setup):
        net, specs, config = setup
        ctx = StepContext(1, net, config, specs)
        assert ctx.get("C") == 2

    def test_set_buffers_write(self, setup):
        net, specs, config = setup
        ctx = StepContext(1, net, config, specs)
        ctx.set("C", 3)
        assert ctx.writes == {"C": 3}
        assert config.get(1, "C") == 2  # not applied yet

    def test_get_sees_pending_write(self, setup):
        net, specs, config = setup
        ctx = StepContext(1, net, config, specs)
        ctx.set("C", 3)
        assert ctx.get("C") == 3

    def test_set_unknown_variable(self, setup):
        net, specs, config = setup
        ctx = StepContext(1, net, config, specs)
        with pytest.raises(IllegalWrite):
            ctx.set("missing", 1)

    def test_set_constant_rejected(self, setup):
        net, specs, config = setup
        ctx = StepContext(1, net, config, specs)
        with pytest.raises(IllegalWrite):
            ctx.set("K", 1)

    def test_set_out_of_domain(self, setup):
        net, specs, config = setup
        ctx = StepContext(1, net, config, specs)
        with pytest.raises(DomainError):
            ctx.set("C", 42)

    def test_degree(self, setup):
        net, specs, config = setup
        assert StepContext(1, net, config, specs).degree == 2
        assert StepContext(0, net, config, specs).degree == 1


class TestNeighborReads:
    def test_read_returns_frozen_value(self, setup):
        net, specs, config = setup
        ctx = StepContext(1, net, config, specs)
        port = net.port_to(1, 0)
        assert ctx.read(port, "C") == 1

    def test_read_tracks_port(self, setup):
        net, specs, config = setup
        ctx = StepContext(1, net, config, specs)
        port = net.port_to(1, 2)
        ctx.read(port, "C")
        assert ctx.ports_read == {port}

    def test_read_accumulates_distinct_ports(self, setup):
        net, specs, config = setup
        ctx = StepContext(1, net, config, specs)
        ctx.read(1, "C")
        ctx.read(2, "C")
        ctx.read(1, "C")
        assert len(ctx.ports_read) == 2

    def test_read_constant_is_tracked(self, setup):
        net, specs, config = setup
        ctx = StepContext(1, net, config, specs)
        ctx.read(1, "K")
        assert ctx.ports_read == {1}

    def test_bits_accounting(self, setup):
        net, specs, config = setup
        ctx = StepContext(1, net, config, specs)
        ctx.read(1, "C")
        assert ctx.bits_read == pytest.approx(IntRange(1, 3).bits)
        ctx.read(1, "K")
        assert ctx.bits_read == pytest.approx(
            IntRange(1, 3).bits + IntRange(1, 9).bits
        )

    def test_internal_variable_unreadable(self, setup):
        net, specs, config = setup
        ctx = StepContext(1, net, config, specs)
        with pytest.raises(IllegalRead):
            ctx.read(1, "cur")

    def test_unknown_variable_unreadable(self, setup):
        net, specs, config = setup
        ctx = StepContext(1, net, config, specs)
        with pytest.raises(IllegalRead):
            ctx.read(1, "nope")


class TestHelpers:
    def test_advance_wraps(self, setup):
        net, specs, config = setup
        ctx = StepContext(1, net, config, specs)
        ctx.advance("cur")
        assert ctx.get("cur") == 2
        ctx.advance("cur")
        assert ctx.get("cur") == 1

    def test_random_requires_rng(self, setup):
        net, specs, config = setup
        ctx = StepContext(1, net, config, specs, rng=None)
        with pytest.raises(IllegalWrite):
            ctx.random_choice(IntRange(1, 3))

    def test_random_flags_usage(self, setup):
        net, specs, config = setup
        ctx = StepContext(1, net, config, specs, rng=random.Random(0))
        assert not ctx.used_randomness
        ctx.random_choice(IntRange(1, 3))
        assert ctx.used_randomness

    def test_comm_writes_filters_internal(self, setup):
        net, specs, config = setup
        ctx = StepContext(1, net, config, specs)
        ctx.set("C", 1)
        ctx.set("cur", 2)
        assert ctx.comm_writes() == {"C": 1}
