"""Tests for the COLORING → MIS/MATCHING pipeline (composite module)."""

import pytest

from repro.core import Simulator
from repro.graphs import is_proper_coloring, random_connected, ring
from repro.predicates import (
    dominators,
    is_maximal_independent_set,
    is_maximal_matching,
    matched_edges,
)
from repro.protocols import (
    colors_from_coloring_protocol,
    matching_over_coloring,
    mis_over_coloring,
)


class TestColoringStage:
    def test_produces_local_identifiers(self):
        net = random_connected(14, 0.3, seed=3)
        stage = colors_from_coloring_protocol(net, seed=1)
        assert is_proper_coloring(net, stage.colors)
        assert stage.rounds > 0

    def test_colors_within_palette(self):
        net = ring(8)
        stage = colors_from_coloring_protocol(net, seed=2)
        assert all(1 <= c <= net.max_degree + 1 for c in stage.colors.values())

    def test_reproducible(self):
        net = ring(8)
        a = colors_from_coloring_protocol(net, seed=5).colors
        b = colors_from_coloring_protocol(net, seed=5).colors
        assert a == b


class TestEndToEndPipelines:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_mis_over_coloring(self, seed):
        net = random_connected(12, 0.3, seed=7)
        proto = mis_over_coloring(net, seed=seed)
        sim = Simulator(proto, net, seed=seed + 100)
        sim.run_until_silent(max_rounds=20_000)
        assert is_maximal_independent_set(net, dominators(net, sim.config))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_matching_over_coloring(self, seed):
        net = random_connected(12, 0.3, seed=7)
        proto = matching_over_coloring(net, seed=seed)
        sim = Simulator(proto, net, seed=seed + 100)
        sim.run_until_silent(max_rounds=50_000)
        assert is_maximal_matching(net, matched_edges(net, sim.config))

    def test_pipeline_remains_one_efficient(self):
        net = ring(9)
        proto = mis_over_coloring(net, seed=3)
        sim = Simulator(proto, net, seed=4)
        sim.run_until_silent(max_rounds=20_000)
        assert sim.metrics.observed_k_efficiency() == 1
