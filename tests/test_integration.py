"""Cross-module integration scenarios.

Each test exercises several subsystems end to end, the way a downstream
user would: anonymous bootstrap pipelines, adversarial port relabeling,
trace-audited efficiency, checkpointed recovery, fault storms.
"""

import random

import pytest

from repro.analysis import (
    matching_round_bound,
    matching_stability_bound,
    measure_stability,
    mis_round_bound,
    mis_stability_bound,
)
from repro.core import Simulator, TraceRecorder, is_silent
from repro.core.serialization import (
    configuration_from_json,
    configuration_to_json,
)
from repro.faults import corrupt_fraction, measure_recovery
from repro.graphs import (
    color_count,
    greedy_coloring,
    random_connected,
    relabel_ports_randomly,
    verify_theorem4,
)
from repro.predicates import (
    dominators,
    is_maximal_independent_set,
    is_maximal_matching,
    matched_edges,
)
from repro.protocols import (
    ColoringProtocol,
    MISProtocol,
    MatchingProtocol,
    colors_from_coloring_protocol,
)


class TestAnonymousBootstrapPipeline:
    """Anonymous network → COLORING → identifiers → MIS + MATCHING,
    with every layer's guarantees checked."""

    def test_full_stack(self):
        net = random_connected(18, 0.25, seed=14)
        stage = colors_from_coloring_protocol(net, seed=1)
        assert color_count(stage.colors) <= net.max_degree + 1
        assert verify_theorem4(net, stage.colors)

        mis = MISProtocol(net, stage.colors)
        sim_mis = Simulator(mis, net, seed=2)
        rep_mis = sim_mis.run_until_silent(max_rounds=50_000)
        assert rep_mis.rounds <= mis_round_bound(net, stage.colors)
        assert is_maximal_independent_set(net, dominators(net, sim_mis.config))

        matching = MatchingProtocol(net, stage.colors)
        sim_m = Simulator(matching, net, seed=3)
        rep_m = sim_m.run_until_silent(max_rounds=100_000)
        assert rep_m.rounds <= matching_round_bound(net)
        assert is_maximal_matching(net, matched_edges(net, sim_m.config))

        for sim in (sim_mis, sim_m):
            assert sim.metrics.observed_k_efficiency() == 1


class TestAdversarialPortNumbering:
    """Anonymity means the adversary picks the port maps; correctness
    and the bounds must survive any relabeling."""

    @pytest.mark.parametrize("seed", range(4))
    def test_all_protocols_survive_relabeling(self, seed):
        base = random_connected(14, 0.3, seed=8)
        net = relabel_ports_randomly(base, random.Random(seed))
        colors = greedy_coloring(net)

        sim_c = Simulator(ColoringProtocol.for_network(net), net, seed=seed)
        assert sim_c.run_until_silent(max_rounds=50_000).stabilized

        sim_i = Simulator(MISProtocol(net, colors), net, seed=seed)
        rep_i = sim_i.run_until_silent(max_rounds=50_000)
        assert rep_i.rounds <= mis_round_bound(net, colors)

        sim_m = Simulator(MatchingProtocol(net, colors), net, seed=seed)
        rep_m = sim_m.run_until_silent(max_rounds=100_000)
        assert rep_m.rounds <= matching_round_bound(net)

    def test_stability_bounds_survive_relabeling(self):
        from repro.graphs import chain

        net = relabel_ports_randomly(chain(12), random.Random(5))
        colors = greedy_coloring(net)
        m = measure_stability(MISProtocol(net, colors), net, seed=1,
                              suffix_rounds=25)
        bound, exact = mis_stability_bound(net)
        assert exact and m.x >= bound


class TestTraceAuditedEfficiency:
    """The efficiency theorems audited from raw traces, not metrics."""

    @pytest.mark.parametrize(
        "make_proto",
        [
            lambda net, colors: ColoringProtocol.for_network(net),
            lambda net, colors: MISProtocol(net, colors),
            lambda net, colors: MatchingProtocol(net, colors),
        ],
        ids=["coloring", "mis", "matching"],
    )
    def test_every_traced_step_reads_at_most_one_neighbor(self, make_proto):
        net = random_connected(12, 0.3, seed=4)
        colors = greedy_coloring(net)
        sim = Simulator(make_proto(net, colors), net, seed=6)
        recorder = TraceRecorder(sim, seed=6)
        recorder.run_steps(120)
        assert recorder.trace.k_efficiency() <= 1


class TestCheckpointedRecovery:
    def test_corrupt_checkpoint_restore_recover(self):
        net = random_connected(12, 0.3, seed=9)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=1)
        sim.run_until_silent(max_rounds=50_000)

        # Archive the silent configuration, corrupt the live system.
        blob = configuration_to_json(sim.config)
        corrupt_fraction(sim, 1.0, random.Random(2))

        # Restoring the archive yields silence; the corrupted system
        # must also re-converge on its own.
        restored = configuration_from_json(blob)
        assert is_silent(proto, net, restored)
        assert sim.run_until_silent(max_rounds=50_000).stabilized


class TestFaultStorm:
    @pytest.mark.parametrize(
        "make_proto",
        [
            lambda net, colors: ColoringProtocol.for_network(net),
            lambda net, colors: MISProtocol(net, colors),
            lambda net, colors: MatchingProtocol(net, colors),
        ],
        ids=["coloring", "mis", "matching"],
    )
    def test_repeated_faults_always_recover(self, make_proto):
        net = random_connected(12, 0.3, seed=11)
        colors = greedy_coloring(net)
        sim = Simulator(make_proto(net, colors), net, seed=3)
        rng = random.Random(77)
        for round_no in range(4):
            report = measure_recovery(
                sim, lambda s, r: corrupt_fraction(s, 0.5, r), rng,
                max_rounds=100_000,
            )
            assert report.rounds_to_recover >= 0
        assert sim.is_legitimate() and sim.is_silent()


class TestStabilityAcrossSchedulers:
    def test_matching_stability_holds_under_central_daemon(self):
        from repro.core import CentralScheduler
        from repro.graphs import ring

        net = ring(10)
        colors = greedy_coloring(net)
        m = measure_stability(
            MatchingProtocol(net, colors), net,
            scheduler=CentralScheduler(), seed=5, suffix_rounds=40,
        )
        assert m.x >= matching_stability_bound(net)
