"""Tests for protocol MATCHING (Figure 10, Theorems 7–8, Lemmas 5–9)."""

import pytest

from repro.analysis import (
    matching_round_bound,
    matching_stability_bound,
    min_maximal_matching_size,
)
from repro.core import Simulator
from repro.graphs import (
    chain,
    clique,
    figure11_graph,
    greedy_coloring,
    grid,
    random_connected,
    random_tree,
    ring,
    star,
)
from repro.predicates import (
    is_maximal_matching,
    is_married,
    matched_edges,
    married_processes,
    pr_target,
)
from repro.protocols import MatchingProtocol

FAMILIES = {
    "chain8": lambda: chain(8),
    "ring9": lambda: ring(9),
    "star6": lambda: star(6),
    "clique5": lambda: clique(5),
    "grid3x4": lambda: grid(3, 4),
    "gnp16": lambda: random_connected(16, 0.3, seed=2),
    "tree12": lambda: random_tree(12, seed=4),
}


def make(net):
    return MatchingProtocol(net, greedy_coloring(net))


class TestStructure:
    def test_variable_kinds(self):
        net = chain(3)
        proto = make(net)
        kinds = {s.name: s.kind for s in proto.variables(net, 1)}
        assert kinds == {
            "M": "comm",
            "PR": "comm",
            "C": "const",
            "cur": "internal",
        }

    def test_pr_domain_includes_zero(self):
        net = chain(3)
        proto = make(net)
        pr = next(s for s in proto.variables(net, 1) if s.name == "PR")
        assert 0 in pr.domain and net.degree(1) in pr.domain

    def test_six_actions_in_paper_order(self):
        net = chain(3)
        names = [a.name for a in make(net).actions()]
        assert names == [
            "realign",
            "publish",
            "accept",
            "abandon",
            "propose",
            "seek",
        ]


class TestStabilization:
    """Theorem 7: stabilizes to the maximal matching predicate."""

    @pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_stabilizes(self, family, seed):
        net = FAMILIES[family]()
        sim = Simulator(make(net), net, seed=seed)
        report = sim.run_until_silent(max_rounds=50_000)
        assert report.stabilized

    def test_stabilizes_under_every_scheduler(self, any_scheduler):
        net = random_connected(12, 0.3, seed=6)
        sim = Simulator(make(net), net, scheduler=any_scheduler, seed=3)
        assert sim.run_until_silent(max_rounds=100_000).stabilized

    def test_result_is_maximal_matching(self):
        net = random_connected(15, 0.3, seed=8)
        proto = make(net)
        sim = Simulator(proto, net, seed=1)
        sim.run_until_silent(max_rounds=50_000)
        assert is_maximal_matching(net, matched_edges(net, sim.config))

    def test_matching_size_lower_bound(self):
        """Biedl et al.: maximal matchings have ≥ ⌈m/(2Δ−1)⌉ edges."""
        for seed in range(3):
            net = random_connected(14, 0.35, seed=seed)
            proto = make(net)
            sim = Simulator(proto, net, seed=seed)
            sim.run_until_silent(max_rounds=50_000)
            assert len(matched_edges(net, sim.config)) >= min_maximal_matching_size(net)


class TestLemmas:
    def test_lemma5_every_process_free_or_married(self):
        """In a silent configuration no process is mid-proposal."""
        net = random_connected(14, 0.3, seed=5)
        proto = make(net)
        sim = Simulator(proto, net, seed=2)
        sim.run_until_silent(max_rounds=50_000)
        for p in net.processes:
            free = sim.config.get(p, "PR") == 0
            married = is_married(net, sim.config, p)
            assert free or married

    def test_lemma7_pr_in_zero_or_cur_after_first_round(self):
        net = random_connected(12, 0.3, seed=9)
        proto = make(net)
        sim = Simulator(proto, net, seed=7)
        sim.run_rounds(1)
        for _ in range(80):
            sim.step()
            for p in net.processes:
                assert sim.config.get(p, "PR") in (0, sim.config.get(p, "cur"))

    def test_married_count_monotone_after_first_round(self):
        """Lemma 8's engine: once married, married forever."""
        net = random_connected(12, 0.3, seed=3)
        proto = make(net)
        sim = Simulator(proto, net, seed=5)
        sim.run_rounds(1)
        prev = married_processes(net, sim.config)
        for _ in range(200):
            sim.step()
            now = married_processes(net, sim.config)
            assert prev <= now
            prev = now

    def test_published_m_flags_match_marriages_at_silence(self):
        net = random_connected(12, 0.3, seed=4)
        proto = make(net)
        sim = Simulator(proto, net, seed=6)
        sim.run_until_silent(max_rounds=50_000)
        for p in net.processes:
            assert sim.config.get(p, "M") == is_married(net, sim.config, p)

    def test_unmarried_have_pr_zero_at_silence(self):
        net = random_connected(12, 0.3, seed=4)
        proto = make(net)
        sim = Simulator(proto, net, seed=6)
        sim.run_until_silent(max_rounds=50_000)
        for p in net.processes:
            if not is_married(net, sim.config, p):
                assert sim.config.get(p, "PR") == 0


class TestRoundBound:
    """Lemma 9: silence within (Δ+1)·n + 2 rounds."""

    @pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_rounds_within_bound(self, family, seed):
        net = FAMILIES[family]()
        sim = Simulator(make(net), net, seed=seed)
        report = sim.run_until_silent(max_rounds=50_000)
        assert report.rounds <= matching_round_bound(net)


class TestEfficiencyAndStability:
    def test_one_efficient(self, any_scheduler):
        net = random_connected(12, 0.3, seed=2)
        sim = Simulator(make(net), net, scheduler=any_scheduler, seed=6)
        sim.run_until_silent(max_rounds=100_000)
        assert sim.metrics.observed_k_efficiency() == 1

    @pytest.mark.parametrize(
        "maker",
        [lambda: figure11_graph()[0], lambda: chain(10), lambda: ring(8)],
        ids=["fig11", "chain10", "ring8"],
    )
    def test_stability_bound_theorem8(self, maker):
        """♦-(2⌈m/(2Δ−1)⌉, 1)-stability."""
        net = maker()
        proto = make(net)
        sim = Simulator(proto, net, seed=3)
        sim.run_until_silent(max_rounds=50_000)
        suffix = sim.measure_suffix_stability(extra_rounds=30)
        one_stable = sum(1 for ports in suffix.values() if len(ports) <= 1)
        assert one_stable >= matching_stability_bound(net)

    def test_married_watch_only_their_spouse(self):
        net = chain(9)
        proto = make(net)
        sim = Simulator(proto, net, seed=3)
        sim.run_until_silent(max_rounds=50_000)
        married = married_processes(net, sim.config)
        suffix = sim.measure_suffix_stability(extra_rounds=30)
        for p in married:
            assert len(suffix[p]) == 1
            (port,) = suffix[p]
            assert net.neighbor_at(p, port) == pr_target(net, sim.config, p)

    def test_free_processes_keep_scanning(self):
        """Free survivors patrol all neighbors — they are the non-stable
        fraction, exactly as Theorem 8's accounting expects."""
        net = star(4)  # one center, one marriage, leaves keep scanning
        proto = make(net)
        sim = Simulator(proto, net, seed=5)
        sim.run_until_silent(max_rounds=50_000)
        married = married_processes(net, sim.config)
        suffix = sim.measure_suffix_stability(extra_rounds=30)
        for p in net.processes:
            if p not in married and net.degree(p) > 1:
                assert len(suffix[p]) == net.degree(p)
