"""Tests for fault injection and recovery measurement."""

import random

import pytest

from repro.core import Simulator
from repro.faults import (
    adversarial_reset,
    availability_experiment,
    corrupt_comm_only,
    corrupt_fraction,
    corrupt_internal_only,
    corrupt_processes,
    measure_recovery,
)
from repro.graphs import greedy_coloring, grid, random_connected, ring
from repro.protocols import ColoringProtocol, MISProtocol


def stabilized_coloring(net, seed=1):
    sim = Simulator(ColoringProtocol.for_network(net), net, seed=seed)
    sim.run_until_silent(max_rounds=20_000)
    return sim


class TestInjection:
    def test_corrupt_processes_touches_only_victims(self):
        net = ring(8)
        sim = stabilized_coloring(net)
        before = sim.config.as_dict()
        rng = random.Random(999)
        corrupt_processes(sim, [0, 1], rng)
        after = sim.config.as_dict()
        for p in net.processes:
            if p not in (0, 1):
                assert before[p] == after[p]

    def test_corrupt_stays_in_domain(self):
        net = ring(8)
        sim = stabilized_coloring(net)
        corrupt_processes(sim, list(net.processes), random.Random(3))
        sim.protocol.validate_configuration(net, sim.config)

    def test_constants_never_corrupted(self):
        net = random_connected(10, 0.4, seed=2)
        colors = greedy_coloring(net)
        sim = Simulator(MISProtocol(net, colors), net, seed=1)
        corrupt_processes(sim, list(net.processes), random.Random(5))
        for p in net.processes:
            assert sim.config.get(p, "C") == colors[p]

    def test_corrupt_fraction_counts(self):
        net = ring(10)
        sim = stabilized_coloring(net)
        victims = corrupt_fraction(sim, 0.5, random.Random(2))
        assert len(victims) == 5

    def test_fraction_validation(self):
        net = ring(6)
        sim = stabilized_coloring(net)
        with pytest.raises(ValueError):
            corrupt_fraction(sim, 1.5, random.Random(0))

    def test_internal_only_preserves_silence(self):
        """Corrupting only round-robin pointers cannot wake a silent
        coloring: communication state is untouched and all guards
        depend on (frozen) colors — the checker must still say silent."""
        net = ring(8)
        sim = stabilized_coloring(net)
        corrupt_internal_only(sim, list(net.processes), random.Random(4))
        assert sim.is_silent()

    def test_comm_only_breaks_coloring(self):
        net = ring(8)
        sim = stabilized_coloring(net)
        rng = random.Random(0)
        # Force a genuine conflict: copy a neighbor's color.
        sim.config.set(0, "C", sim.config.get(net.neighbor_at(0, 1), "C"))
        assert not sim.is_legitimate()
        assert not sim.is_silent()

    def test_adversarial_reset_same_state_everywhere(self):
        net = ring(8)
        sim = stabilized_coloring(net)
        adversarial_reset(sim, {"C": 1, "cur": 1})
        assert all(sim.config.get(p, "C") == 1 for p in net.processes)

    def test_adversarial_reset_clamps_pointers(self):
        net = grid(2, 3)  # degrees 2 and 3
        sim = stabilized_coloring(net)
        adversarial_reset(sim, {"cur": 99})
        for p in net.processes:
            assert 1 <= sim.config.get(p, "cur") <= net.degree(p)


class TestRecovery:
    def test_recovery_from_full_corruption(self):
        net = random_connected(12, 0.3, seed=3)
        sim = Simulator(ColoringProtocol.for_network(net), net, seed=2)
        report = measure_recovery(
            sim,
            lambda s, r: corrupt_fraction(s, 1.0, r),
            random.Random(7),
        )
        assert report.rounds_to_recover >= 0
        assert sim.is_legitimate()

    def test_noop_fault_recovers_instantly(self):
        net = ring(8)
        sim = Simulator(ColoringProtocol.for_network(net), net, seed=2)
        report = measure_recovery(sim, lambda s, r: [], random.Random(1))
        assert not report.disturbed
        assert report.rounds_to_recover == 0

    def test_availability_between_zero_and_one(self):
        net = grid(3, 3)
        report = availability_experiment(
            ColoringProtocol.for_network(net),
            net,
            fault_period_rounds=15,
            fault_fraction=0.3,
            total_rounds=90,
            seed=5,
        )
        assert 0.0 < report.availability <= 1.0
        assert report.faults_injected >= 5

    def test_availability_high_for_rare_faults(self):
        net = ring(10)
        rare = availability_experiment(
            ColoringProtocol.for_network(net), net,
            fault_period_rounds=40, fault_fraction=0.1,
            total_rounds=120, seed=5,
        )
        assert rare.availability > 0.8
