"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    BoundedFairScheduler,
    CentralScheduler,
    RandomSubsetScheduler,
    RoundRobinScheduler,
    SynchronousScheduler,
)
from repro.graphs import (
    caterpillar,
    chain,
    clique,
    grid,
    greedy_coloring,
    random_connected,
    random_tree,
    ring,
    star,
)

SCHEDULER_FACTORIES = {
    "synchronous": SynchronousScheduler,
    "central": CentralScheduler,
    "random-subset": lambda: RandomSubsetScheduler(0.5),
    "round-robin": RoundRobinScheduler,
    "bounded-fair": lambda: BoundedFairScheduler(bound=16, burst=3),
}


@pytest.fixture(params=sorted(SCHEDULER_FACTORIES))
def any_scheduler(request):
    """One instance of every scheduler family."""
    return SCHEDULER_FACTORIES[request.param]()


def small_networks():
    """A diverse family of small test topologies."""
    return {
        "chain5": chain(5),
        "ring6": ring(6),
        "star4": star(4),
        "clique4": clique(4),
        "grid3x3": grid(3, 3),
        "tree10": random_tree(10, seed=7),
        "gnp12": random_connected(12, 0.3, seed=11),
        "caterpillar": caterpillar(4, 2),
    }


@pytest.fixture(params=sorted(small_networks()))
def small_network(request):
    return small_networks()[request.param]


@pytest.fixture
def rng():
    return random.Random(12345)


def colored(network):
    """Convenience: a proper coloring for locally-identified protocols."""
    return greedy_coloring(network)
