"""Tests for the local-checking → 1-efficient transformer (§6 prototype)."""

import pytest

from repro.core import Configuration, Simulator
from repro.graphs import chain, clique, random_connected, ring
from repro.transformer import (
    coloring_spec,
    independence_spec,
    make_one_efficient,
)


class TestTransformShape:
    def test_emits_cur_pointer(self):
        net = ring(5)
        proto = make_one_efficient(coloring_spec(3))
        kinds = {s.name: s.kind for s in proto.variables(net, 0)}
        assert kinds == {"C": "comm", "cur": "internal"}

    def test_action_names(self):
        proto = make_one_efficient(coloring_spec(3))
        assert [a.name for a in proto.actions()] == ["correct", "scan"]

    def test_name_suffix(self):
        proto = make_one_efficient(independence_spec())
        assert proto.name.endswith("-1eff")


class TestTransformedColoring:
    """The transform of the coloring spec must behave like COLORING."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_stabilizes(self, seed):
        net = random_connected(12, 0.3, seed=4)
        proto = make_one_efficient(coloring_spec(net.max_degree + 1))
        sim = Simulator(proto, net, seed=seed)
        report = sim.run_until_silent(max_rounds=20_000)
        assert report.stabilized

    def test_one_efficient(self):
        net = clique(5)
        proto = make_one_efficient(coloring_spec(net.max_degree + 1))
        sim = Simulator(proto, net, seed=3)
        sim.run_until_silent(max_rounds=20_000)
        assert sim.metrics.observed_k_efficiency() == 1

    def test_acts_like_protocol_coloring(self):
        """Same guards, same effects: from the same seed and start, the
        transformed spec and the hand-written COLORING produce the same
        computation."""
        from repro.protocols import ColoringProtocol

        net = ring(7)
        hand = ColoringProtocol(palette_size=3)
        auto = make_one_efficient(coloring_spec(3))
        start = hand.arbitrary_configuration(net, __import__("random").Random(9))
        sims = []
        for proto in (hand, auto):
            sim = Simulator(proto, net, seed=21, config=start)
            sim.run_steps(60)
            sims.append(sim.config.as_dict())
        assert sims[0] == sims[1]


class TestTransformedIndependence:
    def test_stabilizes_to_independent_set(self, any_scheduler):
        net = random_connected(12, 0.35, seed=6)
        proto = make_one_efficient(independence_spec())
        sim = Simulator(proto, net, scheduler=any_scheduler, seed=2)
        report = sim.run_until_silent(max_rounds=50_000)
        assert report.stabilized
        marked = {p for p in net.processes if sim.config.get(p, "IN")}
        for p, q in net.edges():
            assert not (p in marked and q in marked)

    def test_all_marked_worst_case(self):
        net = clique(5)
        proto = make_one_efficient(independence_spec())
        config = Configuration(
            {p: {"IN": True, "cur": 1} for p in net.processes}
        )
        sim = Simulator(proto, net, seed=1, config=config)
        report = sim.run_until_silent(max_rounds=20_000)
        assert report.stabilized

    def test_one_efficient(self):
        net = ring(8)
        proto = make_one_efficient(independence_spec())
        config = Configuration({p: {"IN": True, "cur": 1} for p in net.processes})
        sim = Simulator(proto, net, seed=5, config=config)
        sim.run_until_silent(max_rounds=20_000)
        sim.run_rounds(3)  # scanning continues after silence
        assert sim.metrics.observed_k_efficiency() == 1
